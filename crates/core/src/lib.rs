//! GVE-Leiden: fast parallel Leiden community detection in shared memory.
//!
//! Reproduction of *"Fast Leiden Algorithm for Community Detection in
//! Shared Memory Setting"* (Sahu, Kothapalli, Banerjee — ICPP 2024).
//! The Leiden algorithm (Traag et al. 2019) fixes the Louvain method's
//! tendency to produce internally-disconnected communities by inserting a
//! *refinement* phase between local moving and aggregation. GVE-Leiden is
//! the paper's heavily optimized multicore implementation; this crate is
//! a faithful Rust port of Algorithms 1–4 with all the published
//! optimizations:
//!
//! * asynchronous local moving with flag-based vertex pruning;
//! * collision-free per-thread hashtables (`H_t`);
//! * greedy (default) or randomized constrained-merge refinement;
//! * CSR-based aggregation with parallel prefix sums and a holey
//!   super-vertex CSR;
//! * threshold scaling, iteration/pass caps and aggregation tolerance;
//! * move-based (default) or refine-based super-vertex labeling.
//!
//! # Pipeline (Figure 5 of the paper)
//!
//! Each pass: the **local-moving phase** greedily reassigns vertices to
//! neighbouring communities until the per-iteration modularity gain drops
//! below the tolerance; the resulting communities become *bounds* for the
//! **refinement phase**, which restarts every vertex as a singleton and
//! merges isolated vertices within their bound; the **aggregation phase**
//! collapses each refined community into a super-vertex. Passes repeat on
//! the shrinking super-vertex graph until convergence, the pass cap, or
//! until aggregation stops shrinking the graph.
//!
//! # Example
//!
//! ```
//! use gve_leiden::{Leiden, LeidenConfig};
//! use gve_graph::GraphBuilder;
//!
//! // Two triangles joined by a bridge.
//! let graph = GraphBuilder::from_edges(6, &[
//!     (0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0),
//!     (3, 4, 1.0), (4, 5, 1.0), (5, 3, 1.0),
//!     (2, 3, 1.0),
//! ]);
//! let result = Leiden::new(LeidenConfig::default()).run(&graph);
//! assert_eq!(result.num_communities, 2);
//! assert_eq!(result.membership[0], result.membership[1]);
//! assert_ne!(result.membership[0], result.membership[5]);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod aggregate;
#[cfg(feature = "analysis")]
pub mod analysis;
pub mod config;
pub mod dendrogram;
pub mod kernel;
pub mod localmove;
mod math;
pub mod objective;
pub mod obs;
mod refine;
mod sync;
pub mod timing;
pub mod workspace;

pub use config::{
    AggregationStrategy, ChunkScheduling, EdgeLayout, KernelVersion, Labeling, LeidenConfig,
    RefinementStrategy, Scheduling, Variant, VertexOrdering, DEFAULT_SMALL_DEGREE_THRESHOLD,
};
pub use localmove::MoveOutcome;
pub use math::delta_modularity;
pub use objective::{GainCoeffs, Objective};
pub use obs::{CoreMetrics, RunObserver};
pub use timing::{PassStats, PhaseTimings};
pub use workspace::PassWorkspace;

use gve_graph::{reorder::Relabeling, CsrGraph, VertexId};
use gve_prim::{CommunityMap, PerThread};
use rayon::prelude::*;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Why the pass loop of a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Global convergence (Algorithm 1, line 8): local-moving settled in
    /// a single quiet iteration and refinement moved nothing.
    Converged,
    /// The aggregation tolerance fired (line 10): communities shrank too
    /// little for another pass to pay off, so aggregation was skipped.
    AggregationTolerance,
    /// The configured pass cap was reached.
    PassCap,
}

impl StopReason {
    /// Stable lowercase label (used in traces and metrics).
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::AggregationTolerance => "aggregation_tolerance",
            StopReason::PassCap => "pass_cap",
        }
    }
}

/// Outcome of a GVE-Leiden run.
#[derive(Debug, Clone)]
pub struct LeidenResult {
    /// Community of every input vertex, renumbered to dense `0..k`.
    pub membership: Vec<VertexId>,
    /// Number of communities `k` (the `|Γ|` column of Table 2).
    pub num_communities: usize,
    /// Passes performed (`l_p`).
    pub passes: usize,
    /// Total local-moving iterations across passes (`Σ l_i`).
    pub move_iterations: usize,
    /// Accumulated per-phase wall time (Figure 7(a)).
    pub timings: PhaseTimings,
    /// Per-pass statistics (Figure 7(b)).
    pub pass_stats: Vec<PassStats>,
    /// Why the pass loop ended.
    pub stop: StopReason,
    /// Chunk scheduling policy the run used (config echo, so metrics
    /// and traces can label the scheduler counters).
    pub chunking: ChunkScheduling,
    /// Dendrogram levels, recorded only when
    /// [`LeidenConfig::record_dendrogram`] is set: level `l` maps each
    /// vertex of the pass-`l` graph to its refined community (a vertex
    /// of the pass-`l+1` graph). Composing all levels yields
    /// `membership` up to renumbering.
    pub dendrogram: Vec<Vec<VertexId>>,
}

impl LeidenResult {
    /// Number of communities in the final partition.
    pub fn community_count(&self) -> usize {
        self.num_communities
    }

    /// Membership of the original vertices after the first `level`
    /// passes (requires [`LeidenConfig::record_dendrogram`]):
    /// `level = 0` is the singleton partition, `level = passes` equals
    /// the final membership up to renumbering. Intermediate levels are
    /// the coarsening hierarchy — useful for multi-resolution views.
    ///
    /// # Panics
    /// Panics when `level > dendrogram.len()` or the dendrogram was not
    /// recorded (and `level > 0`).
    pub fn membership_at_level(&self, level: usize) -> Vec<VertexId> {
        assert!(
            level <= self.dendrogram.len(),
            "level {level} exceeds recorded depth {}",
            self.dendrogram.len()
        );
        let n = self.membership.len();
        let mut out: Vec<VertexId> = (0..n as VertexId).collect();
        for step in &self.dendrogram[..level] {
            for c in out.iter_mut() {
                *c = step[*c as usize];
            }
        }
        out
    }
}

/// The GVE-Leiden runner. Construct once, run on any number of graphs.
#[derive(Debug, Clone)]
pub struct Leiden {
    config: LeidenConfig,
}

impl Default for Leiden {
    fn default() -> Self {
        Self::new(LeidenConfig::default())
    }
}

/// Runs GVE-Leiden with default configuration.
pub fn leiden(graph: &CsrGraph) -> LeidenResult {
    Leiden::default().run(graph)
}

/// Derives a per-vertex RNG stream seed (splitmix64 mixing).
#[inline]
pub(crate) fn stream_seed(seed: u64, index: u64) -> u32 {
    let mut z =
        (seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 32) as u32
}

impl Leiden {
    /// Creates a runner with the given configuration.
    ///
    /// # Panics
    /// Panics when the configuration is invalid (see
    /// [`LeidenConfig::validate`]).
    pub fn new(config: LeidenConfig) -> Self {
        config.validate().expect("invalid Leiden configuration");
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LeidenConfig {
        &self.config
    }

    /// Runs the algorithm (Algorithm 1 of the paper) and returns the
    /// top-level community membership of every vertex.
    ///
    /// Equivalent to [`Leiden::run_in`] with a throwaway workspace;
    /// callers running repeatedly should keep a [`PassWorkspace`] and
    /// use `run_in` to skip steady-state allocation.
    pub fn run(&self, graph: &CsrGraph) -> LeidenResult {
        self.run_in(graph, &mut PassWorkspace::new())
    }

    /// Runs the algorithm using a caller-provided [`PassWorkspace`] for
    /// every per-pass buffer. The workspace grows on first use and is
    /// reused afterwards: repeat runs on graphs no larger than the
    /// workspace's capacity perform no allocation in the Leiden hot
    /// path. Results are bit-identical to [`Leiden::run`] — both share
    /// this code path.
    pub fn run_in(&self, graph: &CsrGraph, workspace: &mut PassWorkspace) -> LeidenResult {
        self.run_inner(graph, None, None, workspace)
    }

    /// Runs the algorithm seeded with a previous community membership —
    /// the *Naive-dynamic* strategy for evolving graphs (the paper
    /// points at dynamic Leiden as the natural extension, §4.1).
    ///
    /// `previous` need not use dense ids; it is renumbered internally.
    ///
    /// # Panics
    /// Panics when `previous.len() != graph.num_vertices()`.
    pub fn run_seeded(&self, graph: &CsrGraph, previous: &[VertexId]) -> LeidenResult {
        self.run_seeded_in(graph, previous, &mut PassWorkspace::new())
    }

    /// Workspace-reusing variant of [`Leiden::run_seeded`].
    ///
    /// # Panics
    /// Panics when `previous.len() != graph.num_vertices()`.
    pub fn run_seeded_in(
        &self,
        graph: &CsrGraph,
        previous: &[VertexId],
        workspace: &mut PassWorkspace,
    ) -> LeidenResult {
        assert_eq!(previous.len(), graph.num_vertices());
        let (dense, _) = dendrogram::renumber(previous);
        self.run_inner(graph, Some(dense), None, workspace)
    }

    /// Runs the algorithm seeded with a previous membership *and* an
    /// initial frontier: only the frontier vertices are initially
    /// unprocessed in the first pass's local-moving phase, and the wave
    /// expands outward through the pruning flags — the *Dynamic
    /// Frontier* strategy for batch updates.
    ///
    /// # Panics
    /// Panics when `previous.len() != graph.num_vertices()` or a
    /// frontier vertex is out of range.
    pub fn run_frontier(
        &self,
        graph: &CsrGraph,
        previous: &[VertexId],
        frontier: &[VertexId],
    ) -> LeidenResult {
        self.run_frontier_in(graph, previous, frontier, &mut PassWorkspace::new())
    }

    /// Workspace-reusing variant of [`Leiden::run_frontier`].
    ///
    /// # Panics
    /// Panics when `previous.len() != graph.num_vertices()` or a
    /// frontier vertex is out of range.
    pub fn run_frontier_in(
        &self,
        graph: &CsrGraph,
        previous: &[VertexId],
        frontier: &[VertexId],
        workspace: &mut PassWorkspace,
    ) -> LeidenResult {
        assert_eq!(previous.len(), graph.num_vertices());
        assert!(frontier
            .iter()
            .all(|&v| (v as usize) < graph.num_vertices()));
        let (dense, _) = dendrogram::renumber(previous);
        self.run_inner(graph, Some(dense), Some(frontier.to_vec()), workspace)
    }

    /// Applies the configured cache-aware relabeling (if any) around
    /// [`Leiden::run_core`]: the algorithm runs on the permuted graph,
    /// and memberships (plus the dendrogram's level 0, whose indices are
    /// vertex ids of the input graph) are mapped back so callers always
    /// see their original vertex ids.
    fn run_inner(
        &self,
        graph: &CsrGraph,
        first_init: Option<Vec<VertexId>>,
        first_frontier: Option<Vec<VertexId>>,
        workspace: &mut PassWorkspace,
    ) -> LeidenResult {
        let Some(relabel) = Relabeling::for_ordering(graph, self.config.ordering) else {
            return self.run_core(graph, first_init, first_frontier, workspace);
        };
        let t_reorder = Instant::now();
        let permuted = relabel.apply(graph);
        let init = first_init.map(|labels| relabel.push_to_new(&labels));
        let frontier = first_frontier.map(|f| {
            f.iter()
                .map(|&v| relabel.perm[v as usize])
                .collect::<Vec<_>>()
        });
        let reorder_time = t_reorder.elapsed();
        let mut result = self.run_core(&permuted, init, frontier, workspace);
        result.timings.other += reorder_time;
        result.membership = relabel.pull_to_original(&result.membership);
        if let Some(level0) = result.dendrogram.first_mut() {
            *level0 = relabel.pull_to_original(level0);
        }
        result
    }

    fn run_core(
        &self,
        graph: &CsrGraph,
        first_init: Option<Vec<VertexId>>,
        first_frontier: Option<Vec<VertexId>>,
        workspace: &mut PassWorkspace,
    ) -> LeidenResult {
        let config = &self.config;
        let n = graph.num_vertices();
        let mut timings = PhaseTimings::default();
        let mut pass_stats = Vec::new();

        let t_init = Instant::now();
        let mut top: Vec<VertexId> = (0..n as VertexId).collect();
        let m = graph.total_arc_weight() / 2.0;
        timings.other += t_init.elapsed();

        // Degenerate inputs: no vertices or no edges → singletons.
        if n == 0 || m <= 0.0 {
            return LeidenResult {
                num_communities: n,
                membership: top,
                passes: 0,
                move_iterations: 0,
                timings,
                pass_stats,
                stop: StopReason::Converged,
                chunking: config.chunking,
                dendrogram: Vec::new(),
            };
        }

        let coeffs = config.objective.coeffs(m);
        // CPM penalizes by community *size*; vertex sizes must then be
        // carried across aggregations (a super-vertex's size is the
        // number of original vertices it represents).
        let use_sizes = config.objective.penalty_is_size();

        // Size the arena once for the input graph: every per-pass buffer
        // below is a shrinking prefix view of workspace memory, so the
        // pass loop itself performs no steady-state allocation.
        let t_ws = Instant::now();
        workspace.ensure(n, graph.num_arcs());
        if use_sizes {
            workspace.ensure_sizes(n);
        }
        if config.layout == EdgeLayout::Interleaved {
            // Super-vertex graphs adopt a pooled interleaved buffer (a
            // supergraph never has more arcs than its input), so later
            // passes allocate nothing for the layout either.
            workspace.ensure_interleaved(graph.num_arcs());
        }
        let PassWorkspace {
            membership,
            sigma,
            penalty,
            bounds,
            refined,
            dense,
            labels,
            init_labels: init_buf,
            first_seen,
            rank,
            sizes,
            sizes_next,
            plain_membership,
            plain_sigma,
            sync_decisions,
            unprocessed,
            interleaved_pool,
            aggregate: agg,
            // The per-worker collision-free hashtables (the O(T·N)
            // memory term) live in the arena too, reused across phases,
            // passes, and runs.
            tables,
            ..
        } = &mut *workspace;
        let tables: &PerThread<CommunityMap> = tables;
        if use_sizes {
            sizes[..n].par_iter_mut().for_each(|s| *s = 1.0);
        }
        // Initial labels live in the workspace too; `has_init` tracks
        // whether the prefix holds seeds for the upcoming pass.
        let mut has_init = match &first_init {
            Some(seed) => {
                init_buf[..n].copy_from_slice(seed);
                true
            }
            None => false,
        };
        timings.other += t_ws.elapsed();

        let mut current: Option<CsrGraph> = None;
        let mut tolerance = config.initial_tolerance;
        let mut move_iterations = 0usize;
        let mut passes = 0usize;
        let mut dendrogram: Vec<Vec<VertexId>> = Vec::new();
        let mut stop = StopReason::PassCap;

        for pass in 0..config.max_passes {
            // Interleaved layout: build the (target, weight) copy once
            // per pass graph; every scan_edges call then walks a single
            // cache stream. The shared input graph caches its copy in
            // its `OnceLock` (reused across runs); owned super-vertex
            // graphs adopt a pooled buffer instead, returned to the
            // pool before the CSR is recycled.
            if config.layout == EdgeLayout::Interleaved {
                let t_layout = Instant::now();
                match current.as_mut() {
                    Some(cur) => cur.adopt_interleaved(interleaved_pool.pop().unwrap_or_default()),
                    None => {
                        graph.build_interleaved();
                    }
                }
                timings.other += t_layout.elapsed();
            }

            let g: &CsrGraph = current.as_ref().unwrap_or(graph);
            let n_cur = g.num_vertices();
            let t_pass = Instant::now();

            // Stale-suffix poisoning (requires `--features analysis`):
            // everything past this pass's prefix is sentinel-filled, and
            // re-checked after the phases — proof that the shrinking
            // prefix views never read or write stale suffix state.
            #[cfg(feature = "analysis")]
            workspace::poison_suffix(&membership[n_cur..], &sigma[n_cur..]);

            // Initialization: K', C', Σ' (Algorithm 1, line 4). With
            // move-based labeling, later passes start from the mapped
            // parent communities instead of singletons.
            let t0 = Instant::now();
            // Penalty weights: weighted degrees K' for modularity,
            // carried vertex sizes for CPM — refreshed in place.
            let pen = &mut penalty[..n_cur];
            if use_sizes {
                pen.par_iter_mut()
                    .zip(sizes[..n_cur].par_iter())
                    .for_each(|(p, &s)| *p = s);
            } else {
                pen.par_iter_mut()
                    .enumerate()
                    .for_each(|(v, p)| *p = g.weighted_degree(v as VertexId));
            }
            let pen = &penalty[..n_cur];
            // Pruning flags: everything unprocessed, or only the given
            // frontier on the first pass of a dynamic run. One bitset,
            // prefix-reset per pass (set_first clears the tail).
            match (&first_frontier, pass) {
                (Some(frontier), 0) => {
                    unprocessed.clear_all();
                    for &v in frontier {
                        unprocessed.set(v as usize);
                    }
                }
                _ => unprocessed.set_first(n_cur),
            }
            timings.other += t0.elapsed();

            // Per-pass phase times fall out of the accumulated timings:
            // snapshot before, subtract after.
            let lm_before = timings.local_move;
            let rf_before = timings.refinement;

            // Local-moving (Algorithm 2) and refinement (Algorithm 3),
            // under the configured scheduling. Bounds and refined
            // memberships land in workspace prefixes.
            let (outcome, refine_moves, refine_sched) = match config.scheduling {
                Scheduling::Asynchronous => {
                    // Reinitialize the atomic prefix in place (parallel
                    // fills — no fresh atomic vectors). Relaxed stores:
                    // bulk reinit between phases, published by the join.
                    let t0 = Instant::now();
                    let membership = &membership[..n_cur];
                    let sigma = &sigma[..n_cur];
                    if has_init {
                        let seeds = &init_buf[..n_cur];
                        membership
                            .par_iter()
                            .zip(seeds.par_iter())
                            // Relaxed: bulk reinit between joins, as above.
                            .for_each(|(c, &l)| c.store(l, Ordering::Relaxed));
                        // Σ' scatter: exact f64 `fetch_add`s of each
                        // community's member penalties. Commutative per
                        // slot only up to rounding — matching the async
                        // phases' own summation-order freedom.
                        sigma.par_iter().for_each(|s| s.store(0.0));
                        seeds.par_iter().enumerate().for_each(|(v, &c)| {
                            sigma[c as usize].fetch_add(pen[v]);
                        });
                    } else {
                        membership
                            .par_iter()
                            .enumerate()
                            // Relaxed: bulk reinit between joins, as above.
                            .for_each(|(v, c)| c.store(v as u32, Ordering::Relaxed));
                        sigma
                            .par_iter()
                            .zip(pen.par_iter())
                            .for_each(|(s, &p)| s.store(p));
                    }
                    timings.other += t0.elapsed();

                    let t1 = Instant::now();
                    let outcome = localmove::local_move(
                        g,
                        membership,
                        pen,
                        sigma,
                        coeffs,
                        tolerance,
                        config,
                        tables,
                        unprocessed,
                    );
                    timings.local_move += t1.elapsed();

                    // Invariant check (requires `--features analysis`):
                    // the racy incremental bookkeeping must agree with
                    // a from-scratch recompute once the phase joined.
                    #[cfg(feature = "analysis")]
                    {
                        // Relaxed: post-join read-back.
                        let snapshot: Vec<VertexId> = membership
                            .iter()
                            .map(|c| c.load(Ordering::Relaxed))
                            .collect();
                        let totals = gve_prim::atomics::atomic_f64_snapshot(&sigma);
                        analysis::assert_phase_state(
                            "local-moving",
                            pass,
                            n_cur,
                            &snapshot,
                            pen,
                            &totals,
                        );
                    }

                    // Reset to singletons within bounds (line 6).
                    // Relaxed loads/stores throughout: the rayon
                    // joins between phases are the synchronization
                    // points; no store here races with a reader.
                    let t2 = Instant::now();
                    let bounds = &mut bounds[..n_cur];
                    bounds
                        .par_iter_mut()
                        .zip(membership.par_iter())
                        .for_each(|(b, c)| *b = c.load(Ordering::Relaxed));
                    membership
                        .par_iter()
                        .enumerate()
                        // Relaxed: between-joins reset, as above.
                        .for_each(|(v, c)| c.store(v as u32, Ordering::Relaxed));
                    sigma
                        .par_iter()
                        .zip(pen.par_iter())
                        .for_each(|(s, &p)| s.store(p));
                    timings.other += t2.elapsed();

                    let t3 = Instant::now();
                    let (refine_moves, refine_sched) = refine::refine(
                        g,
                        bounds,
                        membership,
                        pen,
                        sigma,
                        coeffs,
                        config,
                        tables,
                        pass as u64,
                    );
                    timings.refinement += t3.elapsed();

                    // Relaxed: refine's join already published all
                    // membership stores.
                    refined[..n_cur]
                        .par_iter_mut()
                        .zip(membership.par_iter())
                        .for_each(|(r, c)| *r = c.load(Ordering::Relaxed));

                    #[cfg(feature = "analysis")]
                    {
                        let totals = gve_prim::atomics::atomic_f64_snapshot(sigma);
                        analysis::assert_phase_state(
                            "refinement",
                            pass,
                            n_cur,
                            &refined[..n_cur],
                            pen,
                            &totals,
                        );
                    }
                    (outcome, refine_moves, refine_sched)
                }
                Scheduling::ColorSynchronous => {
                    // Deterministic path: plain state, decisions per
                    // color class against frozen Σ'. The Σ' scatter
                    // stays **serial** so its summation order is fixed
                    // across thread counts.
                    let t0 = Instant::now();
                    let coloring = gve_graph::coloring::jones_plassmann(g, config.seed);
                    let membership = &mut plain_membership[..n_cur];
                    let sigma = &mut plain_sigma[..n_cur];
                    if has_init {
                        let seeds = &init_buf[..n_cur];
                        membership.copy_from_slice(seeds);
                        sigma.fill(0.0);
                        for (v, &c) in seeds.iter().enumerate() {
                            sigma[c as usize] += pen[v];
                        }
                    } else {
                        membership
                            .par_iter_mut()
                            .enumerate()
                            .for_each(|(v, c)| *c = v as VertexId);
                        sigma.copy_from_slice(pen);
                    }
                    timings.other += t0.elapsed();

                    let t1 = Instant::now();
                    let outcome = sync::local_move_sync(
                        g,
                        membership,
                        pen,
                        sigma,
                        coeffs,
                        tolerance,
                        config,
                        tables,
                        &coloring,
                        unprocessed,
                        sync_decisions,
                    );
                    timings.local_move += t1.elapsed();

                    #[cfg(feature = "analysis")]
                    analysis::assert_phase_state(
                        "local-moving",
                        pass,
                        n_cur,
                        membership,
                        pen,
                        sigma,
                    );

                    let t2 = Instant::now();
                    let bounds = &mut bounds[..n_cur];
                    bounds.copy_from_slice(membership);
                    membership
                        .par_iter_mut()
                        .enumerate()
                        .for_each(|(v, c)| *c = v as VertexId);
                    sigma.copy_from_slice(pen);
                    timings.other += t2.elapsed();

                    let t3 = Instant::now();
                    let refine_moves = sync::refine_sync(
                        g,
                        bounds,
                        membership,
                        pen,
                        sigma,
                        coeffs,
                        config,
                        tables,
                        &coloring,
                        pass as u64,
                        sync_decisions,
                    );
                    timings.refinement += t3.elapsed();

                    #[cfg(feature = "analysis")]
                    analysis::assert_phase_state("refinement", pass, n_cur, membership, pen, sigma);
                    refined[..n_cur].copy_from_slice(membership);
                    // The color-synchronous path schedules per color
                    // class through `par_for_dynamic`; chunk scheduling
                    // (and its counters) apply to the async path only.
                    (outcome, refine_moves, gve_prim::SchedStats::default())
                }
            };
            let li = outcome.gains.len();
            move_iterations += li;
            let mut pass_sched = outcome.sched;
            pass_sched.merge(refine_sched);

            // The phases may only have touched this pass's prefix: the
            // poisoned suffix must be byte-for-byte intact.
            #[cfg(feature = "analysis")]
            workspace::assert_suffix_poisoned(&membership[n_cur..], &sigma[n_cur..], pass, n_cur);

            // Renumber refined communities and update the dendrogram
            // (lines 11–12 / 16) — parallel first-seen renumber into the
            // workspace's `dense` prefix.
            let t4 = Instant::now();
            let k = dendrogram::renumber_into(
                &refined[..n_cur],
                &mut dense[..n_cur],
                n_cur,
                first_seen,
                rank,
            );
            dendrogram::lookup(&mut top, &dense[..n_cur]);
            if config.record_dendrogram {
                dendrogram.push(dense[..n_cur].to_vec());
            }
            timings.other += t4.elapsed();

            passes += 1;
            pass_stats.push(PassStats {
                pass,
                vertices: n_cur,
                arcs: g.num_arcs(),
                move_iterations: li,
                iteration_gains: outcome.gains,
                refine_moves,
                communities: k,
                pruning_processed: outcome.pruning_processed,
                pruning_skipped: outcome.pruning_skipped,
                tolerance,
                sched_chunks: pass_sched.chunks,
                sched_steals: pass_sched.steals,
                local_move_time: timings.local_move - lm_before,
                refinement_time: timings.refinement - rf_before,
                aggregation_time: Duration::ZERO,
                duration: t_pass.elapsed(),
            });

            // Global convergence (line 8): local-moving converged in one
            // iteration and refinement moved nothing.
            if li + usize::from(refine_moves > 0) <= 1 {
                stop = StopReason::Converged;
                break;
            }
            // Aggregation tolerance (line 10): communities shrank too
            // little for another pass to pay off.
            if config.use_aggregation_tolerance
                && (k as f64) > config.aggregation_tolerance * (n_cur as f64)
            {
                stop = StopReason::AggregationTolerance;
                break;
            }
            if pass + 1 == config.max_passes {
                break;
            }

            // Aggregation phase (Algorithm 4, or the sort-reduce
            // alternative).
            let t5 = Instant::now();
            let supergraph = match config.aggregation {
                config::AggregationStrategy::Hashtable => {
                    // Stage the dense ids into the atomic membership
                    // prefix in place (the phases are done with it) —
                    // this replaces the old per-pass fresh atomic vec.
                    // Relaxed: bulk restage between joins, as above.
                    let memb = &membership[..n_cur];
                    memb.par_iter()
                        .zip(dense[..n_cur].par_iter())
                        .for_each(|(c, &d)| c.store(d, Ordering::Relaxed));
                    aggregate::aggregate_into(
                        g,
                        memb,
                        &dense[..n_cur],
                        k,
                        (config.chunk_size / 4).max(1),
                        tables,
                        matches!(config.kernel, KernelVersion::V2 | KernelVersion::V3)
                            .then_some(config.small_degree_threshold),
                        agg,
                    )
                }
                config::AggregationStrategy::SortReduce => {
                    aggregate::aggregate_sort_reduce(g, &dense[..n_cur], k)
                }
            };
            let aggregation_time = t5.elapsed();
            timings.aggregation += aggregation_time;
            // The pass's stats were pushed before aggregation (the break
            // conditions sit between); fold the aggregation that this
            // pass triggered back into its record.
            if let Some(ps) = pass_stats.last_mut() {
                ps.aggregation_time = aggregation_time;
                ps.duration = t_pass.elapsed();
            }

            #[cfg(feature = "analysis")]
            analysis::assert_aggregate_state(pass, g, &supergraph, k);

            // Super-vertex labeling for the next pass (line 14).
            let t6 = Instant::now();
            has_init = match config.labeling {
                Labeling::MoveBased => {
                    // Every member of a refined community shares the same
                    // bound, so any member defines the mapping — the
                    // concurrent stores per slot all carry the same
                    // value. `first_seen` serves as the scatter target;
                    // the values are copied out to `labels` before
                    // `renumber_into` reclaims the scratch.
                    let fs = &first_seen[..k];
                    dense[..n_cur]
                        .par_iter()
                        .zip(bounds[..n_cur].par_iter())
                        // Relaxed: same-value stores, published by join.
                        .for_each(|(&d, &b)| fs[d as usize].store(b, Ordering::Relaxed));
                    let lab = &mut labels[..k];
                    lab.par_iter_mut()
                        .zip(fs.par_iter())
                        .for_each(|(l, f)| *l = f.load(Ordering::Relaxed));
                    dendrogram::renumber_into(lab, &mut init_buf[..k], n_cur, first_seen, rank);
                    true
                }
                Labeling::RefineBased => false,
            };
            timings.other += t6.elapsed();

            // Fold vertex sizes into the super-vertices (CPM only) via
            // the free Σ' atomics: the addends are integral vertex
            // counts, so the `fetch_add`s are exact and the result is
            // independent of thread interleaving. Double-buffer swap
            // replaces the old per-pass clone.
            if use_sizes {
                let acc = &sigma[..k];
                acc.par_iter().for_each(|s| s.store(0.0));
                let sz = &sizes[..n_cur];
                dense[..n_cur].par_iter().enumerate().for_each(|(v, &c)| {
                    acc[c as usize].fetch_add(sz[v]);
                });
                sizes_next[..k]
                    .par_iter_mut()
                    .zip(acc.par_iter())
                    .for_each(|(o, s)| *o = s.load());
                std::mem::swap(sizes, sizes_next);
            }

            // Swap in the super-vertex graph; the displaced one's
            // buffers feed the aggregation recycle stack, so steady
            // state holds exactly two resident CSR buffer sets. Its
            // adopted interleaved buffer (if any) returns to the pool
            // first — `recycle` would drop it.
            if let Some(mut old) = current.replace(supergraph) {
                if let Some(buf) = old.take_interleaved() {
                    interleaved_pool.push(buf);
                }
                agg.recycle(old);
            }
            // Threshold scaling (line 15).
            if config.threshold_scaling {
                tolerance /= config.tolerance_drop;
            }
        }

        // Recycle the last super-vertex graph for the next run.
        if let Some(mut last) = current.take() {
            if let Some(buf) = last.take_interleaved() {
                interleaved_pool.push(buf);
            }
            agg.recycle(last);
        }

        // Final dense renumbering of the top-level membership (the
        // output vector is the one allocation the result must own).
        let t7 = Instant::now();
        let mut final_membership = vec![0; n];
        let num_communities =
            dendrogram::renumber_into(&top, &mut final_membership, n, first_seen, rank);
        timings.other += t7.elapsed();

        LeidenResult {
            membership: final_membership,
            num_communities,
            passes,
            move_iterations,
            timings,
            pass_stats,
            stop,
            chunking: config.chunking,
            dendrogram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;

    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn detects_two_triangles() {
        let result = leiden(&two_triangles());
        assert_eq!(result.num_communities, 2);
        assert_eq!(result.membership[0], result.membership[1]);
        assert_eq!(result.membership[1], result.membership[2]);
        assert_eq!(result.membership[3], result.membership[4]);
        assert_ne!(result.membership[0], result.membership[3]);
        assert!(result.passes >= 1);
    }

    #[test]
    fn membership_is_dense() {
        let result = leiden(&two_triangles());
        let max = *result.membership.iter().max().unwrap() as usize;
        assert_eq!(max + 1, result.num_communities);
    }

    #[test]
    fn empty_graph() {
        let result = leiden(&CsrGraph::empty(0));
        assert!(result.membership.is_empty());
        assert_eq!(result.num_communities, 0);
        assert_eq!(result.passes, 0);
    }

    #[test]
    fn edgeless_graph_yields_singletons() {
        let result = leiden(&CsrGraph::empty(5));
        assert_eq!(result.membership, vec![0, 1, 2, 3, 4]);
        assert_eq!(result.num_communities, 5);
    }

    #[test]
    fn single_self_loop_vertex() {
        let g = GraphBuilder::from_edges(1, &[(0, 0, 2.0)]);
        let result = leiden(&g);
        assert_eq!(result.membership, vec![0]);
        assert_eq!(result.num_communities, 1);
    }

    #[test]
    fn recovers_planted_partition() {
        let planted = gve_generate::sbm::PlantedPartition::new(2000, 10, 16.0, 1.0)
            .seed(11)
            .generate();
        let result = leiden(&planted.graph);
        let nmi = gve_quality::normalized_mutual_information(&result.membership, &planted.labels);
        assert!(nmi > 0.9, "NMI {nmi}, k = {}", result.num_communities);
    }

    #[test]
    fn modularity_beats_trivial_partitions() {
        let g = gve_generate::rmat::Rmat::web(11, 8.0).seed(2).generate();
        let result = leiden(&g);
        let q = gve_quality::modularity(&g, &result.membership);
        let singletons: Vec<u32> = (0..g.num_vertices() as u32).collect();
        assert!(q > gve_quality::modularity(&g, &singletons));
        assert!(q > gve_quality::modularity(&g, &vec![0; g.num_vertices()]) + 0.05);
        assert!((-0.5..=1.0).contains(&q));
    }

    #[test]
    fn communities_are_internally_connected() {
        // The Leiden guarantee (Figure 6(d) shows zero disconnected
        // communities for GVE-Leiden).
        for seed in [1u64, 2, 3] {
            let g = gve_generate::rmat::Rmat::social(11, 6.0)
                .seed(seed)
                .generate();
            let result = leiden(&g);
            let report = gve_quality::disconnected_communities(&g, &result.membership);
            assert!(
                report.all_connected(),
                "seed {seed}: {} of {} disconnected",
                report.disconnected,
                report.communities
            );
        }
    }

    #[test]
    fn refine_based_labeling_also_works() {
        let g = two_triangles();
        let result = Leiden::new(LeidenConfig::default().labeling(Labeling::RefineBased)).run(&g);
        assert_eq!(result.num_communities, 2);
    }

    #[test]
    fn random_refinement_also_recovers_structure() {
        let planted = gve_generate::sbm::PlantedPartition::new(1000, 8, 14.0, 1.0)
            .seed(4)
            .generate();
        let config = LeidenConfig::default()
            .refinement(RefinementStrategy::Random)
            .seed(7);
        let result = Leiden::new(config).run(&planted.graph);
        let nmi = gve_quality::normalized_mutual_information(&result.membership, &planted.labels);
        assert!(nmi > 0.85, "NMI {nmi}");
    }

    #[test]
    fn variants_run_to_completion() {
        let g = gve_generate::rmat::Rmat::web(9, 6.0).seed(9).generate();
        for variant in [Variant::Default, Variant::Medium, Variant::Heavy] {
            let result = Leiden::new(LeidenConfig::default().variant(variant)).run(&g);
            assert!(result.num_communities >= 1, "{variant:?}");
            gve_quality::validate_membership(&result.membership, g.num_vertices()).unwrap();
        }
    }

    #[test]
    fn pass_cap_is_respected() {
        let config = LeidenConfig {
            max_passes: 1,
            ..LeidenConfig::default()
        };
        let g = gve_generate::rmat::Rmat::web(9, 6.0).seed(1).generate();
        let result = Leiden::new(config).run(&g);
        assert_eq!(result.passes, 1);
        assert_eq!(result.pass_stats.len(), 1);
    }

    #[test]
    fn timings_cover_all_phases() {
        let g = gve_generate::rmat::Rmat::web(10, 8.0).seed(6).generate();
        let result = leiden(&g);
        assert!(result.timings.local_move.as_nanos() > 0);
        assert!(result.timings.refinement.as_nanos() > 0);
        assert!(result.timings.other.as_nanos() > 0);
        // Pass stats mirror the pass count.
        assert_eq!(result.pass_stats.len(), result.passes);
        // First pass operates on the input graph.
        assert_eq!(result.pass_stats[0].vertices, g.num_vertices());
    }

    #[test]
    #[should_panic(expected = "invalid Leiden configuration")]
    fn invalid_config_panics() {
        let config = LeidenConfig {
            max_passes: 0,
            ..LeidenConfig::default()
        };
        Leiden::new(config);
    }

    #[test]
    fn cpm_objective_recovers_planted_partition() {
        let planted = gve_generate::sbm::PlantedPartition::new(1500, 10, 14.0, 1.0)
            .seed(6)
            .generate();
        // CPM resolution ≈ the planted intra-block density keeps the
        // blocks optimal.
        let config = LeidenConfig::default().objective(Objective::Cpm { resolution: 0.02 });
        let result = Leiden::new(config).run(&planted.graph);
        let nmi = gve_quality::normalized_mutual_information(&result.membership, &planted.labels);
        assert!(nmi > 0.9, "CPM NMI {nmi}, k = {}", result.num_communities);
        let report = gve_quality::disconnected_communities(&planted.graph, &result.membership);
        assert!(report.all_connected());
    }

    #[test]
    fn density_scale_cpm_agrees_with_modularity_on_planted_graph() {
        // With the resolution at the graph's inter/intra density
        // crossover, CPM and modularity should find essentially the same
        // planted partition.
        let planted = gve_generate::sbm::PlantedPartition::new(1000, 8, 12.0, 1.0)
            .seed(3)
            .generate();
        let g = &planted.graph;
        let mod_members = leiden(g).membership;
        // Intra-block density ≈ intra_degree / block_size = 12 / 125.
        let cpm_cfg = LeidenConfig::default().objective(Objective::Cpm { resolution: 0.05 });
        let cpm_members = Leiden::new(cpm_cfg).run(g).membership;
        let agreement = gve_quality::normalized_mutual_information(&mod_members, &cpm_members);
        assert!(agreement > 0.9, "objectives disagree: NMI {agreement}");
    }

    #[test]
    fn cpm_resolution_controls_granularity() {
        let g = gve_generate::sbm::PlantedPartition::new(800, 8, 12.0, 1.0)
            .seed(9)
            .generate()
            .graph;
        let run = |resolution: f64| {
            Leiden::new(LeidenConfig::default().objective(Objective::Cpm { resolution }))
                .run(&g)
                .num_communities
        };
        let coarse = run(0.001);
        let fine = run(0.2);
        assert!(
            fine > coarse,
            "higher CPM resolution must give more communities: {coarse} vs {fine}"
        );
    }

    #[test]
    fn modularity_resolution_controls_granularity() {
        let g = gve_generate::sbm::PlantedPartition::new(800, 8, 12.0, 1.0)
            .seed(10)
            .generate()
            .graph;
        let run = |resolution: f64| {
            Leiden::new(LeidenConfig::default().objective(Objective::Modularity { resolution }))
                .run(&g)
                .num_communities
        };
        assert!(run(4.0) >= run(1.0), "γ=4 coarser than γ=1?");
        assert!(run(1.0) >= run(0.25), "γ=1 coarser than γ=0.25?");
    }

    #[test]
    fn seeded_run_reaches_same_quality() {
        let planted = gve_generate::sbm::PlantedPartition::new(1200, 10, 14.0, 1.0)
            .seed(12)
            .generate();
        let g = &planted.graph;
        let from_scratch = leiden(g);
        let seeded = Leiden::default().run_seeded(g, &from_scratch.membership);
        let q0 = gve_quality::modularity(g, &from_scratch.membership);
        let q1 = gve_quality::modularity(g, &seeded.membership);
        assert!(q1 > q0 - 0.02, "seeded Q {q1} vs scratch {q0}");
        // Seeding with the converged answer should converge quickly.
        assert!(seeded.passes <= from_scratch.passes.max(2));
    }

    #[test]
    fn frontier_run_matches_full_quality() {
        let planted = gve_generate::sbm::PlantedPartition::new(1200, 10, 14.0, 1.0)
            .seed(13)
            .generate();
        let g = &planted.graph;
        let base = leiden(g);
        // Tiny frontier: pretend only a handful of vertices changed.
        let frontier: Vec<u32> = (0..20).collect();
        let result = Leiden::default().run_frontier(g, &base.membership, &frontier);
        gve_quality::validate_membership(&result.membership, g.num_vertices()).unwrap();
        let q_base = gve_quality::modularity(g, &base.membership);
        let q_frontier = gve_quality::modularity(g, &result.membership);
        assert!(
            q_frontier > q_base - 0.02,
            "frontier Q {q_frontier} vs base {q_base}"
        );
        let report = gve_quality::disconnected_communities(g, &result.membership);
        assert!(report.all_connected());
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn seeded_run_rejects_wrong_length() {
        let g = two_triangles();
        Leiden::default().run_seeded(&g, &[0, 1]);
    }

    #[test]
    fn dendrogram_recording_composes_to_membership() {
        let g = gve_generate::sbm::PlantedPartition::new(800, 8, 12.0, 1.0)
            .seed(14)
            .generate()
            .graph;
        let config = LeidenConfig {
            record_dendrogram: true,
            ..LeidenConfig::default()
        };
        let result = Leiden::new(config).run(&g);
        assert_eq!(result.dendrogram.len(), result.passes);
        // Level 0 covers the input graph; each level's ids index the
        // next level.
        assert_eq!(result.dendrogram[0].len(), g.num_vertices());
        for window in result.dendrogram.windows(2) {
            let max = *window[0].iter().max().unwrap() as usize;
            assert_eq!(max + 1, window[1].len());
        }
        // Composing all levels reproduces the final membership (the
        // final renumbering preserves first-appearance order, so the
        // composition matches exactly after densification).
        let mut composed: Vec<u32> = (0..g.num_vertices() as u32).collect();
        for level in &result.dendrogram {
            for c in composed.iter_mut() {
                *c = level[*c as usize];
            }
        }
        let (composed_dense, _) = dendrogram::renumber(&composed);
        assert_eq!(composed_dense, result.membership);
    }

    #[test]
    fn dendrogram_not_recorded_by_default() {
        let g = two_triangles();
        assert!(leiden(&g).dendrogram.is_empty());
    }

    #[test]
    fn color_synchronous_is_deterministic_across_thread_counts() {
        // Unit weights → integral Σ' sums → bitwise determinism.
        let g = gve_generate::sbm::PlantedPartition::new(1000, 8, 12.0, 1.0)
            .seed(17)
            .generate()
            .graph;
        let config = LeidenConfig::default().scheduling(Scheduling::ColorSynchronous);
        let run_in = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| Leiden::new(config.clone()).run(&g).membership)
        };
        let reference = run_in(1);
        assert_eq!(run_in(2), reference, "2 threads diverged");
        assert_eq!(run_in(4), reference, "4 threads diverged");
        // And across repeated runs in the same pool.
        assert_eq!(run_in(4), reference);
    }

    #[test]
    fn color_synchronous_matches_async_quality() {
        let planted = gve_generate::sbm::PlantedPartition::new(1500, 10, 14.0, 1.0)
            .seed(18)
            .generate();
        let g = &planted.graph;
        let async_q = gve_quality::modularity(g, &leiden(g).membership);
        let sync_result =
            Leiden::new(LeidenConfig::default().scheduling(Scheduling::ColorSynchronous)).run(g);
        let sync_q = gve_quality::modularity(g, &sync_result.membership);
        assert!(
            (async_q - sync_q).abs() < 0.05,
            "async {async_q} vs color-sync {sync_q}"
        );
        let nmi =
            gve_quality::normalized_mutual_information(&sync_result.membership, &planted.labels);
        assert!(nmi > 0.9, "NMI {nmi}");
        let report = gve_quality::disconnected_communities(g, &sync_result.membership);
        assert!(report.all_connected());
    }

    #[test]
    fn sort_reduce_aggregation_end_to_end() {
        let planted = gve_generate::sbm::PlantedPartition::new(1200, 10, 14.0, 1.0)
            .seed(19)
            .generate();
        let g = &planted.graph;
        let result =
            Leiden::new(LeidenConfig::default().aggregation(AggregationStrategy::SortReduce))
                .run(g);
        let nmi = gve_quality::normalized_mutual_information(&result.membership, &planted.labels);
        assert!(nmi > 0.9, "NMI {nmi}");
        let q_default = gve_quality::modularity(g, &leiden(g).membership);
        let q_sort = gve_quality::modularity(g, &result.membership);
        assert!((q_default - q_sort).abs() < 0.05, "{q_default} vs {q_sort}");
    }

    #[test]
    fn color_synchronous_supports_random_refinement() {
        let g = gve_generate::rmat::Rmat::web(9, 6.0).seed(3).generate();
        let config = LeidenConfig::default()
            .scheduling(Scheduling::ColorSynchronous)
            .refinement(RefinementStrategy::Random)
            .seed(5);
        let a = Leiden::new(config.clone()).run(&g).membership;
        let b = Leiden::new(config).run(&g).membership;
        assert_eq!(a, b, "seeded random refinement must be reproducible");
        gve_quality::validate_membership(&a, g.num_vertices()).unwrap();
    }
}
