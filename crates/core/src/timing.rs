//! Phase and pass timing instrumentation.
//!
//! Figure 7 of the paper splits GVE-Leiden's runtime by phase
//! (local-moving / refinement / aggregation / others) and by pass (first
//! vs rest); Figure 9 splits the strong-scaling curves the same way.
//! Every run records enough to regenerate those plots.

use std::time::Duration;

/// Accumulated time per algorithm phase across all passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTimings {
    /// Local-moving phase (Algorithm 2).
    pub local_move: Duration,
    /// Refinement phase (Algorithm 3).
    pub refinement: Duration,
    /// Aggregation phase (Algorithm 4).
    pub aggregation: Duration,
    /// Everything else: initialization, renumbering, dendrogram lookup,
    /// membership resets.
    pub other: Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.local_move + self.refinement + self.aggregation + self.other
    }

    /// Per-phase fractions `(local, refine, aggregate, other)` of the
    /// total — the Figure 7(a) split. All zeros for a zero total.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.local_move.as_secs_f64() / total,
            self.refinement.as_secs_f64() / total,
            self.aggregation.as_secs_f64() / total,
            self.other.as_secs_f64() / total,
        )
    }

    /// Element-wise sum, for averaging across repetitions.
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.local_move += other.local_move;
        self.refinement += other.refinement;
        self.aggregation += other.aggregation;
        self.other += other.other;
    }
}

/// Statistics of one pass of the algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct PassStats {
    /// Pass index (0-based).
    pub pass: usize,
    /// Vertices in the graph this pass operated on.
    pub vertices: usize,
    /// Directed arcs in that graph.
    pub arcs: usize,
    /// Local-moving iterations performed (`l_i`).
    pub move_iterations: usize,
    /// Total objective gain of each local-moving iteration — the raw
    /// convergence curve (its length equals `move_iterations`).
    pub iteration_gains: Vec<f64>,
    /// Vertices the refinement phase moved (`l_j`; a Louvain pass,
    /// which has no refinement, reports 0).
    pub refine_moves: u64,
    /// Communities after refinement.
    pub communities: usize,
    /// Vertices claimed (processed) by the pruning bitset across all
    /// local-moving iterations of this pass.
    pub pruning_processed: u64,
    /// Vertices skipped because their pruning flag was already clear —
    /// work the flag-based pruning optimization avoided.
    pub pruning_skipped: u64,
    /// Per-iteration gain tolerance this pass ran with (the threshold
    /// scaling schedule: `initial_tolerance / tolerance_drop^pass`).
    pub tolerance: f64,
    /// Chunks claimed by the local-moving + refinement schedulers this
    /// pass (static, guided, and stealing all count claims).
    pub sched_chunks: u64,
    /// Chunks a stealing worker claimed from another worker's segment
    /// (always 0 under static/guided scheduling).
    pub sched_steals: u64,
    /// Wall time of the local-moving phase of this pass.
    pub local_move_time: Duration,
    /// Wall time of the refinement phase of this pass.
    pub refinement_time: Duration,
    /// Wall time of the aggregation phase run *after* this pass (zero
    /// for the final pass, which is never aggregated).
    pub aggregation_time: Duration,
    /// Wall time of the whole pass, aggregation included.
    pub duration: Duration,
}

impl PassStats {
    /// Whether refinement moved at least one vertex.
    pub fn refine_moved(&self) -> bool {
        self.refine_moves > 0
    }

    /// Aggregation shrink ratio: communities after refinement over
    /// vertices before (`|Γ| / |V'|`, lower = stronger shrink). 1.0 for
    /// an empty pass graph.
    pub fn shrink_ratio(&self) -> f64 {
        if self.vertices == 0 {
            1.0
        } else {
            self.communities as f64 / self.vertices as f64
        }
    }

    /// Fraction of pruning-flag claims that skipped an already-processed
    /// vertex — the hit rate of the paper's flag-based pruning. `None`
    /// when nothing was examined (pruning disabled or an empty graph).
    pub fn pruning_hit_rate(&self) -> Option<f64> {
        let examined = self.pruning_processed + self.pruning_skipped;
        (examined > 0).then(|| self.pruning_skipped as f64 / examined as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_fractions() {
        let t = PhaseTimings {
            local_move: Duration::from_millis(40),
            refinement: Duration::from_millis(20),
            aggregation: Duration::from_millis(30),
            other: Duration::from_millis(10),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        let (l, r, a, o) = t.fractions();
        assert!((l - 0.4).abs() < 1e-9);
        assert!((r - 0.2).abs() < 1e-9);
        assert!((a - 0.3).abs() < 1e-9);
        assert!((o - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_total_gives_zero_fractions() {
        let t = PhaseTimings::default();
        assert_eq!(t.fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    fn stats(vertices: usize, communities: usize, processed: u64, skipped: u64) -> PassStats {
        PassStats {
            pass: 0,
            vertices,
            arcs: 0,
            move_iterations: 0,
            iteration_gains: Vec::new(),
            refine_moves: 0,
            communities,
            pruning_processed: processed,
            pruning_skipped: skipped,
            tolerance: 1e-2,
            sched_chunks: 0,
            sched_steals: 0,
            local_move_time: Duration::ZERO,
            refinement_time: Duration::ZERO,
            aggregation_time: Duration::ZERO,
            duration: Duration::ZERO,
        }
    }

    #[test]
    fn shrink_ratio_and_hit_rate() {
        let s = stats(100, 25, 300, 100);
        assert!((s.shrink_ratio() - 0.25).abs() < 1e-12);
        assert!((s.pruning_hit_rate().unwrap() - 0.25).abs() < 1e-12);
        assert!(!s.refine_moved());

        let empty = stats(0, 0, 0, 0);
        assert_eq!(empty.shrink_ratio(), 1.0);
        assert_eq!(empty.pruning_hit_rate(), None);
    }

    #[test]
    fn accumulate_adds() {
        let mut a = PhaseTimings {
            local_move: Duration::from_millis(1),
            ..Default::default()
        };
        let b = PhaseTimings {
            local_move: Duration::from_millis(2),
            refinement: Duration::from_millis(3),
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.local_move, Duration::from_millis(3));
        assert_eq!(a.refinement, Duration::from_millis(3));
    }
}
