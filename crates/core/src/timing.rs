//! Phase and pass timing instrumentation.
//!
//! Figure 7 of the paper splits GVE-Leiden's runtime by phase
//! (local-moving / refinement / aggregation / others) and by pass (first
//! vs rest); Figure 9 splits the strong-scaling curves the same way.
//! Every run records enough to regenerate those plots.

use std::time::Duration;

/// Accumulated time per algorithm phase across all passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTimings {
    /// Local-moving phase (Algorithm 2).
    pub local_move: Duration,
    /// Refinement phase (Algorithm 3).
    pub refinement: Duration,
    /// Aggregation phase (Algorithm 4).
    pub aggregation: Duration,
    /// Everything else: initialization, renumbering, dendrogram lookup,
    /// membership resets.
    pub other: Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.local_move + self.refinement + self.aggregation + self.other
    }

    /// Per-phase fractions `(local, refine, aggregate, other)` of the
    /// total — the Figure 7(a) split. All zeros for a zero total.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.local_move.as_secs_f64() / total,
            self.refinement.as_secs_f64() / total,
            self.aggregation.as_secs_f64() / total,
            self.other.as_secs_f64() / total,
        )
    }

    /// Element-wise sum, for averaging across repetitions.
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.local_move += other.local_move;
        self.refinement += other.refinement;
        self.aggregation += other.aggregation;
        self.other += other.other;
    }
}

/// Statistics of one pass of the algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct PassStats {
    /// Pass index (0-based).
    pub pass: usize,
    /// Vertices in the graph this pass operated on.
    pub vertices: usize,
    /// Directed arcs in that graph.
    pub arcs: usize,
    /// Local-moving iterations performed (`l_i`).
    pub move_iterations: usize,
    /// Total objective gain of each local-moving iteration — the raw
    /// convergence curve (its length equals `move_iterations`).
    pub iteration_gains: Vec<f64>,
    /// Whether the refinement phase moved any vertex (`l_j`).
    pub refine_moved: bool,
    /// Communities after refinement.
    pub communities: usize,
    /// Wall time of the whole pass.
    pub duration: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_fractions() {
        let t = PhaseTimings {
            local_move: Duration::from_millis(40),
            refinement: Duration::from_millis(20),
            aggregation: Duration::from_millis(30),
            other: Duration::from_millis(10),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        let (l, r, a, o) = t.fractions();
        assert!((l - 0.4).abs() < 1e-9);
        assert!((r - 0.2).abs() < 1e-9);
        assert!((a - 0.3).abs() < 1e-9);
        assert!((o - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_total_gives_zero_fractions() {
        let t = PhaseTimings::default();
        assert_eq!(t.fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn accumulate_adds() {
        let mut a = PhaseTimings {
            local_move: Duration::from_millis(1),
            ..Default::default()
        };
        let b = PhaseTimings {
            local_move: Duration::from_millis(2),
            refinement: Duration::from_millis(3),
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.local_move, Duration::from_millis(3));
        assert_eq!(a.refinement, Duration::from_millis(3));
    }
}
