//! Feature-gated runtime invariant checker (`--features analysis`).
//!
//! The asynchronous scheduling path races on shared membership and Σ′
//! atomics *by design* — the paper's heuristic tolerates stale reads —
//! which means an honest-to-goodness synchronization bug (a lost
//! update, an out-of-bounds community id escaping a phase, a broken
//! prefix sum in aggregation) does not necessarily crash: it silently
//! degrades quality. This module gives the correctness harness teeth:
//! with the `analysis` feature enabled, [`crate::Leiden::run`] verifies
//! after every phase of every pass that
//!
//! * **membership bounds** — every community id is a valid vertex id of
//!   the current pass graph;
//! * **Σ′ totals** — the racy incremental `fetch_sub`/`fetch_add`
//!   bookkeeping agrees with a from-scratch scatter of the penalty
//!   weights over the membership (up to floating-point reassociation);
//! * **CSR consistency** — the aggregated super-vertex graph has a
//!   well-formed prefix-sum offset structure and conserves total arc
//!   weight.
//!
//! Violations panic with the phase and pass identified. The feature is
//! strictly additive: without `--features analysis` none of this is
//! compiled and the hot loops are untouched. It is exercised in CI by
//! `cargo test -p gve-leiden --features analysis` and is the intended
//! build for the nightly ThreadSanitizer job, where the re-derived
//! totals force cross-thread reads TSan can observe.

use gve_graph::{CsrGraph, VertexId};

/// Relative tolerance for Σ′ comparison. The incremental totals and the
/// scatter recompute the same sums in different association orders;
/// with `f64` accumulation over `f32` edge weights the drift stays many
/// orders of magnitude below this.
const SIGMA_RTOL: f64 = 1e-6;

/// Checks that every community id is in-range for an `n`-vertex graph.
pub fn check_membership(membership: &[VertexId], n: usize) -> Result<(), String> {
    if membership.len() != n {
        return Err(format!(
            "membership length {} != vertex count {n}",
            membership.len()
        ));
    }
    for (v, &c) in membership.iter().enumerate() {
        if (c as usize) >= n {
            return Err(format!(
                "vertex {v} has out-of-range community {c} (n = {n})"
            ));
        }
    }
    Ok(())
}

/// Checks the incremental Σ′ totals against a from-scratch scatter of
/// `penalty` (weighted degrees for modularity, vertex sizes for CPM)
/// over `membership`.
pub fn check_sigma(membership: &[VertexId], penalty: &[f64], sigma: &[f64]) -> Result<(), String> {
    let n = membership.len();
    if penalty.len() != n || sigma.len() != n {
        return Err(format!(
            "length mismatch: membership {n}, penalty {}, sigma {}",
            penalty.len(),
            sigma.len()
        ));
    }
    let mut expected = vec![0.0f64; n];
    for (v, &c) in membership.iter().enumerate() {
        expected[c as usize] += penalty[v];
    }
    let scale: f64 = penalty.iter().sum::<f64>().max(1.0);
    for c in 0..n {
        let diff = (expected[c] - sigma[c]).abs();
        if diff > SIGMA_RTOL * scale {
            return Err(format!(
                "sigma[{c}] = {} but members sum to {} (|Δ| = {diff:e})",
                sigma[c], expected[c]
            ));
        }
    }
    Ok(())
}

/// Checks an aggregated super-vertex graph: well-formed CSR prefix
/// sums, the expected vertex count `k`, and conservation of total arc
/// weight from the parent graph.
pub fn check_aggregate(parent: &CsrGraph, supergraph: &CsrGraph, k: usize) -> Result<(), String> {
    supergraph.validate()?;
    if supergraph.num_vertices() != k {
        return Err(format!(
            "supergraph has {} vertices, expected {k} communities",
            supergraph.num_vertices()
        ));
    }
    let w_parent = parent.total_arc_weight();
    let w_super = supergraph.total_arc_weight();
    let diff = (w_parent - w_super).abs();
    if diff > SIGMA_RTOL * w_parent.max(1.0) {
        return Err(format!(
            "aggregation lost weight: parent {w_parent}, supergraph {w_super} (|Δ| = {diff:e})"
        ));
    }
    Ok(())
}

/// Runs the post-phase checks and panics with phase context on failure.
/// Called by [`crate::Leiden::run`] after local-moving and refinement
/// on both scheduling paths.
pub fn assert_phase_state(
    phase: &str,
    pass: usize,
    n: usize,
    membership: &[VertexId],
    penalty: &[f64],
    sigma: &[f64],
) {
    if let Err(e) = check_membership(membership, n) {
        panic!("analysis: pass {pass}, after {phase}: {e}");
    }
    if let Err(e) = check_sigma(membership, penalty, sigma) {
        panic!("analysis: pass {pass}, after {phase}: {e}");
    }
}

/// Runs the post-aggregation checks and panics with pass context.
pub fn assert_aggregate_state(pass: usize, parent: &CsrGraph, supergraph: &CsrGraph, k: usize) {
    if let Err(e) = check_aggregate(parent, supergraph, k) {
        panic!("analysis: pass {pass}, after aggregation: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;

    #[test]
    fn membership_bounds_catch_escapee() {
        assert!(check_membership(&[0, 1, 2], 3).is_ok());
        let err = check_membership(&[0, 3, 2], 3).unwrap_err();
        assert!(err.contains("out-of-range"), "{err}");
        assert!(check_membership(&[0, 1], 3).is_err());
    }

    #[test]
    fn sigma_scatter_catches_lost_update() {
        let membership = [0u32, 0, 2];
        let penalty = [1.0, 2.0, 4.0];
        assert!(check_sigma(&membership, &penalty, &[3.0, 0.0, 4.0]).is_ok());
        // A lost fetch_add on community 0 shows up immediately.
        let err = check_sigma(&membership, &penalty, &[1.0, 0.0, 4.0]).unwrap_err();
        assert!(err.contains("sigma[0]"), "{err}");
    }

    #[test]
    fn sigma_tolerates_fp_reassociation() {
        let membership = [0u32, 0, 0];
        let penalty = [0.1, 0.2, 0.3];
        let drifted = 0.3 + 0.2 + 0.1; // different association order
        assert!(check_sigma(&membership, &penalty, &[drifted, 0.0, 0.0]).is_ok());
    }

    #[test]
    fn aggregate_checks_vertex_count_and_weight() {
        let parent = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (2, 3, 2.0)]);
        let good = GraphBuilder::from_edges(2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        assert!(check_aggregate(&parent, &good, 2).is_ok());
        assert!(check_aggregate(&parent, &good, 3).is_err());
        let lossy = GraphBuilder::from_edges(2, &[(0, 0, 2.0)]);
        let err = check_aggregate(&parent, &lossy, 2).unwrap_err();
        assert!(err.contains("lost weight"), "{err}");
    }

    #[test]
    #[should_panic(expected = "after local-moving")]
    fn assert_phase_state_names_the_phase() {
        assert_phase_state("local-moving", 0, 2, &[0, 5], &[1.0, 1.0], &[2.0, 0.0]);
    }
}
