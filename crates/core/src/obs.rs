//! Observability hooks for the algorithm core.
//!
//! Two consumers, one data source ([`crate::LeidenResult`]):
//!
//! * [`CoreMetrics`] — a bundle of `gve-obs` handles mirroring the
//!   paper's evaluation axes (per-phase wall time for the Figure 7
//!   split, local-move iterations, pruning hit/skip tallies,
//!   refinement moves, aggregation shrink ratio, tolerance-skip
//!   decisions). Attach it to a [`MetricsRegistry`] once and call
//!   [`CoreMetrics::record`] after every run; gve-serve does exactly
//!   this and exposes the result on `GET /metrics`.
//! * a [`Tracer`] — [`RunObserver::observe`] replays the recorded
//!   per-pass statistics as JSONL span events (`run_start`,
//!   `iteration`, `phase`, `pass`, `run_end`), so `gve detect --trace`
//!   leaves a file from which the Figure 7 runtime split can be
//!   reproduced offline (see EXPERIMENTS.md).
//!
//! Everything here runs *after* the algorithm finishes: the hot loops
//! stay untouched, and observation can never perturb the measurement
//! it reports.

use crate::{ChunkScheduling, Leiden, LeidenResult, StopReason};
use gve_graph::CsrGraph;
use gve_obs::{Counter, FloatCounter, Gauge, MetricsRegistry, Tracer, Value};

/// Metric handles covering one Leiden (or Louvain-style) run. All
/// handles are cheap `Arc` clones; the default value is a free-standing
/// bundle that can be attached to a registry with
/// [`CoreMetrics::attach_to`] at any point.
#[derive(Debug, Clone, Default)]
pub struct CoreMetrics {
    /// Completed runs.
    pub runs: Counter,
    /// Passes across all runs (`Σ l_p`).
    pub passes: Counter,
    /// Local-moving iterations across all runs (`Σ l_i`).
    pub move_iterations: Counter,
    /// Vertices processed by the pruning bitset.
    pub pruning_processed: Counter,
    /// Vertices the pruning flags skipped (avoided work).
    pub pruning_skipped: Counter,
    /// Vertices moved by the refinement phase (`Σ l_j`).
    pub refine_moves: Counter,
    /// Runs that stopped because the aggregation tolerance said another
    /// pass would not pay off.
    pub tolerance_skips: Counter,
    /// Shrink ratio `|Γ| / |V'|` of the most recent run's first pass —
    /// the paper's headline aggregation figure (how hard the first,
    /// dominant pass compresses the graph).
    pub aggregation_shrink_ratio: Gauge,
    /// Seconds in the local-moving phase.
    pub local_move_seconds: FloatCounter,
    /// Seconds in the refinement phase.
    pub refinement_seconds: FloatCounter,
    /// Seconds in the aggregation phase.
    pub aggregation_seconds: FloatCounter,
    /// Seconds in everything else (init, renumbering, resets).
    pub other_seconds: FloatCounter,
    /// Scheduler chunks claimed under static chunking.
    pub chunks_static: Counter,
    /// Scheduler chunks claimed under guided chunking.
    pub chunks_guided: Counter,
    /// Scheduler chunks claimed under work-stealing chunking.
    pub chunks_stealing: Counter,
    /// Chunks a stealing worker claimed from another worker's segment.
    pub steals: Counter,
}

impl CoreMetrics {
    /// Creates an unattached bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers every handle under its canonical `gve_leiden_*` name.
    pub fn attach_to(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "gve_leiden_runs_total",
            "Completed community-detection runs.",
            &[],
            &self.runs,
        );
        registry.register_counter(
            "gve_leiden_passes_total",
            "Algorithm passes across all runs.",
            &[],
            &self.passes,
        );
        registry.register_counter(
            "gve_leiden_move_iterations_total",
            "Local-moving iterations across all runs.",
            &[],
            &self.move_iterations,
        );
        registry.register_counter(
            "gve_leiden_pruning_processed_total",
            "Vertices claimed and processed via the pruning bitset.",
            &[],
            &self.pruning_processed,
        );
        registry.register_counter(
            "gve_leiden_pruning_skipped_total",
            "Vertices skipped by the pruning flags (avoided work).",
            &[],
            &self.pruning_skipped,
        );
        registry.register_counter(
            "gve_leiden_refine_moves_total",
            "Vertices moved by the refinement phase.",
            &[],
            &self.refine_moves,
        );
        registry.register_counter(
            "gve_leiden_tolerance_skips_total",
            "Runs stopped early by the aggregation tolerance.",
            &[],
            &self.tolerance_skips,
        );
        registry.register_gauge(
            "gve_leiden_aggregation_shrink_ratio",
            "First-pass communities/vertices ratio of the latest run.",
            &[],
            &self.aggregation_shrink_ratio,
        );
        for (phase, handle) in [
            ("local_move", &self.local_move_seconds),
            ("refinement", &self.refinement_seconds),
            ("aggregation", &self.aggregation_seconds),
            ("other", &self.other_seconds),
        ] {
            registry.register_float_counter(
                "gve_leiden_phase_seconds_total",
                "Wall-clock seconds per algorithm phase.",
                &[("phase", phase)],
                handle,
            );
        }
        for (policy, handle) in [
            ("static", &self.chunks_static),
            ("guided", &self.chunks_guided),
            ("stealing", &self.chunks_stealing),
        ] {
            registry.register_counter(
                "gve_core_chunks_total",
                "Scheduler chunks claimed by the local-moving and refinement phases.",
                &[("policy", policy)],
                handle,
            );
        }
        registry.register_counter(
            "gve_core_steals_total",
            "Chunks a work-stealing worker claimed from another worker's segment.",
            &[],
            &self.steals,
        );
    }

    /// Folds one finished run into the handles.
    pub fn record(&self, result: &LeidenResult) {
        self.runs.inc();
        self.passes.add(result.passes as u64);
        self.move_iterations.add(result.move_iterations as u64);
        let chunk_counter = match result.chunking {
            ChunkScheduling::Static => &self.chunks_static,
            ChunkScheduling::Guided => &self.chunks_guided,
            ChunkScheduling::Stealing => &self.chunks_stealing,
        };
        for stats in &result.pass_stats {
            self.pruning_processed.add(stats.pruning_processed);
            self.pruning_skipped.add(stats.pruning_skipped);
            self.refine_moves.add(stats.refine_moves);
            chunk_counter.add(stats.sched_chunks);
            self.steals.add(stats.sched_steals);
        }
        if result.stop == StopReason::AggregationTolerance {
            self.tolerance_skips.inc();
        }
        if let Some(first) = result.pass_stats.first() {
            self.aggregation_shrink_ratio.set(first.shrink_ratio());
        }
        self.local_move_seconds
            .add_duration(result.timings.local_move);
        self.refinement_seconds
            .add_duration(result.timings.refinement);
        self.aggregation_seconds
            .add_duration(result.timings.aggregation);
        self.other_seconds.add_duration(result.timings.other);
    }
}

/// Optional observation sinks for a run: either side may be absent, and
/// an empty observer is free.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunObserver<'a> {
    /// Metric bundle to fold the finished run into.
    pub metrics: Option<&'a CoreMetrics>,
    /// Tracer receiving the JSONL span replay.
    pub tracer: Option<&'a Tracer>,
}

impl<'a> RunObserver<'a> {
    /// An observer recording into `metrics` only.
    pub fn with_metrics(metrics: &'a CoreMetrics) -> Self {
        Self {
            metrics: Some(metrics),
            tracer: None,
        }
    }

    /// An observer tracing into `tracer` only.
    pub fn with_tracer(tracer: &'a Tracer) -> Self {
        Self {
            metrics: None,
            tracer: Some(tracer),
        }
    }

    /// Records a finished run into whichever sinks are present. Called
    /// by [`Leiden::run_observed`]; callers using `run_seeded` /
    /// `run_frontier` can invoke it directly on their result.
    pub fn observe(&self, result: &LeidenResult) {
        if let Some(metrics) = self.metrics {
            metrics.record(result);
        }
        if let Some(tracer) = self.tracer {
            trace_run(tracer, result);
        }
    }
}

const US_PER_SEC: f64 = 1e6;

/// Replays a finished run as JSONL span events: `run_start`, then per
/// pass an `iteration` event per local-moving iteration, a `phase`
/// event for each of local_move / refinement / aggregation, and a
/// `pass` summary; finally `run_end`.
fn trace_run(tracer: &Tracer, result: &LeidenResult) {
    let vertices = result.membership.len();
    tracer.event(
        "run_start",
        &[
            ("vertices", Value::from(vertices)),
            ("passes", Value::from(result.passes)),
            ("chunking", Value::from(result.chunking.label())),
        ],
    );
    for stats in &result.pass_stats {
        for (i, &gain) in stats.iteration_gains.iter().enumerate() {
            tracer.event(
                "iteration",
                &[
                    ("pass", Value::from(stats.pass)),
                    ("iteration", Value::from(i)),
                    ("gain", Value::F64(gain)),
                ],
            );
        }
        for (phase, duration) in [
            ("local_move", stats.local_move_time),
            ("refinement", stats.refinement_time),
            ("aggregation", stats.aggregation_time),
        ] {
            tracer.event(
                "phase",
                &[
                    ("pass", Value::from(stats.pass)),
                    ("phase", Value::from(phase)),
                    (
                        "dur_us",
                        Value::U64((duration.as_secs_f64() * US_PER_SEC) as u64),
                    ),
                ],
            );
        }
        tracer.event(
            "pass",
            &[
                ("pass", Value::from(stats.pass)),
                ("vertices", Value::from(stats.vertices)),
                ("arcs", Value::from(stats.arcs)),
                ("move_iterations", Value::from(stats.move_iterations)),
                ("refine_moves", Value::from(stats.refine_moves)),
                ("communities", Value::from(stats.communities)),
                ("shrink_ratio", Value::F64(stats.shrink_ratio())),
                ("pruning_processed", Value::from(stats.pruning_processed)),
                ("pruning_skipped", Value::from(stats.pruning_skipped)),
                ("tolerance", Value::F64(stats.tolerance)),
                ("sched_chunks", Value::from(stats.sched_chunks)),
                ("sched_steals", Value::from(stats.sched_steals)),
                (
                    "dur_us",
                    Value::U64((stats.duration.as_secs_f64() * US_PER_SEC) as u64),
                ),
            ],
        );
    }
    tracer.event(
        "run_end",
        &[
            ("passes", Value::from(result.passes)),
            ("communities", Value::from(result.num_communities)),
            ("move_iterations", Value::from(result.move_iterations)),
            ("stop", Value::from(result.stop.label())),
            (
                "dur_us",
                Value::U64((result.timings.total().as_secs_f64() * US_PER_SEC) as u64),
            ),
        ],
    );
    tracer.flush();
}

impl Leiden {
    /// Runs the algorithm like [`Leiden::run`] and feeds the finished
    /// result to the observer — metrics fold-in and/or JSONL trace
    /// replay. Observation happens after the run completes, so the hot
    /// path is identical to an unobserved run.
    pub fn run_observed(&self, graph: &CsrGraph, observer: &RunObserver) -> LeidenResult {
        let result = self.run(graph);
        observer.observe(&result);
        result
    }

    /// Workspace-reusing variant of [`Leiden::run_observed`]: like
    /// [`Leiden::run_in`], the pass loop borrows every buffer from
    /// `workspace`, so a resident service pooling workspaces performs no
    /// steady-state allocation in the Leiden hot path.
    pub fn run_observed_in(
        &self,
        graph: &CsrGraph,
        workspace: &mut crate::PassWorkspace,
        observer: &RunObserver,
    ) -> LeidenResult {
        let result = self.run_in(graph, workspace);
        observer.observe(&result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeidenConfig;
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    fn sample_graph() -> CsrGraph {
        gve_generate::sbm::PlantedPartition::new(600, 6, 12.0, 1.0)
            .seed(21)
            .generate()
            .graph
    }

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn run_observed_matches_run_and_fills_metrics() {
        let graph = sample_graph();
        let metrics = CoreMetrics::new();
        let observer = RunObserver::with_metrics(&metrics);
        let result = Leiden::default().run_observed(&graph, &observer);

        assert_eq!(metrics.runs.get(), 1);
        assert_eq!(metrics.passes.get(), result.passes as u64);
        assert_eq!(metrics.move_iterations.get(), result.move_iterations as u64);
        assert!(metrics.pruning_processed.get() >= graph.num_vertices() as u64);
        assert!(metrics.local_move_seconds.get() > 0.0);
        let ratio = metrics.aggregation_shrink_ratio.get();
        assert!(ratio > 0.0 && ratio <= 1.0, "shrink ratio {ratio}");

        // Second run accumulates.
        Leiden::default().run_observed(&graph, &observer);
        assert_eq!(metrics.runs.get(), 2);
    }

    #[test]
    fn attach_to_renders_all_core_names() {
        let registry = MetricsRegistry::new();
        let metrics = CoreMetrics::new();
        metrics.attach_to(&registry);
        metrics.record(&Leiden::default().run(&sample_graph()));
        let text = registry.render();
        for name in [
            "gve_leiden_runs_total",
            "gve_leiden_passes_total",
            "gve_leiden_move_iterations_total",
            "gve_leiden_pruning_processed_total",
            "gve_leiden_pruning_skipped_total",
            "gve_leiden_refine_moves_total",
            "gve_leiden_tolerance_skips_total",
            "gve_leiden_aggregation_shrink_ratio",
            "gve_leiden_phase_seconds_total",
            "gve_core_chunks_total",
            "gve_core_steals_total",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("gve_leiden_phase_seconds_total{phase=\"local_move\"}"));
        assert!(text.contains("gve_leiden_phase_seconds_total{phase=\"aggregation\"}"));
        for policy in ["static", "guided", "stealing"] {
            assert!(
                text.contains(&format!("gve_core_chunks_total{{policy=\"{policy}\"}}")),
                "missing chunks counter for {policy}:\n{text}"
            );
        }
        // The default config schedules statically, so its chunk claims
        // land on the static policy counter.
        assert!(metrics.chunks_static.get() > 0);
        assert_eq!(metrics.chunks_guided.get(), 0);
        assert_eq!(metrics.steals.get(), 0);
    }

    #[test]
    fn scheduling_policies_fill_their_own_counters() {
        let graph = sample_graph();
        for (chunking, expect_counter) in [
            (ChunkScheduling::Guided, 1usize),
            (ChunkScheduling::Stealing, 2usize),
        ] {
            let metrics = CoreMetrics::new();
            let config = LeidenConfig::default().chunking(chunking);
            let result =
                Leiden::new(config).run_observed(&graph, &RunObserver::with_metrics(&metrics));
            assert!(result.num_communities > 1);
            let (guided, stealing) = (metrics.chunks_guided.get(), metrics.chunks_stealing.get());
            match expect_counter {
                1 => assert!(guided > 0 && stealing == 0, "guided={guided}"),
                _ => assert!(stealing > 0 && guided == 0, "stealing={stealing}"),
            }
            assert_eq!(metrics.chunks_static.get(), 0);
        }
    }

    #[test]
    fn trace_covers_every_phase_of_every_pass() {
        let buf = SharedBuf::default();
        let tracer = Tracer::to_writer(Box::new(buf.clone()));
        let observer = RunObserver::with_tracer(&tracer);
        let result = Leiden::new(LeidenConfig::default()).run_observed(&sample_graph(), &observer);
        tracer.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();

        assert!(text.lines().count() >= 2 + 4 * result.passes);
        assert!(text.contains("\"event\":\"run_start\""));
        assert!(text.contains("\"event\":\"run_end\""));
        for pass in 0..result.passes {
            for phase in ["local_move", "refinement", "aggregation"] {
                let span = text.lines().any(|l| {
                    l.contains("\"event\":\"phase\"")
                        && l.contains(&format!("\"pass\":{pass},"))
                        && l.contains(&format!("\"phase\":\"{phase}\""))
                });
                assert!(
                    span,
                    "missing phase span pass={pass} phase={phase}:\n{text}"
                );
            }
            assert!(
                text.lines().any(|l| l.contains("\"event\":\"pass\"")
                    && l.contains(&format!("\"pass\":{pass},"))),
                "missing pass summary for pass {pass}"
            );
        }
        // Per-iteration gains are present.
        assert!(text.contains("\"event\":\"iteration\""));
        assert!(text.contains("\"gain\":"));
        assert!(text.contains(&format!("\"stop\":\"{}\"", result.stop.label())));
        // Scheduling policy and per-pass scheduler counters are traced.
        assert!(text.contains("\"chunking\":\"static\""));
        assert!(text.contains("\"sched_chunks\":"));
        assert!(text.contains("\"sched_steals\":0"));
    }
}
