//! Configuration of the GVE-Leiden algorithm.
//!
//! Defaults are the paper's published parameters (§4.1): initial
//! tolerance 0.01, tolerance drop rate 10 (threshold scaling), iteration
//! cap 20, pass cap 10, aggregation tolerance 0.8, greedy refinement and
//! move-based super-vertex labeling, optimizing modularity.

use crate::objective::Objective;
pub use gve_graph::VertexOrdering;

/// Default degree cutoff for the fused kernel's stack tier. Chosen from
/// the `kernels` benchmark sweep: thresholds 8–16 beat both the v1 table
/// and a full-capacity (64) stack tier on R-MAT and SBM inputs, because
/// the linear map's compare count grows quadratically with the number of
/// distinct candidate communities.
pub const DEFAULT_SMALL_DEGREE_THRESHOLD: usize = 16;

/// Which neighbourhood-scan kernel the asynchronous phases use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelVersion {
    /// Two-pass reference kernel: scan all neighbour communities into
    /// the per-thread collision-free table, then a second pass over the
    /// touched keys picks the best target. Kept as the differential
    /// baseline for the fused kernel.
    V1,
    /// Fused degree-aware kernel (the default): vertices with degree ≤
    /// [`LeidenConfig::small_degree_threshold`] tally neighbour
    /// communities in a stack-resident map *and* pick the best target in
    /// the same pass, loading each candidate's `Σ'` exactly once; hubs
    /// fall back to the v1 path.
    #[default]
    V2,
    /// Lane-chunked kernel: accumulate-only edge scan over direct CSR
    /// row slices (interleaved when built, split otherwise) with
    /// batched membership loads, then one lane-parallel choose pass
    /// over the candidate set (`gve_prim::simd`). Same two-tier
    /// stack/table dispatch as v2, bit-identical choices to v1 on
    /// frozen state.
    V3,
}

impl KernelVersion {
    /// Parses a CLI/config token: `v1`, `v2` or `v3`.
    pub fn parse(token: &str) -> Result<Self, String> {
        match token {
            "v1" => Ok(Self::V1),
            "v2" => Ok(Self::V2),
            "v3" => Ok(Self::V3),
            other => Err(format!("unknown kernel '{other}' (expected v1|v2|v3)")),
        }
    }

    /// Canonical token for fingerprints and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Self::V1 => "v1",
            Self::V2 => "v2",
            Self::V3 => "v3",
        }
    }
}

/// How the parallel phase loops carve the vertex range into per-worker
/// claims (orthogonal to [`Scheduling`], which governs the freshness of
/// the state those workers observe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkScheduling {
    /// Fixed-size vertex chunks off one shared cursor (the original
    /// `dynamic_workers` behaviour).
    #[default]
    Static,
    /// Arc-proportional shrinking chunks (OpenMP `schedule(guided)`
    /// over arc mass): each claim takes `remaining_arcs / (2·workers)`
    /// arcs, so skewed degree distributions self-balance.
    Guided,
    /// Arc-balanced per-worker segments with steal-on-empty: a
    /// straggler chunk of hubs can be drained by idle workers.
    Stealing,
}

impl ChunkScheduling {
    /// Parses a CLI/config token: `static`, `guided` or `stealing`.
    pub fn parse(token: &str) -> Result<Self, String> {
        match token {
            "static" => Ok(Self::Static),
            "guided" => Ok(Self::Guided),
            "stealing" => Ok(Self::Stealing),
            other => Err(format!(
                "unknown chunk scheduling '{other}' (expected static|guided|stealing)"
            )),
        }
    }

    /// Canonical token for fingerprints and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Self::Static => "static",
            Self::Guided => "guided",
            Self::Stealing => "stealing",
        }
    }
}

/// Physical layout of the CSR arc arrays during detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeLayout {
    /// Separate `targets` / `weights` arrays (two cache streams per
    /// neighbour scan).
    #[default]
    Split,
    /// Interleaved `(target, weight)` pairs, built once per pass graph
    /// (one cache stream per scan, at the cost of one extra copy of the
    /// arcs).
    Interleaved,
}

impl EdgeLayout {
    /// Parses a CLI/config token: `split` or `interleaved`.
    pub fn parse(token: &str) -> Result<Self, String> {
        match token {
            "split" => Ok(Self::Split),
            "interleaved" => Ok(Self::Interleaved),
            other => Err(format!(
                "unknown edge layout '{other}' (expected split|interleaved)"
            )),
        }
    }

    /// Canonical token for fingerprints and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Self::Split => "split",
            Self::Interleaved => "interleaved",
        }
    }
}

/// How the refinement phase picks the target sub-community.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinementStrategy {
    /// Pick the community with maximum delta-modularity (the paper's
    /// best-performing variant).
    Greedy,
    /// Pick proportionally to delta-modularity using xorshift32 streams,
    /// as in the original Leiden algorithm.
    Random,
}

/// How super-vertices are labeled after aggregation, i.e. which
/// partition seeds the next pass's local-moving phase (Figures 3 and 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Labeling {
    /// Super-vertices start grouped by their local-moving community —
    /// the variant recommended by Traag et al. and used by default.
    MoveBased,
    /// Super-vertices start as singletons (each refined community its
    /// own community).
    RefineBased,
}

/// How the parallel phases are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Asynchronous (the paper's design): threads observe each other's
    /// partial updates. Fast convergence; results vary run to run.
    #[default]
    Asynchronous,
    /// Color-synchronous (Grappolo-style, the paper's related work
    /// \[11\]): graph-coloring rounds with frozen state, reproducible
    /// across runs and thread counts. Slower.
    ColorSynchronous,
}

impl Scheduling {
    /// Parses a scheduling token (CLI flags, serve API).
    pub fn parse(token: &str) -> Result<Self, String> {
        match token {
            "async" => Ok(Self::Asynchronous),
            "color-sync" => Ok(Self::ColorSynchronous),
            other => Err(format!(
                "unknown scheduling '{other}' (expected async|color-sync)"
            )),
        }
    }

    /// Canonical token.
    pub fn label(self) -> &'static str {
        match self {
            Self::Asynchronous => "async",
            Self::ColorSynchronous => "color-sync",
        }
    }
}

/// How the aggregation phase combines arcs between super-vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationStrategy {
    /// Per-thread collision-free hashtables over a holey CSR — the
    /// paper's optimized design (Algorithm 4).
    #[default]
    Hashtable,
    /// Sort-reduce: materialize all community arcs, parallel-sort, and
    /// reduce runs — the alternative the paper's related work cites
    /// (Cheong et al. \[4\]). Simpler, more memory traffic.
    SortReduce,
}

/// Optimization level of the run (§4.1's default / medium / heavy
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// All optimizations on.
    Default,
    /// Threshold scaling disabled.
    Medium,
    /// Threshold scaling *and* aggregation tolerance disabled.
    Heavy,
}

/// Full parameter set for a GVE-Leiden run.
#[derive(Debug, Clone)]
pub struct LeidenConfig {
    /// Maximum number of passes (local-move → refine → aggregate).
    pub max_passes: usize,
    /// Maximum local-moving iterations per pass.
    pub max_iterations: usize,
    /// Initial per-iteration convergence tolerance `τ` on the summed
    /// delta-modularity.
    pub initial_tolerance: f64,
    /// Divisor applied to `τ` after each pass when threshold scaling is
    /// enabled (`TOLERANCE_DROP`).
    pub tolerance_drop: f64,
    /// Enables threshold scaling (disabled by the medium/heavy
    /// variants).
    pub threshold_scaling: bool,
    /// Community-count shrink ratio above which further aggregation is
    /// deemed useless and the algorithm stops (`τ_agg`).
    pub aggregation_tolerance: f64,
    /// Enables the aggregation-tolerance early exit (disabled by the
    /// heavy variant).
    pub use_aggregation_tolerance: bool,
    /// Refinement strategy.
    pub refinement: RefinementStrategy,
    /// Super-vertex labeling.
    pub labeling: Labeling,
    /// Quality function to optimize (modularity by default; CPM is the
    /// resolution-limit-free alternative the paper cites in §2).
    pub objective: Objective,
    /// Enables flag-based vertex pruning in the local-moving phase
    /// (ablation toggle; the paper always runs with it on).
    pub pruning: bool,
    /// Records the per-pass dendrogram levels in the result (off by
    /// default — costs one `Vec<u32>` clone per pass).
    pub record_dendrogram: bool,
    /// Parallel scheduling discipline.
    pub scheduling: Scheduling,
    /// Aggregation-phase algorithm.
    pub aggregation: AggregationStrategy,
    /// Dynamic-schedule chunk size for the parallel loops.
    pub chunk_size: usize,
    /// Claim policy for the phase loops (static chunks, guided
    /// shrinking chunks, or work stealing over arc-balanced segments).
    pub chunking: ChunkScheduling,
    /// Seed for the randomized refinement streams.
    pub seed: u64,
    /// Neighbourhood-scan kernel for the asynchronous phases.
    pub kernel: KernelVersion,
    /// Degree cutoff for the fused kernel's stack-resident tier; must
    /// not exceed [`gve_prim::SMALL_SCAN_CAP`]. Vertices above it use
    /// the per-thread table. Defaults to
    /// [`DEFAULT_SMALL_DEGREE_THRESHOLD`]: the map's lookup is a linear
    /// scan, so past ~16 distinct candidates its O(d²) compare count
    /// outweighs the cache-locality win over the dense table (measured
    /// in `BENCH_kernels.json`).
    pub small_degree_threshold: usize,
    /// Cache-aware vertex relabeling applied before detection
    /// (memberships are still reported in the caller's original ids).
    pub ordering: VertexOrdering,
    /// Physical arc layout used during detection.
    pub layout: EdgeLayout,
}

impl Default for LeidenConfig {
    fn default() -> Self {
        Self {
            max_passes: 10,
            max_iterations: 20,
            initial_tolerance: 1e-2,
            tolerance_drop: 10.0,
            threshold_scaling: true,
            aggregation_tolerance: 0.8,
            use_aggregation_tolerance: true,
            refinement: RefinementStrategy::Greedy,
            labeling: Labeling::MoveBased,
            objective: Objective::default(),
            pruning: true,
            record_dendrogram: false,
            scheduling: Scheduling::default(),
            aggregation: AggregationStrategy::default(),
            chunk_size: gve_prim::parfor::DEFAULT_CHUNK,
            chunking: ChunkScheduling::default(),
            seed: 0,
            kernel: KernelVersion::default(),
            small_degree_threshold: DEFAULT_SMALL_DEGREE_THRESHOLD,
            ordering: VertexOrdering::default(),
            layout: EdgeLayout::default(),
        }
    }
}

impl LeidenConfig {
    /// Applies one of the paper's optimization variants.
    pub fn variant(mut self, variant: Variant) -> Self {
        match variant {
            Variant::Default => {
                self.threshold_scaling = true;
                self.use_aggregation_tolerance = true;
            }
            Variant::Medium => {
                self.threshold_scaling = false;
                self.use_aggregation_tolerance = true;
            }
            Variant::Heavy => {
                self.threshold_scaling = false;
                self.use_aggregation_tolerance = false;
            }
        }
        self
    }

    /// Sets the refinement strategy.
    pub fn refinement(mut self, strategy: RefinementStrategy) -> Self {
        self.refinement = strategy;
        self
    }

    /// Sets the super-vertex labeling.
    pub fn labeling(mut self, labeling: Labeling) -> Self {
        self.labeling = labeling;
        self
    }

    /// Sets the RNG seed used by randomized refinement.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the quality function to optimize.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the scheduling discipline.
    pub fn scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Sets the aggregation strategy.
    pub fn aggregation(mut self, aggregation: AggregationStrategy) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Sets the neighbourhood-scan kernel.
    pub fn kernel(mut self, kernel: KernelVersion) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the dynamic-schedule chunk size.
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Sets the claim policy for the phase loops.
    pub fn chunking(mut self, chunking: ChunkScheduling) -> Self {
        self.chunking = chunking;
        self
    }

    /// Sets the fused kernel's degree cutoff.
    pub fn small_degree_threshold(mut self, threshold: usize) -> Self {
        self.small_degree_threshold = threshold;
        self
    }

    /// Sets the cache-aware vertex ordering.
    pub fn ordering(mut self, ordering: VertexOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the physical arc layout.
    pub fn layout(mut self, layout: EdgeLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_passes == 0 {
            return Err("max_passes must be at least 1".into());
        }
        if self.max_iterations == 0 {
            return Err("max_iterations must be at least 1".into());
        }
        if self.initial_tolerance < 0.0 {
            return Err("initial_tolerance must be nonnegative".into());
        }
        if self.tolerance_drop < 1.0 {
            return Err("tolerance_drop must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.aggregation_tolerance) {
            return Err("aggregation_tolerance must be in [0, 1]".into());
        }
        if self.chunk_size == 0 {
            return Err("chunk_size must be positive".into());
        }
        if self.small_degree_threshold == 0 {
            return Err("small_degree_threshold must be positive".into());
        }
        if self.small_degree_threshold > gve_prim::SMALL_SCAN_CAP {
            return Err(format!(
                "small_degree_threshold {} exceeds the stack map capacity {}",
                self.small_degree_threshold,
                gve_prim::SMALL_SCAN_CAP
            ));
        }
        // partial_cmp keeps NaN resolutions rejected alongside <= 0.
        if self.objective.resolution().partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("objective resolution must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = LeidenConfig::default();
        assert_eq!(c.max_passes, 10);
        assert_eq!(c.max_iterations, 20);
        assert_eq!(c.initial_tolerance, 1e-2);
        assert_eq!(c.tolerance_drop, 10.0);
        assert_eq!(c.aggregation_tolerance, 0.8);
        assert_eq!(c.refinement, RefinementStrategy::Greedy);
        assert_eq!(c.labeling, Labeling::MoveBased);
        assert!(c.threshold_scaling);
        assert!(c.use_aggregation_tolerance);
        assert!(c.pruning);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn variants_toggle_the_right_flags() {
        let medium = LeidenConfig::default().variant(Variant::Medium);
        assert!(!medium.threshold_scaling);
        assert!(medium.use_aggregation_tolerance);
        let heavy = LeidenConfig::default().variant(Variant::Heavy);
        assert!(!heavy.threshold_scaling);
        assert!(!heavy.use_aggregation_tolerance);
        let back = heavy.variant(Variant::Default);
        assert!(back.threshold_scaling && back.use_aggregation_tolerance);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let c = LeidenConfig {
            max_passes: 0,
            ..LeidenConfig::default()
        };
        assert!(c.validate().is_err());
        let c = LeidenConfig {
            tolerance_drop: 0.5,
            ..LeidenConfig::default()
        };
        assert!(c.validate().is_err());
        let c = LeidenConfig {
            aggregation_tolerance: 1.5,
            ..LeidenConfig::default()
        };
        assert!(c.validate().is_err());
        let c = LeidenConfig {
            chunk_size: 0,
            ..LeidenConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn objective_resolution_validated() {
        let mut c = LeidenConfig {
            objective: Objective::Cpm { resolution: 0.0 },
            ..LeidenConfig::default()
        };
        assert!(c.validate().is_err());
        c.objective = Objective::Modularity { resolution: -1.0 };
        assert!(c.validate().is_err());
        c.objective = Objective::Cpm { resolution: 0.05 };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_chain() {
        let c = LeidenConfig::default()
            .refinement(RefinementStrategy::Random)
            .labeling(Labeling::RefineBased)
            .seed(99)
            .kernel(KernelVersion::V1)
            .chunk_size(512)
            .small_degree_threshold(32)
            .ordering(VertexOrdering::DegreeDesc)
            .layout(EdgeLayout::Interleaved);
        assert_eq!(c.refinement, RefinementStrategy::Random);
        assert_eq!(c.labeling, Labeling::RefineBased);
        assert_eq!(c.seed, 99);
        assert_eq!(c.kernel, KernelVersion::V1);
        assert_eq!(c.chunk_size, 512);
        assert_eq!(c.small_degree_threshold, 32);
        assert_eq!(c.ordering, VertexOrdering::DegreeDesc);
        assert_eq!(c.layout, EdgeLayout::Interleaved);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn kernel_v2_is_the_default() {
        let c = LeidenConfig::default();
        assert_eq!(c.kernel, KernelVersion::V2);
        assert_eq!(c.small_degree_threshold, DEFAULT_SMALL_DEGREE_THRESHOLD);
        assert_eq!(c.ordering, VertexOrdering::Original);
        assert_eq!(c.layout, EdgeLayout::Split);
    }

    #[test]
    fn small_degree_threshold_is_validated() {
        let c = LeidenConfig::default().small_degree_threshold(0);
        assert!(c.validate().is_err());
        let c = LeidenConfig::default().small_degree_threshold(gve_prim::SMALL_SCAN_CAP + 1);
        assert!(c.validate().unwrap_err().contains("capacity"));
        let c = LeidenConfig::default().small_degree_threshold(gve_prim::SMALL_SCAN_CAP);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn kernel_and_layout_tokens_round_trip() {
        for k in [KernelVersion::V1, KernelVersion::V2, KernelVersion::V3] {
            assert_eq!(KernelVersion::parse(k.label()), Ok(k));
        }
        for l in [EdgeLayout::Split, EdgeLayout::Interleaved] {
            assert_eq!(EdgeLayout::parse(l.label()), Ok(l));
        }
        assert!(KernelVersion::parse("v4").is_err());
        assert!(EdgeLayout::parse("columnar").is_err());
    }

    #[test]
    fn chunk_scheduling_tokens_round_trip() {
        for s in [
            ChunkScheduling::Static,
            ChunkScheduling::Guided,
            ChunkScheduling::Stealing,
        ] {
            assert_eq!(ChunkScheduling::parse(s.label()), Ok(s));
        }
        assert!(ChunkScheduling::parse("dynamic").is_err());
        assert_eq!(LeidenConfig::default().chunking, ChunkScheduling::Static);
        let c = LeidenConfig::default().chunking(ChunkScheduling::Guided);
        assert_eq!(c.chunking, ChunkScheduling::Guided);
        assert!(c.validate().is_ok());
    }
}
