//! Property tests for the `analysis` invariant checker: a full Leiden
//! run over random graphs must pass every post-phase check (the checks
//! fire *inside* `run` when the feature is on — reaching this file's
//! assertions at all means no phase tripped them), and the checker's
//! primitives must accept the final state.
//!
//! Build with `cargo test -p gve-leiden --features analysis`.
#![cfg(feature = "analysis")]

use gve_graph::GraphBuilder;
use gve_leiden::{analysis, Leiden, LeidenConfig, Objective, Scheduling};
use proptest::prelude::*;

/// Random small weighted multigraphs (self-loops and duplicates kept:
/// the invariants must hold on messy inputs too).
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32, f32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 1u32..6), 1..max_m).prop_map(move |edges| {
            (
                n,
                edges
                    .into_iter()
                    .map(|(u, v, w)| (u, v, w as f32))
                    .collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Asynchronous scheduling: every phase of every pass satisfies the
    /// membership/Σ′/CSR invariants on random graphs, and the result is
    /// a valid dense partition.
    #[test]
    fn async_full_run_passes_all_phase_checks(
        (n, edges) in arb_graph(64, 300),
    ) {
        let graph = GraphBuilder::from_edges(n as usize, &edges);
        let result = Leiden::default().run(&graph);
        gve_quality::validate_membership(&result.membership, graph.num_vertices())
            .expect("final membership must be a valid dense partition");
        analysis::check_membership(&result.membership, graph.num_vertices())
            .expect("final membership in bounds");
    }

    /// The color-synchronous path runs the same checks on its plain
    /// (non-atomic) state.
    #[test]
    fn color_sync_full_run_passes_all_phase_checks(
        (n, edges) in arb_graph(48, 200),
    ) {
        let graph = GraphBuilder::from_edges(n as usize, &edges);
        let config = LeidenConfig::default().scheduling(Scheduling::ColorSynchronous);
        let result = Leiden::new(config).run(&graph);
        gve_quality::validate_membership(&result.membership, graph.num_vertices())
            .expect("final membership must be a valid dense partition");
    }

    /// CPM carries vertex *sizes* as the penalty across aggregations —
    /// the Σ′ scatter check must hold for that bookkeeping too.
    #[test]
    fn cpm_full_run_passes_all_phase_checks(
        (n, edges) in arb_graph(48, 200),
    ) {
        let graph = GraphBuilder::from_edges(n as usize, &edges);
        let config = LeidenConfig::default().objective(Objective::Cpm { resolution: 0.05 });
        let result = Leiden::new(config).run(&graph);
        gve_quality::validate_membership(&result.membership, graph.num_vertices())
            .expect("final membership must be a valid dense partition");
    }
}

/// A larger structured graph drives multiple passes (aggregation
/// included), so the post-aggregation CSR/weight checks execute.
#[test]
fn planted_partition_run_exercises_aggregation_checks() {
    let planted = gve_generate::sbm::PlantedPartition::new(1500, 10, 14.0, 1.0)
        .seed(23)
        .generate();
    let result = Leiden::default().run(&planted.graph);
    assert!(result.passes >= 2, "need aggregation to run its checks");
    let nmi = gve_quality::normalized_mutual_information(&result.membership, &planted.labels);
    assert!(nmi > 0.9, "NMI {nmi}");
}
