//! Exhaustive configuration-matrix sweep: every combination of
//! scheduling × refinement × labeling × aggregation × objective runs on
//! representative graphs of each class and upholds the core invariants —
//! valid dense partition, bounded quality, connectivity guarantee, and
//! quality parity with the default configuration.

use gve_graph::CsrGraph;
use gve_leiden::{
    AggregationStrategy, Labeling, Leiden, LeidenConfig, Objective, RefinementStrategy, Scheduling,
};

fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "planted",
            gve_generate::sbm::PlantedPartition::new(600, 6, 12.0, 1.5)
                .seed(3)
                .generate()
                .graph,
        ),
        (
            "rmat-web",
            gve_generate::rmat::Rmat::web(9, 6.0).seed(4).generate(),
        ),
        ("kmer", gve_generate::kmer::kmer_chains(2000, 12, 0.05, 5)),
        ("ring", gve_generate::ring::ring_of_cliques(6, 5)),
    ]
}

fn all_configs() -> Vec<(String, LeidenConfig)> {
    let mut configs = Vec::new();
    for scheduling in [Scheduling::Asynchronous, Scheduling::ColorSynchronous] {
        for refinement in [RefinementStrategy::Greedy, RefinementStrategy::Random] {
            for labeling in [Labeling::MoveBased, Labeling::RefineBased] {
                for aggregation in [
                    AggregationStrategy::Hashtable,
                    AggregationStrategy::SortReduce,
                ] {
                    let config = LeidenConfig::default()
                        .scheduling(scheduling)
                        .refinement(refinement)
                        .labeling(labeling)
                        .aggregation(aggregation)
                        .seed(11);
                    configs.push((
                        format!("{scheduling:?}/{refinement:?}/{labeling:?}/{aggregation:?}"),
                        config,
                    ));
                }
            }
        }
    }
    configs
}

#[test]
fn every_configuration_upholds_invariants_on_every_class() {
    for (graph_name, graph) in test_graphs() {
        let reference_q = gve_quality::modularity(&graph, &gve_leiden::leiden(&graph).membership);
        for (config_name, config) in all_configs() {
            let result = Leiden::new(config).run(&graph);
            let label = format!("{graph_name} × {config_name}");

            gve_quality::validate_membership(&result.membership, graph.num_vertices())
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let max = result.membership.iter().copied().max().unwrap_or(0) as usize;
            assert_eq!(
                max + 1,
                result.num_communities.max(1),
                "{label}: ids not dense"
            );

            let q = gve_quality::modularity(&graph, &result.membership);
            assert!((-0.5..=1.0 + 1e-9).contains(&q), "{label}: Q = {q}");
            assert!(
                q > reference_q - 0.12,
                "{label}: Q {q} far below reference {reference_q}"
            );

            let report = gve_quality::disconnected_communities(&graph, &result.membership);
            assert!(
                report.all_connected(),
                "{label}: {} of {} disconnected",
                report.disconnected,
                report.communities
            );

            assert!(result.passes >= 1 && result.passes <= 10, "{label}");
            assert_eq!(result.pass_stats.len(), result.passes, "{label}");
        }
    }
}

#[test]
fn cpm_objective_composes_with_every_scheduling_and_aggregation() {
    let planted = gve_generate::sbm::PlantedPartition::new(800, 8, 12.0, 1.0)
        .seed(9)
        .generate();
    for scheduling in [Scheduling::Asynchronous, Scheduling::ColorSynchronous] {
        for aggregation in [
            AggregationStrategy::Hashtable,
            AggregationStrategy::SortReduce,
        ] {
            let config = LeidenConfig::default()
                .objective(Objective::Cpm { resolution: 0.05 })
                .scheduling(scheduling)
                .aggregation(aggregation);
            let result = Leiden::new(config).run(&planted.graph);
            let nmi =
                gve_quality::normalized_mutual_information(&result.membership, &planted.labels);
            assert!(nmi > 0.85, "{scheduling:?}/{aggregation:?}: CPM NMI {nmi}");
        }
    }
}

#[test]
fn seeded_and_frontier_runs_compose_with_variants() {
    let graph = gve_generate::rmat::Rmat::web(9, 6.0).seed(6).generate();
    let base = gve_leiden::leiden(&graph);
    for aggregation in [
        AggregationStrategy::Hashtable,
        AggregationStrategy::SortReduce,
    ] {
        let runner = Leiden::new(LeidenConfig::default().aggregation(aggregation));
        let seeded = runner.run_seeded(&graph, &base.membership);
        gve_quality::validate_membership(&seeded.membership, graph.num_vertices()).unwrap();
        let frontier: Vec<u32> = (0..16).collect();
        let frontier_run = runner.run_frontier(&graph, &base.membership, &frontier);
        gve_quality::validate_membership(&frontier_run.membership, graph.num_vertices()).unwrap();
        let q_base = gve_quality::modularity(&graph, &base.membership);
        let q_frontier = gve_quality::modularity(&graph, &frontier_run.membership);
        assert!(
            q_frontier > q_base - 0.03,
            "{aggregation:?}: frontier Q {q_frontier} vs {q_base}"
        );
    }
}
