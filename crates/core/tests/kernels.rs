//! Differential tests of the kernel-v2/v3 machinery: the fused kernel
//! and the lane-chunked v3 kernel must pick exactly the same
//! `(community, gain)` as the two-pass reference on any frozen state
//! (both v3 tiers, both edge layouts, every chunk-scheduling policy),
//! and cache-aware relabeling must be invisible in the reported result.
//! Running this suite with `--features gve-prim/scalar-scan` swaps the
//! lane fold for its scalar reference, covering both code paths.

use gve_graph::{CsrGraph, GraphBuilder};
use gve_leiden::kernel::{best_move, fused_best_move, two_pass_best_move, v3_best_move};
use gve_leiden::{
    ChunkScheduling, EdgeLayout, KernelVersion, Leiden, LeidenConfig, Objective, Scheduling,
    VertexOrdering,
};
use gve_prim::atomics::{atomic_f64_from_slice, AtomicF64};
use gve_prim::{CommunityMap, HashScanMap, SmallScanMap};
use proptest::prelude::*;
use std::sync::atomic::AtomicU32;

/// Random small weighted graphs: every vertex's degree stays below the
/// stack-map capacity (n ≤ 48 distinct neighbours < SMALL_SCAN_CAP), so
/// the fused kernel is callable for all of them.
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32, f32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 1u32..6), 1..max_m).prop_map(move |edges| {
            (
                n,
                edges
                    .into_iter()
                    .map(|(u, v, w)| (u, v, w as f32))
                    .collect(),
            )
        })
    })
}

/// A frozen Leiden state for a membership labeling: atomic labels, the
/// per-vertex penalty (weighted degree), and the community totals Σ.
fn frozen_state(
    graph: &CsrGraph,
    membership: &[u32],
) -> (Vec<AtomicU32>, Vec<f64>, Vec<AtomicF64>) {
    let n = graph.num_vertices();
    let atomic: Vec<AtomicU32> = membership.iter().map(|&c| AtomicU32::new(c)).collect();
    let penalty: Vec<f64> = (0..n as u32).map(|u| graph.weighted_degree(u)).collect();
    let mut sigma = vec![0.0f64; n];
    for (v, &c) in membership.iter().enumerate() {
        sigma[c as usize] += penalty[v];
    }
    (atomic, penalty, atomic_f64_from_slice(&sigma))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On every vertex of any random weighted graph, under any
    /// membership, the fused kernel and the two-pass reference return
    /// bit-identical `(community, gain)` — with and without refinement
    /// bounds, for both objectives.
    #[test]
    fn fused_and_two_pass_agree(
        (n, edges) in arb_graph(48, 220),
        labels_seed in 0u64..1000,
        cpm in 0u32..2,
    ) {
        let graph = GraphBuilder::from_edges(n as usize, &edges);
        // Deterministic pseudo-random labels from the seed.
        let labels: Vec<u32> = (0..n)
            .map(|v| {
                let mut x = labels_seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (x % n as u64) as u32
            })
            .collect();
        let bounds: Vec<u32> = labels.iter().map(|&c| c % 3).collect();
        let (membership, penalty, sigma) = frozen_state(&graph, &labels);
        let m = graph.total_arc_weight() / 2.0;
        let objective = if cpm == 1 {
            Objective::Cpm { resolution: 0.25 }
        } else {
            Objective::default()
        };
        let coeffs = objective.coeffs(m.max(f64::MIN_POSITIVE));
        let mut ht = CommunityMap::new(n as usize);
        let mut small = SmallScanMap::new();
        for i in 0..n {
            let current = labels[i as usize];
            let p_i = penalty[i as usize];
            for bound in [None, Some(bounds.as_slice())] {
                let v1 = two_pass_best_move(
                    &mut ht, &graph, &membership, bound, i, current, p_i, &sigma, coeffs,
                );
                let v2 = fused_best_move(
                    &mut small, &graph, &membership, bound, i, current, p_i, &sigma, coeffs,
                );
                prop_assert_eq!(v1, v2, "vertex {} (bounded: {})", i, bound.is_some());
            }
        }
    }

    /// The degree-aware dispatcher equals the reference for every
    /// threshold, including ones that split the graph across both tiers,
    /// and regardless of the edge layout.
    #[test]
    fn dispatch_is_layout_and_threshold_invariant(
        (n, edges) in arb_graph(32, 120),
        threshold in 1usize..16,
    ) {
        let graph = GraphBuilder::from_edges(n as usize, &edges);
        let interleaved = graph.clone();
        interleaved.build_interleaved();
        let labels: Vec<u32> = (0..n).map(|v| v % 5).collect();
        let (membership, penalty, sigma) = frozen_state(&graph, &labels);
        let coeffs = Objective::default().coeffs((graph.total_arc_weight() / 2.0).max(f64::MIN_POSITIVE));
        let config = LeidenConfig::default()
            .kernel(KernelVersion::V2)
            .small_degree_threshold(threshold);
        let mut ht = CommunityMap::new(n as usize);
        let mut small = SmallScanMap::new();
        let mut hash = HashScanMap::new();
        for i in 0..n {
            let current = labels[i as usize];
            let p_i = penalty[i as usize];
            let reference = two_pass_best_move(
                &mut ht, &graph, &membership, None, i, current, p_i, &sigma, coeffs,
            );
            let dispatched = best_move(
                &mut ht, &mut small, &mut hash, &graph, &membership, None, i, current, p_i,
                &sigma, coeffs, &config,
            );
            let on_interleaved = best_move(
                &mut ht, &mut small, &mut hash, &interleaved, &membership, None, i, current,
                p_i, &sigma, coeffs, &config,
            );
            prop_assert_eq!(reference, dispatched, "vertex {} threshold {}", i, threshold);
            prop_assert_eq!(reference, on_interleaved, "vertex {} interleaved", i);
        }
    }

    /// The v3 kernel is bit-identical to the two-pass reference on any
    /// frozen state: both tiers (stack map and hashtable), both edge
    /// layouts, with and without refinement bounds, for both objectives.
    #[test]
    fn v3_agrees_with_two_pass(
        (n, edges) in arb_graph(48, 220),
        labels_seed in 0u64..1000,
        cpm in 0u32..2,
    ) {
        let graph = GraphBuilder::from_edges(n as usize, &edges);
        let interleaved = graph.clone();
        interleaved.build_interleaved();
        let labels: Vec<u32> = (0..n)
            .map(|v| {
                let mut x = labels_seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (x % n as u64) as u32
            })
            .collect();
        let bounds: Vec<u32> = labels.iter().map(|&c| c % 3).collect();
        let (membership, penalty, sigma) = frozen_state(&graph, &labels);
        let m = graph.total_arc_weight() / 2.0;
        let objective = if cpm == 1 {
            Objective::Cpm { resolution: 0.25 }
        } else {
            Objective::default()
        };
        let coeffs = objective.coeffs(m.max(f64::MIN_POSITIVE));
        let mut ht = CommunityMap::new(n as usize);
        let mut hash = HashScanMap::new();
        for i in 0..n {
            let current = labels[i as usize];
            let p_i = penalty[i as usize];
            for bound in [None, Some(bounds.as_slice())] {
                let reference = two_pass_best_move(
                    &mut ht, &graph, &membership, bound, i, current, p_i, &sigma, coeffs,
                );
                for g in [&graph, &interleaved] {
                    for use_small in [false, true] {
                        let v3 = v3_best_move(
                            &mut ht, &mut hash, g, &membership, bound, i, current, p_i,
                            &sigma, coeffs, use_small,
                        );
                        prop_assert_eq!(
                            reference, v3,
                            "vertex {} (bounded: {}, small: {}, interleaved: {})",
                            i, bound.is_some(), use_small, g.interleaved().is_some()
                        );
                    }
                }
            }
        }
    }
}

/// Relabel → detect → inverse-map must be invisible: the membership is
/// reported in original vertex ids, with the same modularity and the
/// same community-size multiset as the un-relabeled run.
#[test]
fn relabeling_round_trips_through_detection() {
    let planted = gve_generate::PlantedPartition::new(2000, 20, 12.0, 0.5)
        .seed(7)
        .generate();
    let graph = &planted.graph;
    let base = LeidenConfig::default().scheduling(Scheduling::ColorSynchronous);

    let sizes = |membership: &[u32]| -> Vec<usize> {
        let k = membership.iter().copied().max().unwrap_or(0) as usize + 1;
        let mut counts = vec![0usize; k];
        for &c in membership {
            counts[c as usize] += 1;
        }
        counts.retain(|&c| c > 0);
        counts.sort_unstable();
        counts
    };

    let reference = Leiden::new(base.clone()).run(graph);
    let q_reference = gve_quality::modularity(graph, &reference.membership);
    assert!(q_reference > 0.5, "weak reference partition: {q_reference}");

    for ordering in [VertexOrdering::DegreeDesc, VertexOrdering::Bfs] {
        let config = base.clone().ordering(ordering);
        let result = Leiden::new(config).run(graph);
        assert_eq!(
            result.membership.len(),
            graph.num_vertices(),
            "{ordering:?}: membership length"
        );
        let q = gve_quality::modularity(graph, &result.membership);
        assert!(
            (q - q_reference).abs() < 1e-9,
            "{ordering:?}: modularity {q} != reference {q_reference}"
        );
        assert_eq!(
            sizes(&result.membership),
            sizes(&reference.membership),
            "{ordering:?}: community sizes differ"
        );
        // On this strongly separated SBM the planted communities are
        // recovered exactly, so co-membership must match ground truth.
        for (v, &c) in result.membership.iter().enumerate() {
            let rep = planted.labels[v];
            let first = planted.labels.iter().position(|&l| l == rep).unwrap();
            assert_eq!(
                c, result.membership[first],
                "vertex {v} not grouped with its planted community"
            );
        }
    }
}

/// The interleaved layout changes nothing observable end-to-end.
#[test]
fn interleaved_layout_matches_split_end_to_end() {
    let planted = gve_generate::PlantedPartition::new(1200, 12, 10.0, 0.8)
        .seed(3)
        .generate();
    let base = LeidenConfig::default().scheduling(Scheduling::ColorSynchronous);
    let split = Leiden::new(base.clone()).run(&planted.graph);
    let inter = Leiden::new(base.layout(EdgeLayout::Interleaved)).run(&planted.graph);
    assert_eq!(split.membership, inter.membership);
}

/// Under the deterministic color-synchronous schedule, kernel v3 is
/// bit-identical to v1 end-to-end for every layout × chunk-scheduling
/// combination (chunking only redistributes work across workers; the
/// per-vertex decisions are the same).
#[test]
fn v3_end_to_end_is_bitwise_identical_to_v1() {
    let planted = gve_generate::PlantedPartition::new(1500, 12, 10.0, 0.8)
        .seed(11)
        .generate();
    let base = LeidenConfig::default().scheduling(Scheduling::ColorSynchronous);
    let v1 = Leiden::new(base.clone().kernel(KernelVersion::V1)).run(&planted.graph);
    for layout in [EdgeLayout::Split, EdgeLayout::Interleaved] {
        for chunking in [
            ChunkScheduling::Static,
            ChunkScheduling::Guided,
            ChunkScheduling::Stealing,
        ] {
            let v3 = Leiden::new(
                base.clone()
                    .kernel(KernelVersion::V3)
                    .layout(layout)
                    .chunking(chunking),
            )
            .run(&planted.graph);
            assert_eq!(
                v1.membership, v3.membership,
                "v3 diverged from v1 ({layout:?}, {chunking:?})"
            );
        }
    }
}

/// The asynchronous path under v3 reaches the same quality as v1 for
/// every chunk-scheduling policy, and the scheduler counters report the
/// work distribution the policy promises.
#[test]
fn v3_async_quality_and_sched_counters() {
    let planted = gve_generate::PlantedPartition::new(2000, 10, 14.0, 1.0)
        .seed(23)
        .generate();
    let g = &planted.graph;
    let q1 = gve_quality::modularity(
        g,
        &Leiden::new(LeidenConfig::default().kernel(KernelVersion::V1))
            .run(g)
            .membership,
    );
    for chunking in [
        ChunkScheduling::Static,
        ChunkScheduling::Guided,
        ChunkScheduling::Stealing,
    ] {
        let result = Leiden::new(
            LeidenConfig::default()
                .kernel(KernelVersion::V3)
                .layout(EdgeLayout::Interleaved)
                .chunking(chunking),
        )
        .run(g);
        let q3 = gve_quality::modularity(g, &result.membership);
        assert!(
            (q1 - q3).abs() < 0.05,
            "{chunking:?}: v3 Q {q3} vs v1 Q {q1}"
        );
        assert_eq!(result.chunking, chunking);
        let chunks: u64 = result.pass_stats.iter().map(|p| p.sched_chunks).sum();
        assert!(chunks > 0, "{chunking:?}: no chunks recorded");
        if chunking != ChunkScheduling::Stealing {
            let steals: u64 = result.pass_stats.iter().map(|p| p.sched_steals).sum();
            assert_eq!(steals, 0, "{chunking:?}: impossible steals recorded");
        }
        let report = gve_quality::disconnected_communities(g, &result.membership);
        assert!(report.all_connected(), "{chunking:?}: disconnected output");
    }
}
