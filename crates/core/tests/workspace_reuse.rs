//! Differential tests of the pass-resident workspace arena: a run that
//! reuses a dirty [`PassWorkspace`] — stale contents from previous runs
//! on other (bigger and smaller) graphs — must be **bit-identical** to
//! a fresh run. `Leiden::run` itself delegates to `run_in` with a
//! throwaway workspace, so both sides share one code path; what these
//! tests pin down is that no stale buffer state ever leaks into a
//! result.
//!
//! All comparisons run inside a 1-thread rayon pool: the parallel fills
//! and scatters then execute in index order, making even the
//! asynchronous scheduling deterministic and the comparison exact.

use gve_graph::{CsrGraph, GraphBuilder};
use gve_leiden::{Leiden, LeidenConfig, Objective, PassWorkspace, Scheduling};
use proptest::prelude::*;

fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32, f32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 1u32..6), 1..max_m).prop_map(move |edges| {
            (
                n,
                edges
                    .into_iter()
                    .map(|(u, v, w)| (u, v, w as f32))
                    .collect(),
            )
        })
    })
}

/// A workspace pre-dirtied by full runs on unrelated graphs: one larger
/// than any proptest case (so every prefix view has a stale suffix
/// behind it) and one tiny (so grow-only growth is exercised too).
fn dirty_workspace() -> PassWorkspace {
    let mut ws = PassWorkspace::new();
    let big = gve_generate::sbm::PlantedPartition::new(800, 8, 10.0, 1.0)
        .seed(5)
        .generate()
        .graph;
    let small = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
    let leiden = Leiden::default();
    leiden.run_in(&big, &mut ws);
    leiden.run_in(&small, &mut ws);
    ws
}

fn assert_identical(
    fresh: &gve_leiden::LeidenResult,
    reused: &gve_leiden::LeidenResult,
    label: &str,
) {
    assert_eq!(fresh.membership, reused.membership, "{label}: membership");
    assert_eq!(
        fresh.num_communities, reused.num_communities,
        "{label}: num_communities"
    );
    assert_eq!(fresh.passes, reused.passes, "{label}: passes");
    assert_eq!(
        fresh.move_iterations, reused.move_iterations,
        "{label}: move iterations"
    );
    assert_eq!(fresh.dendrogram, reused.dendrogram, "{label}: dendrogram");
    assert_eq!(fresh.stop, reused.stop, "{label}: stop reason");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random graphs × objective × scheduling × dendrogram recording:
    /// reused-workspace runs (including back-to-back reuse of the same
    /// workspace) match fresh runs exactly.
    #[test]
    fn reused_workspace_is_bit_identical_to_fresh(
        (n, edges) in arb_graph(64, 200),
        cpm in 0u32..2,
        color_sync in 0u32..2,
        record in 0u32..2,
    ) {
        let graph = GraphBuilder::from_edges(n as usize, &edges);
        let mut config = LeidenConfig::default().seed(42);
        if cpm == 1 {
            config = config.objective(Objective::Cpm { resolution: 0.5 });
        }
        if color_sync == 1 {
            config = config.scheduling(Scheduling::ColorSynchronous);
        }
        config.record_dendrogram = record == 1;
        let leiden = Leiden::new(config);

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool.install(|| {
            let fresh = leiden.run(&graph);
            let mut ws = dirty_workspace();
            let reused = leiden.run_in(&graph, &mut ws);
            assert_identical(&fresh, &reused, "first reuse");
            // Same workspace again: steady-state reuse.
            let again = leiden.run_in(&graph, &mut ws);
            assert_identical(&fresh, &again, "second reuse");
        });
    }
}

/// Paper-shaped inputs at realistic scale: RMAT (web-like skew) and a
/// planted SBM, both objectives, shared workspace across all of them in
/// shrinking-then-growing order.
#[test]
fn rmat_and_sbm_runs_share_one_workspace() {
    let rmat = gve_generate::rmat::Rmat::web(10, 6.0).seed(11).generate();
    let sbm = gve_generate::sbm::PlantedPartition::new(2500, 12, 14.0, 1.0)
        .seed(12)
        .generate()
        .graph;
    let modularity = {
        let mut c = LeidenConfig::default().seed(7);
        c.record_dendrogram = true;
        Leiden::new(c)
    };
    let cpm = {
        let mut c = LeidenConfig::default()
            .seed(7)
            .objective(Objective::Cpm { resolution: 0.8 });
        c.record_dendrogram = true;
        Leiden::new(c)
    };

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        let mut ws = PassWorkspace::new();
        for (label, graph) in [("rmat", &rmat), ("sbm", &sbm)] {
            for (objective, leiden) in [("modularity", &modularity), ("cpm", &cpm)] {
                let fresh = leiden.run(graph);
                let reused = leiden.run_in(graph, &mut ws);
                assert_identical(&fresh, &reused, &format!("{label}/{objective}"));
            }
        }
    });
}

/// Seeded and frontier runs through a reused workspace match their
/// fresh-workspace equivalents (the dynamic-update path of gve-serve).
#[test]
fn seeded_and_frontier_runs_reuse_workspace() {
    let graph: CsrGraph = gve_generate::sbm::PlantedPartition::new(1200, 10, 12.0, 1.0)
        .seed(33)
        .generate()
        .graph;
    let n = graph.num_vertices();
    let previous: Vec<u32> = (0..n as u32).map(|v| v % 97).collect();
    let frontier: Vec<u32> = (0..n as u32).step_by(13).collect();
    let leiden = Leiden::new(LeidenConfig::default().seed(3));

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        let mut ws = dirty_workspace();
        let fresh_seeded = leiden.run_seeded(&graph, &previous);
        let reused_seeded = leiden.run_seeded_in(&graph, &previous, &mut ws);
        assert_identical(&fresh_seeded, &reused_seeded, "seeded");

        let fresh_frontier = leiden.run_frontier(&graph, &previous, &frontier);
        let reused_frontier = leiden.run_frontier_in(&graph, &previous, &frontier, &mut ws);
        assert_identical(&fresh_frontier, &reused_frontier, "frontier");
    });
}
