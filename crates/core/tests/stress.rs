//! Quick concurrent stress tests — the workload the nightly
//! ThreadSanitizer CI job runs under `-Zsanitizer=thread`.
//!
//! TSan instruments every memory access, so these are sized to finish
//! in seconds while still driving the interesting cross-thread traffic:
//! the asynchronous local-moving/refinement races, the dynamic-scheduler
//! cursor, and concurrent independent runs sharing one rayon pool.
//! Under TSan, the Relaxed-by-design races on membership/Σ′ are *data
//! races on atomics* — which TSan models precisely and accepts; what it
//! flags is any non-atomic access racing with them, exactly the bug
//! class the audit's ordering table cannot see.

use gve_leiden::{Leiden, LeidenConfig, Scheduling};

fn stress_graph(scale: u32, seed: u64) -> gve_graph::CsrGraph {
    gve_generate::rmat::Rmat::social(scale, 6.0)
        .seed(seed)
        .generate()
}

/// The asynchronous path end-to-end: membership/Σ′ atomics hammered by
/// all workers, holey-CSR slot claims in aggregation.
#[test]
fn async_leiden_under_contention() {
    let g = stress_graph(10, 7);
    let result = Leiden::default().run(&g);
    gve_quality::validate_membership(&result.membership, g.num_vertices()).unwrap();
}

/// Several independent runs race on the same global rayon pool — the
/// shape the gve-serve job engine produces.
#[test]
fn concurrent_runs_share_the_pool() {
    std::thread::scope(|scope| {
        for seed in 0..4u64 {
            scope.spawn(move || {
                let g = stress_graph(9, seed);
                let result = Leiden::default().run(&g);
                gve_quality::validate_membership(&result.membership, g.num_vertices()).unwrap();
            });
        }
    });
}

/// The color-synchronous path: determinism depends on the coloring and
/// per-color barriers being race-free.
#[test]
fn color_sync_is_stable_under_stress() {
    let g = stress_graph(9, 11);
    let config = LeidenConfig::default().scheduling(Scheduling::ColorSynchronous);
    let a = Leiden::new(config.clone()).run(&g).membership;
    let b = Leiden::new(config).run(&g).membership;
    assert_eq!(a, b, "color-synchronous runs must be bitwise repeatable");
}

/// The dynamic-scheduler cursor under maximal contention: tiny chunks,
/// every worker polling.
#[test]
fn dynamic_cursor_under_contention() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let n = 10_000;
    let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    gve_prim::parfor::par_for_dynamic(n, 1, |i| {
        counts[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
}
