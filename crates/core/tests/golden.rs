//! Golden tests on canonical graphs with known answers: Zachary's
//! karate club and the ring-of-cliques resolution-limit demonstration.

use gve_generate::ring::{ring_labels, ring_of_cliques};
use gve_graph::GraphBuilder;
use gve_leiden::{leiden, Leiden, LeidenConfig, Objective};

/// Zachary's karate club (34 vertices, 78 edges) — the canonical
/// community-detection test graph.
fn karate_club() -> gve_graph::CsrGraph {
    const EDGES: [(u32, u32); 78] = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ];
    let weighted: Vec<(u32, u32, f32)> = EDGES.iter().map(|&(u, v)| (u, v, 1.0)).collect();
    GraphBuilder::from_edges(34, &weighted)
}

#[test]
fn karate_club_reaches_published_modularity() {
    let graph = karate_club();
    // The known modularity optimum is Q ≈ 0.4198 with 4 communities;
    // good heuristics land within a hair of it.
    let mut best_q = f64::NEG_INFINITY;
    let mut best_k = 0;
    for seed in 0..5u64 {
        let result = Leiden::new(LeidenConfig::default().seed(seed)).run(&graph);
        let q = gve_quality::modularity(&graph, &result.membership);
        if q > best_q {
            best_q = q;
            best_k = result.num_communities;
        }
    }
    assert!(best_q > 0.40, "karate Q = {best_q}");
    assert!(
        best_q <= 0.4198 + 1e-6,
        "Q above the known optimum: {best_q}"
    );
    assert!((3..=5).contains(&best_k), "karate communities: {best_k}");
}

#[test]
fn karate_club_instructor_and_president_split() {
    // The ground-truth social split: vertex 0 (instructor) and vertex 33
    // (president) must end in different communities, with their closest
    // allies on the right sides.
    let graph = karate_club();
    let result = leiden(&graph);
    let m = &result.membership;
    assert_ne!(m[0], m[33], "the factions merged");
    for ally_of_0 in [1, 3, 13] {
        assert_eq!(m[ally_of_0], m[0], "vertex {ally_of_0} left the instructor");
    }
    for ally_of_33 in [32, 30, 29] {
        assert_eq!(
            m[ally_of_33], m[33],
            "vertex {ally_of_33} left the president"
        );
    }
}

#[test]
fn modularity_hits_the_resolution_limit_on_clique_rings() {
    // 30 cliques of 5 vertices: 2m = 2·(30·10 + 30) = 660, and
    // merging adjacent cliques raises modularity once the clique count
    // exceeds ~sqrt(2m) ≈ 26 — so at 30 cliques the per-clique
    // partition is NOT the modularity optimum.
    let num_cliques = 30;
    let graph = ring_of_cliques(num_cliques, 5);
    let per_clique = ring_labels(num_cliques, 5);
    let result = leiden(&graph);
    let q_found = gve_quality::modularity(&graph, &result.membership);
    let q_per_clique = gve_quality::modularity(&graph, &per_clique);
    assert!(
        q_found >= q_per_clique - 1e-9,
        "optimizer under the planted partition: {q_found} vs {q_per_clique}"
    );
    assert!(
        result.num_communities < num_cliques,
        "expected merged cliques (resolution limit), got {} communities",
        result.num_communities
    );
}

#[test]
fn cpm_escapes_the_resolution_limit() {
    // Same ring; CPM with γ between the ring-edge density (~1/25) and
    // the intra-clique density (1.0) keeps every clique separate — the
    // §2 claim that CPM "overcomes" the resolution limit.
    let num_cliques = 30;
    let graph = ring_of_cliques(num_cliques, 5);
    let config = LeidenConfig::default().objective(Objective::Cpm { resolution: 0.5 });
    let result = Leiden::new(config).run(&graph);
    assert_eq!(
        result.num_communities, num_cliques,
        "CPM must recover one community per clique"
    );
    let nmi = gve_quality::normalized_mutual_information(
        &result.membership,
        &ring_labels(num_cliques, 5),
    );
    assert!((nmi - 1.0).abs() < 1e-9, "NMI {nmi}");
}

#[test]
fn small_ring_is_below_the_limit_for_modularity_too() {
    // With few cliques, modularity also finds the per-clique optimum.
    let graph = ring_of_cliques(8, 5);
    let result = leiden(&graph);
    assert_eq!(result.num_communities, 8);
    let nmi = gve_quality::normalized_mutual_information(&result.membership, &ring_labels(8, 5));
    assert!((nmi - 1.0).abs() < 1e-9);
}

#[test]
fn iteration_gains_trace_is_coherent() {
    let graph = karate_club();
    let result = leiden(&graph);
    for stats in &result.pass_stats {
        assert_eq!(stats.iteration_gains.len(), stats.move_iterations);
        // Every recorded gain is finite and (for greedy moves) nonnegative.
        for &g in &stats.iteration_gains {
            assert!(g.is_finite() && g >= 0.0, "gain {g}");
        }
    }
}
