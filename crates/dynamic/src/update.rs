//! Batch edge updates applied to an immutable CSR graph.
//!
//! A [`BatchUpdate`] collects undirected insertions and deletions;
//! [`apply_batch`] produces the updated graph in one parallel rebuild:
//! per-vertex edit lists are grouped, then every vertex row is merged
//! (old neighbours − deletions + insertions) independently.

use gve_graph::{CsrGraph, EdgeWeight, GraphBuilder, VertexId};
use rayon::prelude::*;
use std::collections::HashMap;

/// A batch of undirected edge updates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchUpdate {
    /// Edges to insert (undirected; also used to update weights of
    /// existing edges — the weights add).
    pub insertions: Vec<(VertexId, VertexId, EdgeWeight)>,
    /// Edges to delete (undirected; deleting a missing edge is a no-op).
    pub deletions: Vec<(VertexId, VertexId)>,
}

impl BatchUpdate {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an undirected insertion.
    pub fn insert(&mut self, u: VertexId, v: VertexId, w: EdgeWeight) -> &mut Self {
        self.insertions.push((u, v, w));
        self
    }

    /// Queues an undirected deletion.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.deletions.push((u, v));
        self
    }

    /// True when the batch holds no updates.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Total number of queued updates.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// Highest vertex id referenced by the batch, if any.
    pub fn max_vertex(&self) -> Option<VertexId> {
        self.insertions
            .iter()
            .map(|&(u, v, _)| u.max(v))
            .chain(self.deletions.iter().map(|&(u, v)| u.max(v)))
            .max()
    }
}

/// Applies a batch to a graph, returning the updated graph. The vertex
/// set grows to cover any new ids referenced by the batch; weights of
/// repeated insertions (and of insertions over existing edges) add up.
pub fn apply_batch(graph: &CsrGraph, batch: &BatchUpdate) -> CsrGraph {
    if batch.is_empty() {
        return graph.clone();
    }
    let n = graph
        .num_vertices()
        .max(batch.max_vertex().map_or(0, |v| v as usize + 1));

    // Group directed edits per source vertex.
    let mut inserts: HashMap<VertexId, Vec<(VertexId, EdgeWeight)>> = HashMap::new();
    for &(u, v, w) in &batch.insertions {
        inserts.entry(u).or_default().push((v, w));
        if u != v {
            inserts.entry(v).or_default().push((u, w));
        }
    }
    let mut deletes: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for &(u, v) in &batch.deletions {
        deletes.entry(u).or_default().push(v);
        if u != v {
            deletes.entry(v).or_default().push(u);
        }
    }

    // Rebuild every row independently.
    let rows: Vec<Vec<(VertexId, EdgeWeight)>> = (0..n as VertexId)
        .into_par_iter()
        .map(|u| {
            let old: Box<dyn Iterator<Item = (VertexId, EdgeWeight)>> =
                if (u as usize) < graph.num_vertices() {
                    Box::new(graph.edges(u))
                } else {
                    Box::new(std::iter::empty())
                };
            let dels = deletes.get(&u);
            let mut row: Vec<(VertexId, EdgeWeight)> = old
                .filter(|(v, _)| dels.is_none_or(|d| !d.contains(v)))
                .collect();
            if let Some(ins) = inserts.get(&u) {
                for &(v, w) in ins {
                    // Merge with an existing arc when present.
                    match row.iter_mut().find(|(t, _)| *t == v) {
                        Some(slot) => slot.1 += w,
                        None => row.push((v, w)),
                    }
                }
                row.sort_unstable_by_key(|&(v, _)| v);
            }
            row
        })
        .collect();

    let mut builder = GraphBuilder::new()
        .with_vertices(n)
        .symmetrize(false)
        .dedup(false);
    for (u, row) in rows.iter().enumerate() {
        for &(v, w) in row {
            builder.add_edge(u as VertexId, v, w);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> CsrGraph {
        GraphBuilder::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    }

    #[test]
    fn insertion_adds_both_arcs() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 3, 2.0);
        let updated = apply_batch(&g, &batch);
        assert_eq!(updated.num_arcs(), g.num_arcs() + 2);
        assert!(updated.has_arc(0, 3));
        assert!(updated.has_arc(3, 0));
        assert!(updated.is_symmetric());
    }

    #[test]
    fn deletion_removes_both_arcs() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.delete(1, 2);
        let updated = apply_batch(&g, &batch);
        assert_eq!(updated.num_arcs(), g.num_arcs() - 2);
        assert!(!updated.has_arc(1, 2));
        assert!(!updated.has_arc(2, 1));
    }

    #[test]
    fn deleting_missing_edge_is_noop() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.delete(0, 3);
        assert_eq!(apply_batch(&g, &batch), g);
    }

    #[test]
    fn inserting_existing_edge_adds_weight() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 1, 0.5);
        let updated = apply_batch(&g, &batch);
        assert_eq!(updated.num_arcs(), g.num_arcs());
        assert_eq!(updated.edges(0).collect::<Vec<_>>(), vec![(1, 1.5)]);
        assert_eq!(updated.edges(1).next(), Some((0, 1.5)));
    }

    #[test]
    fn new_vertices_are_appended() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.insert(3, 6, 1.0);
        let updated = apply_batch(&g, &batch);
        assert_eq!(updated.num_vertices(), 7);
        assert!(updated.has_arc(6, 3));
        assert_eq!(updated.degree(5), 0);
    }

    #[test]
    fn self_loop_insertion() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.insert(2, 2, 4.0);
        let updated = apply_batch(&g, &batch);
        // Self-loop stored once.
        assert_eq!(updated.degree(2), 3);
        assert!(updated.has_arc(2, 2));
        assert_eq!(updated.weighted_degree(2), 2.0 + 4.0);
    }

    #[test]
    fn empty_batch_returns_clone() {
        let g = path_graph();
        assert_eq!(apply_batch(&g, &BatchUpdate::new()), g);
    }

    #[test]
    fn mixed_batch_and_accessors() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 2, 1.0).delete(0, 1).insert(1, 3, 1.0);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.max_vertex(), Some(3));
        let updated = apply_batch(&g, &batch);
        assert!(updated.has_arc(0, 2));
        assert!(updated.has_arc(1, 3));
        assert!(!updated.has_arc(0, 1));
        assert!(updated.is_symmetric());
    }

    #[test]
    fn insert_then_delete_round_trips() {
        let g = path_graph();
        let mut add = BatchUpdate::new();
        add.insert(0, 3, 1.0);
        let mut remove = BatchUpdate::new();
        remove.delete(0, 3);
        assert_eq!(apply_batch(&apply_batch(&g, &add), &remove), g);
    }
}
