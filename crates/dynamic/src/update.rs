//! Batch edge updates applied to an immutable CSR graph.
//!
//! A [`BatchUpdate`] collects undirected insertions and deletions;
//! [`apply_batch`] produces the updated graph in one parallel rebuild:
//! per-vertex edit lists are grouped, then every vertex row is merged
//! (old neighbours − deletions + insertions) independently.

use gve_graph::{CsrGraph, EdgeWeight, GraphBuilder, VertexId};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};

/// A batch of undirected edge updates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchUpdate {
    /// Edges to insert (undirected; also used to update weights of
    /// existing edges — the weights add).
    pub insertions: Vec<(VertexId, VertexId, EdgeWeight)>,
    /// Edges to delete (undirected; deleting a missing edge is a no-op).
    pub deletions: Vec<(VertexId, VertexId)>,
}

impl BatchUpdate {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an undirected insertion.
    pub fn insert(&mut self, u: VertexId, v: VertexId, w: EdgeWeight) -> &mut Self {
        self.insertions.push((u, v, w));
        self
    }

    /// Queues an undirected deletion.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.deletions.push((u, v));
        self
    }

    /// True when the batch holds no updates.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Total number of queued updates.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// Highest vertex id referenced by the batch, if any.
    pub fn max_vertex(&self) -> Option<VertexId> {
        self.insertions
            .iter()
            .map(|&(u, v, _)| u.max(v))
            .chain(self.deletions.iter().map(|&(u, v)| u.max(v)))
            .max()
    }

    /// Highest vertex id referenced by an **insertion**, if any. This —
    /// not [`max_vertex`](Self::max_vertex) — is what decides how far
    /// the vertex set grows under [`apply_batch`]: deleting an edge of
    /// a vertex the graph has never seen is a no-op, so deletions must
    /// never allocate vertices.
    pub fn max_inserted_vertex(&self) -> Option<VertexId> {
        self.insertions.iter().map(|&(u, v, _)| u.max(v)).max()
    }

    /// Folds `later` into `self`, producing one batch equivalent to
    /// applying `self` then `later` (the ingest-queue coalescing rule):
    ///
    /// * insertions concatenate — repeated weights add at apply time;
    /// * a deletion in `later` cancels every **queued** insertion of the
    ///   same undirected pair in `self` and is then queued itself, so it
    ///   still removes any pre-existing edge;
    /// * insertions in `later` survive deletions queued before them,
    ///   because [`apply_batch`] removes deleted pairs from the old
    ///   graph *before* adding insertions.
    pub fn merge(&mut self, later: &BatchUpdate) {
        if !later.deletions.is_empty() && !self.insertions.is_empty() {
            let cancelled: HashSet<(VertexId, VertexId)> = later
                .deletions
                .iter()
                .map(|&(u, v)| (u.min(v), u.max(v)))
                .collect();
            self.insertions
                .retain(|&(u, v, _)| !cancelled.contains(&(u.min(v), u.max(v))));
        }
        self.deletions.extend_from_slice(&later.deletions);
        self.insertions.extend_from_slice(&later.insertions);
    }
}

/// Applies a batch to a graph, returning the updated graph. The vertex
/// set grows to cover any new ids referenced by **insertions** (deleting
/// an edge of an unknown vertex is a no-op, like deleting a missing
/// edge); weights of repeated insertions (and of insertions over
/// existing edges) add up.
pub fn apply_batch(graph: &CsrGraph, batch: &BatchUpdate) -> CsrGraph {
    if batch.is_empty() {
        return graph.clone();
    }
    let n = graph
        .num_vertices()
        .max(batch.max_inserted_vertex().map_or(0, |v| v as usize + 1));

    // Group directed edits per source vertex, then sort each vertex's
    // edit list so the per-row rebuild below is a linear merge against
    // the (already sorted) CSR row instead of a scan per edge. The
    // insertion sort is *stable*: repeated insertions of one pair keep
    // batch order, so their weights accumulate left-to-right exactly as
    // they would applying the batch one edge at a time.
    let mut inserts: HashMap<VertexId, Vec<(VertexId, EdgeWeight)>> = HashMap::new();
    for &(u, v, w) in &batch.insertions {
        inserts.entry(u).or_default().push((v, w));
        if u != v {
            inserts.entry(v).or_default().push((u, w));
        }
    }
    for row in inserts.values_mut() {
        row.sort_by_key(|&(v, _)| v);
    }
    let mut deletes: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for &(u, v) in &batch.deletions {
        deletes.entry(u).or_default().push(v);
        if u != v {
            deletes.entry(v).or_default().push(u);
        }
    }
    for row in deletes.values_mut() {
        row.sort_unstable();
    }

    // Rebuild every row independently: one pass over old ∪ inserted
    // targets, skipping deleted pairs — O(d + k log k) per row instead
    // of the old O(d·k) contains/find scans.
    let rows: Vec<Vec<(VertexId, EdgeWeight)>> = (0..n as VertexId)
        .into_par_iter()
        .map(|u| {
            let dels: &[VertexId] = deletes.get(&u).map_or(&[], Vec::as_slice);
            let ins: &[(VertexId, EdgeWeight)] = inserts.get(&u).map_or(&[], Vec::as_slice);
            let old_degree = if (u as usize) < graph.num_vertices() {
                graph.degree(u)
            } else {
                0
            };
            let mut row: Vec<(VertexId, EdgeWeight)> = Vec::with_capacity(old_degree + ins.len());
            // Append an insertion, folding its weight into the previous
            // entry when it targets the same vertex (sorted input makes
            // duplicates adjacent).
            let push_ins =
                |row: &mut Vec<(VertexId, EdgeWeight)>, v: VertexId, w: EdgeWeight| match row
                    .last_mut()
                {
                    Some(slot) if slot.0 == v => slot.1 += w,
                    _ => row.push((v, w)),
                };
            let (mut di, mut ii) = (0usize, 0usize);
            if old_degree > 0 {
                for (v, w) in graph.edges(u) {
                    // Deleted pair? (dels may hold duplicates; advance past
                    // everything smaller first.)
                    while di < dels.len() && dels[di] < v {
                        di += 1;
                    }
                    if di < dels.len() && dels[di] == v {
                        continue;
                    }
                    // Insertions targeting ids before v land first…
                    while ii < ins.len() && ins[ii].0 < v {
                        let (t, w_ins) = ins[ii];
                        push_ins(&mut row, t, w_ins);
                        ii += 1;
                    }
                    row.push((v, w));
                    // …and insertions over the existing arc add weight.
                    while ii < ins.len() && ins[ii].0 == v {
                        push_ins(&mut row, v, ins[ii].1);
                        ii += 1;
                    }
                }
            }
            while ii < ins.len() {
                let (t, w_ins) = ins[ii];
                push_ins(&mut row, t, w_ins);
                ii += 1;
            }
            row
        })
        .collect();

    let mut builder = GraphBuilder::new()
        .with_vertices(n)
        .symmetrize(false)
        .dedup(false);
    for (u, row) in rows.iter().enumerate() {
        for &(v, w) in row {
            builder.add_edge(u as VertexId, v, w);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> CsrGraph {
        GraphBuilder::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    }

    #[test]
    fn insertion_adds_both_arcs() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 3, 2.0);
        let updated = apply_batch(&g, &batch);
        assert_eq!(updated.num_arcs(), g.num_arcs() + 2);
        assert!(updated.has_arc(0, 3));
        assert!(updated.has_arc(3, 0));
        assert!(updated.is_symmetric());
    }

    #[test]
    fn deletion_removes_both_arcs() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.delete(1, 2);
        let updated = apply_batch(&g, &batch);
        assert_eq!(updated.num_arcs(), g.num_arcs() - 2);
        assert!(!updated.has_arc(1, 2));
        assert!(!updated.has_arc(2, 1));
    }

    #[test]
    fn deleting_missing_edge_is_noop() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.delete(0, 3);
        assert_eq!(apply_batch(&g, &batch), g);
    }

    #[test]
    fn inserting_existing_edge_adds_weight() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 1, 0.5);
        let updated = apply_batch(&g, &batch);
        assert_eq!(updated.num_arcs(), g.num_arcs());
        assert_eq!(updated.edges(0).collect::<Vec<_>>(), vec![(1, 1.5)]);
        assert_eq!(updated.edges(1).next(), Some((0, 1.5)));
    }

    #[test]
    fn new_vertices_are_appended() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.insert(3, 6, 1.0);
        let updated = apply_batch(&g, &batch);
        assert_eq!(updated.num_vertices(), 7);
        assert!(updated.has_arc(6, 3));
        assert_eq!(updated.degree(5), 0);
    }

    #[test]
    fn self_loop_insertion() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.insert(2, 2, 4.0);
        let updated = apply_batch(&g, &batch);
        // Self-loop stored once.
        assert_eq!(updated.degree(2), 3);
        assert!(updated.has_arc(2, 2));
        assert_eq!(updated.weighted_degree(2), 2.0 + 4.0);
    }

    #[test]
    fn empty_batch_returns_clone() {
        let g = path_graph();
        assert_eq!(apply_batch(&g, &BatchUpdate::new()), g);
    }

    #[test]
    fn mixed_batch_and_accessors() {
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 2, 1.0).delete(0, 1).insert(1, 3, 1.0);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.max_vertex(), Some(3));
        let updated = apply_batch(&g, &batch);
        assert!(updated.has_arc(0, 2));
        assert!(updated.has_arc(1, 3));
        assert!(!updated.has_arc(0, 1));
        assert!(updated.is_symmetric());
    }

    #[test]
    fn deletions_do_not_grow_the_vertex_set() {
        // Regression: `delete(0, 100)` on a 4-vertex graph used to yield
        // a 101-vertex graph because `apply_batch` sized N from
        // `max_vertex()`, which chains deletions. Deleting an edge of an
        // unknown vertex must be a plain no-op.
        let g = path_graph();
        let mut batch = BatchUpdate::new();
        batch.delete(0, 100);
        let updated = apply_batch(&g, &batch);
        assert_eq!(updated.num_vertices(), 4);
        assert_eq!(updated, g);

        // Mixed batch: only insertions decide how far N grows.
        let mut mixed = BatchUpdate::new();
        mixed.insert(3, 5, 1.0).delete(2, 50);
        assert_eq!(mixed.max_vertex(), Some(50));
        assert_eq!(mixed.max_inserted_vertex(), Some(5));
        assert_eq!(apply_batch(&g, &mixed).num_vertices(), 6);
    }

    #[test]
    fn merge_matches_sequential_application() {
        let g = path_graph();
        let mut first = BatchUpdate::new();
        first.insert(0, 3, 1.0).delete(1, 2).insert(2, 5, 2.0);
        let mut second = BatchUpdate::new();
        second.insert(1, 2, 0.5).delete(0, 3).insert(0, 3, 4.0);

        let sequential = apply_batch(&apply_batch(&g, &first), &second);
        let mut merged = first.clone();
        merged.merge(&second);
        assert_eq!(apply_batch(&g, &merged), sequential);
    }

    #[test]
    fn merge_deletion_cancels_queued_insertion() {
        let g = path_graph();
        // Queue an insertion, then delete the same (undirected) pair in a
        // later batch: the pair must not exist afterwards, matching the
        // sequential insert-then-delete outcome.
        let mut first = BatchUpdate::new();
        first.insert(3, 0, 2.0);
        let mut second = BatchUpdate::new();
        second.delete(0, 3);
        let mut merged = first.clone();
        merged.merge(&second);
        assert!(merged.insertions.is_empty());
        assert_eq!(apply_batch(&g, &merged), g);

        // And the reverse order: a deletion queued before an insertion
        // leaves the inserted edge in place with the *batch* weight (the
        // deletion removed the pre-existing edge first).
        let mut del_first = BatchUpdate::new();
        del_first.delete(0, 1);
        let mut ins_second = BatchUpdate::new();
        ins_second.insert(0, 1, 7.0);
        let sequential = apply_batch(&apply_batch(&g, &del_first), &ins_second);
        let mut merged = del_first.clone();
        merged.merge(&ins_second);
        let via_merge = apply_batch(&g, &merged);
        assert_eq!(via_merge, sequential);
        assert_eq!(via_merge.edges(0).collect::<Vec<_>>(), vec![(1, 7.0)]);
    }

    #[test]
    fn insert_then_delete_round_trips() {
        let g = path_graph();
        let mut add = BatchUpdate::new();
        add.insert(0, 3, 1.0);
        let mut remove = BatchUpdate::new();
        remove.delete(0, 3);
        assert_eq!(apply_batch(&apply_batch(&g, &add), &remove), g);
    }
}
