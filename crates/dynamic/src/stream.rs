//! Timestamped edge-churn streams and windowing.
//!
//! Real dynamic-graph workloads arrive as a *stream* of timestamped
//! insertions and deletions (interaction logs, crawl deltas), which a
//! detector consumes in windows. [`ChurnStream`] synthesizes such a
//! stream over a base graph with Poisson arrivals, and
//! [`collect_windows`] slices it into fixed-duration [`BatchUpdate`]s —
//! the shape the paper's follow-up dynamic work evaluates on.

use crate::update::BatchUpdate;
use gve_graph::{CsrGraph, EdgeWeight, VertexId};
use gve_prim::Xorshift32;

/// One timestamped update.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedUpdate {
    /// Event timestamp (seconds since the stream epoch).
    pub time: f64,
    /// The update itself.
    pub kind: UpdateKind,
}

/// Insertion or deletion payload.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateKind {
    /// Undirected edge insertion.
    Insert(VertexId, VertexId, EdgeWeight),
    /// Undirected edge deletion (no-op if absent at apply time).
    Delete(VertexId, VertexId),
}

/// Infinite Poisson churn stream over a base graph's vertex set.
///
/// Insertions pick uniform endpoint pairs; deletions pick a random
/// vertex's random *base-graph* neighbour — approximating deletion of a
/// live edge without tracking the evolving state (deleting an already
/// deleted edge is a no-op downstream, so staleness is harmless).
#[derive(Debug, Clone)]
pub struct ChurnStream<'a> {
    base: &'a CsrGraph,
    insert_rate: f64,
    delete_rate: f64,
    rng: Xorshift32,
    clock: f64,
}

impl<'a> ChurnStream<'a> {
    /// Creates a stream with the given events-per-second rates.
    pub fn new(base: &'a CsrGraph, insert_rate: f64, delete_rate: f64, seed: u64) -> Self {
        assert!(
            base.num_vertices() >= 2,
            "stream needs at least two vertices"
        );
        assert!(insert_rate >= 0.0 && delete_rate >= 0.0);
        assert!(
            insert_rate + delete_rate > 0.0,
            "at least one rate must be positive"
        );
        Self {
            base,
            insert_rate,
            delete_rate,
            rng: Xorshift32::new((seed as u32) ^ ((seed >> 32) as u32) | 1),
            clock: 0.0,
        }
    }

    fn exponential(&mut self, rate: f64) -> f64 {
        // Inverse-CDF sampling; next_f64 ∈ [0, 1) so 1 − u ∈ (0, 1].
        -(1.0 - self.rng.next_f64()).ln() / rate
    }
}

impl Iterator for ChurnStream<'_> {
    type Item = TimedUpdate;

    fn next(&mut self) -> Option<TimedUpdate> {
        let total = self.insert_rate + self.delete_rate;
        self.clock += self.exponential(total);
        let n = self.base.num_vertices() as u32;
        let is_insert = self.rng.next_f64() * total < self.insert_rate;
        let kind = if is_insert {
            let u = self.rng.next_bounded(n);
            let mut v = self.rng.next_bounded(n);
            while v == u {
                v = self.rng.next_bounded(n);
            }
            UpdateKind::Insert(u, v, 1.0)
        } else {
            // Random live-ish edge from the base graph.
            let mut u = self.rng.next_bounded(n);
            let mut guard = 0;
            while self.base.degree(u) == 0 && guard < 64 {
                u = self.rng.next_bounded(n);
                guard += 1;
            }
            let neighbors = self.base.neighbors(u);
            if neighbors.is_empty() {
                // Degenerate base graph: fall back to an insertion.
                let v = (u + 1) % n;
                UpdateKind::Insert(u, v, 1.0)
            } else {
                let v = neighbors[self.rng.next_bounded(neighbors.len() as u32) as usize];
                UpdateKind::Delete(u, v)
            }
        };
        Some(TimedUpdate {
            time: self.clock,
            kind,
        })
    }
}

/// Collects the next `count` windows of `window_seconds` each from a
/// timestamped stream, one [`BatchUpdate`] per window.
pub fn collect_windows(
    stream: impl Iterator<Item = TimedUpdate>,
    window_seconds: f64,
    count: usize,
) -> Vec<BatchUpdate> {
    assert!(window_seconds > 0.0);
    let mut windows = vec![BatchUpdate::new(); count];
    let horizon = window_seconds * count as f64;
    for event in stream {
        if event.time >= horizon {
            break;
        }
        let slot = (event.time / window_seconds) as usize;
        match event.kind {
            UpdateKind::Insert(u, v, w) => {
                windows[slot].insert(u, v, w);
            }
            UpdateKind::Delete(u, v) => {
                windows[slot].delete(u, v);
            }
        }
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;

    fn base() -> CsrGraph {
        GraphBuilder::from_edges(
            50,
            &(0..100u32)
                .map(|i| (i % 50, (i * 7 + 1) % 50, 1.0))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn timestamps_are_increasing() {
        let g = base();
        let events: Vec<_> = ChurnStream::new(&g, 10.0, 5.0, 1).take(200).collect();
        assert_eq!(events.len(), 200);
        for w in events.windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn rates_control_the_mix() {
        let g = base();
        let events: Vec<_> = ChurnStream::new(&g, 30.0, 10.0, 2).take(4000).collect();
        let inserts = events
            .iter()
            .filter(|e| matches!(e.kind, UpdateKind::Insert(..)))
            .count();
        let fraction = inserts as f64 / events.len() as f64;
        assert!((fraction - 0.75).abs() < 0.05, "insert fraction {fraction}");
        // Mean inter-arrival ≈ 1/40 s.
        let mean_gap = events.last().unwrap().time / events.len() as f64;
        assert!((mean_gap - 1.0 / 40.0).abs() < 0.005, "mean gap {mean_gap}");
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let g = base();
        let a: Vec<_> = ChurnStream::new(&g, 5.0, 5.0, 9).take(50).collect();
        let b: Vec<_> = ChurnStream::new(&g, 5.0, 5.0, 9).take(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn windows_partition_the_stream() {
        let g = base();
        let windows = collect_windows(ChurnStream::new(&g, 100.0, 50.0, 3), 1.0, 5);
        assert_eq!(windows.len(), 5);
        let total: usize = windows.iter().map(|w| w.len()).sum();
        // ≈150 events/s × 5 s.
        assert!((500..1000).contains(&total), "total events {total}");
        assert!(windows.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn windows_apply_cleanly_to_the_graph() {
        let g = base();
        let windows = collect_windows(ChurnStream::new(&g, 50.0, 20.0, 4), 1.0, 3);
        let mut current = g.clone();
        for batch in &windows {
            current = crate::apply_batch(&current, batch);
            current.validate().unwrap();
            assert!(current.is_symmetric());
        }
        assert_ne!(current, g);
    }

    #[test]
    fn deletions_reference_base_edges() {
        let g = base();
        for event in ChurnStream::new(&g, 0.0001, 10.0, 5).take(100) {
            if let UpdateKind::Delete(u, v) = event.kind {
                assert!(g.has_arc(u, v), "delete of non-base edge {u}-{v}");
            }
        }
    }
}
