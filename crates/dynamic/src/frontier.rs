//! Affected-vertex frontiers for incremental detection.
//!
//! Given a batch of edge updates and the pre-update communities, only
//! some vertices can improve by moving; the rest keep their optima. Two
//! published marking rules are implemented:
//!
//! * **Dynamic Frontier** (Sahu et al.): mark the endpoints of
//!   *cross-community insertions* and *intra-community deletions*, plus
//!   their immediate neighbours; the local-moving phase's pruning flags
//!   then propagate the wave exactly as far as changes cascade.
//! * **Delta screening** (Zarayeneh et al.): a coarser superset — for
//!   each affected insertion source also mark the entire target
//!   community that the vertex would most plausibly join, and for
//!   intra-community deletions mark the whole former community (it may
//!   split).

use crate::update::BatchUpdate;
use gve_graph::{CsrGraph, GroupedCsr, VertexId};

/// True for the update pairs that can change the community optimum.
fn affects(u: VertexId, v: VertexId, membership: &[VertexId], insertion: bool) -> bool {
    let cu = membership.get(u as usize).copied();
    let cv = membership.get(v as usize).copied();
    match (cu, cv) {
        // New vertices (beyond the old membership) always matter.
        (None, _) | (_, None) => true,
        (Some(cu), Some(cv)) => {
            if insertion {
                cu != cv // cross-community insertion creates pull
            } else {
                cu == cv // intra-community deletion may split
            }
        }
    }
}

/// Computes the Dynamic Frontier for a batch: affected endpoints plus
/// their one-hop neighbourhoods, deduplicated.
pub fn dynamic_frontier(
    graph: &CsrGraph,
    membership: &[VertexId],
    batch: &BatchUpdate,
) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut marked = vec![false; n];
    let mark = |v: VertexId, marked: &mut Vec<bool>| {
        if (v as usize) < n {
            marked[v as usize] = true;
        }
    };
    let mut seeds: Vec<VertexId> = Vec::new();
    for &(u, v, _) in &batch.insertions {
        if affects(u, v, membership, true) {
            seeds.push(u);
            seeds.push(v);
        }
    }
    for &(u, v) in &batch.deletions {
        if affects(u, v, membership, false) {
            seeds.push(u);
            seeds.push(v);
        }
    }
    for &s in &seeds {
        mark(s, &mut marked);
        if (s as usize) < n {
            for &j in graph.neighbors(s) {
                mark(j, &mut marked);
            }
        }
    }
    marked
        .iter()
        .enumerate()
        .filter_map(|(v, &m)| m.then_some(v as VertexId))
        .collect()
}

/// Computes the delta-screening frontier: the Dynamic Frontier plus the
/// full membership of every community an affected update touches.
pub fn delta_screening_frontier(
    graph: &CsrGraph,
    membership: &[VertexId],
    batch: &BatchUpdate,
) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut marked = vec![false; n];
    for v in dynamic_frontier(graph, membership, batch) {
        marked[v as usize] = true;
    }
    // Group the previous communities once; mark whole communities whose
    // structure the batch perturbs.
    let num_ids = membership
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    if num_ids > 0 {
        let groups = GroupedCsr::group_by(membership, num_ids);
        let mark_community = |c: VertexId, marked: &mut Vec<bool>| {
            for &member in groups.members(c) {
                if (member as usize) < n {
                    marked[member as usize] = true;
                }
            }
        };
        for &(u, v, _) in &batch.insertions {
            if affects(u, v, membership, true) {
                // The source may be pulled into the target's community.
                if let Some(&cv) = membership.get(v as usize) {
                    mark_community(cv, &mut marked);
                }
                if let Some(&cu) = membership.get(u as usize) {
                    mark_community(cu, &mut marked);
                }
            }
        }
        for &(u, v) in &batch.deletions {
            if affects(u, v, membership, false) {
                if let Some(&cu) = membership.get(u as usize) {
                    mark_community(cu, &mut marked);
                }
            }
        }
    }
    marked
        .iter()
        .enumerate()
        .filter_map(|(v, &m)| m.then_some(v as VertexId))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;

    /// Two triangles {0,1,2} and {3,4,5} bridged by 2-3.
    fn setup() -> (CsrGraph, Vec<u32>) {
        let graph = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        );
        (graph, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn cross_community_insertion_marks_neighbourhoods() {
        let (graph, membership) = setup();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 5, 1.0); // cross-community
        let frontier = dynamic_frontier(&graph, &membership, &batch);
        // 0, 5 and their neighbours.
        assert!(frontier.contains(&0));
        assert!(frontier.contains(&5));
        assert!(frontier.contains(&1)); // neighbour of 0
        assert!(frontier.contains(&4)); // neighbour of 5
    }

    #[test]
    fn intra_community_insertion_is_ignored() {
        let (graph, membership) = setup();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 1, 1.0); // same community — strengthens it
        assert!(dynamic_frontier(&graph, &membership, &batch).is_empty());
    }

    #[test]
    fn intra_community_deletion_marks_neighbourhoods() {
        let (graph, membership) = setup();
        let mut batch = BatchUpdate::new();
        batch.delete(3, 4); // same community — may split it
        let frontier = dynamic_frontier(&graph, &membership, &batch);
        assert!(frontier.contains(&3));
        assert!(frontier.contains(&4));
        assert!(frontier.contains(&5));
    }

    #[test]
    fn cross_community_deletion_is_ignored() {
        let (graph, membership) = setup();
        let mut batch = BatchUpdate::new();
        batch.delete(2, 3); // the bridge — communities only separate further
        assert!(dynamic_frontier(&graph, &membership, &batch).is_empty());
    }

    #[test]
    fn delta_screening_is_a_superset_marking_communities() {
        let (graph, membership) = setup();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 5, 1.0);
        let df = dynamic_frontier(&graph, &membership, &batch);
        let ds = delta_screening_frontier(&graph, &membership, &batch);
        for v in &df {
            assert!(ds.contains(v), "delta screening missed frontier vertex {v}");
        }
        // Both whole communities are marked.
        assert_eq!(ds.len(), 6);
    }

    #[test]
    fn frontier_is_sorted_and_deduplicated() {
        let (graph, membership) = setup();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 5, 1.0);
        batch.insert(0, 4, 1.0);
        batch.delete(3, 4);
        let frontier = dynamic_frontier(&graph, &membership, &batch);
        assert!(frontier.windows(2).all(|w| w[0] < w[1]), "{frontier:?}");
    }
}
