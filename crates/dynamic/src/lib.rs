//! Dynamic Leiden: community detection on evolving graphs.
//!
//! The paper closes §4.1 noting that its refine-based variant "may be
//! more suitable for the design of dynamic Leiden algorithm (for dynamic
//! graphs)" — the extension its authors pursued in follow-up work. This
//! crate builds that extension on top of `gve-leiden`:
//!
//! * [`BatchUpdate`] — a batch of edge insertions and deletions,
//!   applied to a CSR graph with [`apply_batch`];
//! * [`DynamicStrategy`] — how much prior work is reused per batch:
//!   - `FullStatic`: rerun from scratch (the correctness reference);
//!   - `NaiveDynamic`: seed the first pass with the previous
//!     membership — all vertices reprocessed, but convergence is fast;
//!   - `DeltaScreening`: seed with the previous membership and process
//!     only vertices whose neighbourhood the batch could affect, plus
//!     the communities they might join (Zarayeneh et al.'s screening
//!     rule);
//!   - `DynamicFrontier`: seed with the previous membership and mark
//!     only the endpoints of changed edges (plus their neighbours);
//!     the pruning flags spread the wave exactly as far as it needs to
//!     go;
//! * [`DynamicLeiden`] — a stateful detector that owns the evolving
//!   graph and its current membership and processes batches.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod frontier;
pub mod stream;
pub mod update;

pub use frontier::{delta_screening_frontier, dynamic_frontier};
pub use stream::{collect_windows, ChurnStream, TimedUpdate, UpdateKind};
pub use update::{apply_batch, BatchUpdate};

use gve_graph::{CsrGraph, VertexId};
use gve_leiden::{Leiden, LeidenConfig, LeidenResult, PassWorkspace};

/// How a batch update is propagated into the community structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DynamicStrategy {
    /// Rerun static GVE-Leiden from scratch on the updated graph.
    FullStatic,
    /// Seed with the previous membership (Naive-dynamic).
    NaiveDynamic,
    /// Seed with the previous membership and restrict initial processing
    /// via delta-screening.
    DeltaScreening,
    /// Seed with the previous membership and restrict initial processing
    /// to the batch's frontier (Dynamic Frontier).
    #[default]
    DynamicFrontier,
}

/// Stateful dynamic community detector over an evolving graph.
#[derive(Debug, Clone)]
pub struct DynamicLeiden {
    runner: Leiden,
    strategy: DynamicStrategy,
    graph: CsrGraph,
    membership: Vec<VertexId>,
    batches_applied: usize,
}

impl DynamicLeiden {
    /// Creates the detector and runs an initial static detection.
    pub fn new(graph: CsrGraph, config: LeidenConfig, strategy: DynamicStrategy) -> Self {
        let runner = Leiden::new(config);
        let initial = runner.run(&graph);
        Self {
            runner,
            strategy,
            graph,
            membership: initial.membership,
            batches_applied: 0,
        }
    }

    /// Creates the detector from an **existing** partition, without
    /// re-running static detection.
    ///
    /// This is the stateful refresh handle long-lived consumers (e.g.
    /// `gve-serve`'s partition cache) use: they already paid for a
    /// detection, and only want incremental batch refreshes from here
    /// on. Returns an error when `membership` does not cover the
    /// graph's vertices.
    pub fn from_state(
        graph: CsrGraph,
        membership: Vec<VertexId>,
        config: LeidenConfig,
        strategy: DynamicStrategy,
    ) -> Result<Self, String> {
        if membership.len() != graph.num_vertices() {
            return Err(format!(
                "membership covers {} vertices but the graph has {}",
                membership.len(),
                graph.num_vertices()
            ));
        }
        config.validate()?;
        Ok(Self {
            runner: Leiden::new(config),
            strategy,
            graph,
            membership,
            batches_applied: 0,
        })
    }

    /// The current graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The current community membership (dense ids).
    pub fn membership(&self) -> &[VertexId] {
        &self.membership
    }

    /// Number of batches processed so far.
    pub fn batches_applied(&self) -> usize {
        self.batches_applied
    }

    /// The update strategy in use.
    pub fn strategy(&self) -> DynamicStrategy {
        self.strategy
    }

    /// Applies a batch of edge updates and refreshes the communities
    /// according to the configured strategy. Returns the full result of
    /// the refresh run.
    pub fn apply(&mut self, batch: &BatchUpdate) -> LeidenResult {
        self.apply_in(batch, &mut PassWorkspace::new())
    }

    /// [`apply`](Self::apply) through a caller-provided workspace arena,
    /// so long-lived consumers (the serve worker pool) refresh batches
    /// with zero steady-state hot-path allocations.
    pub fn apply_in(&mut self, batch: &BatchUpdate, workspace: &mut PassWorkspace) -> LeidenResult {
        let new_graph = apply_batch(&self.graph, batch);
        // Vertices may have been appended by the batch; extend the old
        // membership with singletons for them.
        let mut previous = self.membership.clone();
        let next_id = previous.iter().map(|&c| c + 1).max().unwrap_or(0);
        for offset in 0..new_graph.num_vertices().saturating_sub(previous.len()) {
            previous.push(next_id + offset as VertexId);
        }

        let result = match self.strategy {
            DynamicStrategy::FullStatic => self.runner.run_in(&new_graph, workspace),
            DynamicStrategy::NaiveDynamic => {
                self.runner.run_seeded_in(&new_graph, &previous, workspace)
            }
            DynamicStrategy::DeltaScreening => {
                let frontier = delta_screening_frontier(&new_graph, &previous, batch);
                self.runner
                    .run_frontier_in(&new_graph, &previous, &frontier, workspace)
            }
            DynamicStrategy::DynamicFrontier => {
                let frontier = dynamic_frontier(&new_graph, &previous, batch);
                self.runner
                    .run_frontier_in(&new_graph, &previous, &frontier, workspace)
            }
        };
        self.graph = new_graph;
        self.membership = result.membership.clone();
        self.batches_applied += 1;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_generate::PlantedPartition;
    use gve_prim::Xorshift32;

    fn random_batch(
        graph: &CsrGraph,
        insertions: usize,
        deletions: usize,
        seed: u32,
    ) -> BatchUpdate {
        let mut rng = Xorshift32::new(seed);
        let n = graph.num_vertices() as u32;
        let mut batch = BatchUpdate::new();
        for _ in 0..insertions {
            let u = rng.next_bounded(n);
            let v = rng.next_bounded(n);
            if u != v {
                batch.insert(u, v, 1.0);
            }
        }
        let mut attempts = 0;
        while batch.deletions.len() < deletions && attempts < deletions * 20 {
            attempts += 1;
            let u = rng.next_bounded(n);
            let neighbors = graph.neighbors(u);
            if neighbors.is_empty() {
                continue;
            }
            let v = neighbors[rng.next_bounded(neighbors.len() as u32) as usize];
            if u != v {
                batch.delete(u, v);
            }
        }
        batch
    }

    fn planted_graph(seed: u64) -> (CsrGraph, Vec<u32>) {
        let planted = PlantedPartition::new(1500, 10, 14.0, 1.0)
            .seed(seed)
            .generate();
        (planted.graph, planted.labels)
    }

    #[test]
    fn every_strategy_tracks_static_quality() {
        let (graph, _) = planted_graph(5);
        let static_detector = Leiden::default();
        for strategy in [
            DynamicStrategy::FullStatic,
            DynamicStrategy::NaiveDynamic,
            DynamicStrategy::DeltaScreening,
            DynamicStrategy::DynamicFrontier,
        ] {
            let mut dynamic = DynamicLeiden::new(graph.clone(), LeidenConfig::default(), strategy);
            let mut current = graph.clone();
            for step in 0..3 {
                let batch = random_batch(&current, 60, 40, 100 + step);
                dynamic.apply(&batch);
                current = apply_batch(&current, &batch);
                let q_dynamic = gve_quality::modularity(&current, dynamic.membership());
                let q_static =
                    gve_quality::modularity(&current, &static_detector.run(&current).membership);
                assert!(
                    q_dynamic > q_static - 0.03,
                    "{strategy:?} step {step}: dynamic Q {q_dynamic} vs static {q_static}"
                );
            }
            assert_eq!(dynamic.batches_applied(), 3);
        }
    }

    #[test]
    fn dynamic_communities_stay_connected() {
        let (graph, _) = planted_graph(9);
        let mut dynamic = DynamicLeiden::new(
            graph.clone(),
            LeidenConfig::default(),
            DynamicStrategy::DynamicFrontier,
        );
        for step in 0..4 {
            let batch = random_batch(dynamic.graph(), 40, 30, 500 + step);
            dynamic.apply(&batch);
            let report =
                gve_quality::disconnected_communities(dynamic.graph(), dynamic.membership());
            assert!(
                report.all_connected(),
                "step {step}: {} disconnected",
                report.disconnected
            );
        }
    }

    #[test]
    fn batch_can_grow_the_vertex_set() {
        let (graph, _) = planted_graph(3);
        let n = graph.num_vertices() as u32;
        let mut dynamic = DynamicLeiden::new(
            graph,
            LeidenConfig::default(),
            DynamicStrategy::NaiveDynamic,
        );
        let mut batch = BatchUpdate::new();
        batch.insert(0, n, 1.0); // brand-new vertex n
        batch.insert(n, n + 1, 1.0); // and n + 1
        dynamic.apply(&batch);
        assert_eq!(dynamic.graph().num_vertices(), n as usize + 2);
        assert_eq!(dynamic.membership().len(), n as usize + 2);
        gve_quality::validate_membership(dynamic.membership(), n as usize + 2).unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop_refresh() {
        let (graph, _) = planted_graph(7);
        let mut dynamic = DynamicLeiden::new(
            graph.clone(),
            LeidenConfig::default(),
            DynamicStrategy::DynamicFrontier,
        );
        let before = gve_quality::modularity(&graph, dynamic.membership());
        dynamic.apply(&BatchUpdate::new());
        let after = gve_quality::modularity(&graph, dynamic.membership());
        assert!(
            after > before - 0.01,
            "refresh lost quality: {before} -> {after}"
        );
        assert_eq!(dynamic.graph(), &graph);
    }

    #[test]
    fn default_strategy_is_dynamic_frontier() {
        assert_eq!(DynamicStrategy::default(), DynamicStrategy::DynamicFrontier);
    }

    /// `apply_in` through one reused workspace matches `apply` with a
    /// fresh workspace bit-for-bit (1-thread pool for determinism).
    #[test]
    fn apply_in_reused_workspace_matches_apply() {
        let (graph, _) = planted_graph(13);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool.install(|| {
            for strategy in [
                DynamicStrategy::NaiveDynamic,
                DynamicStrategy::DeltaScreening,
                DynamicStrategy::DynamicFrontier,
            ] {
                let mut fresh =
                    DynamicLeiden::new(graph.clone(), LeidenConfig::default(), strategy);
                let mut reused = fresh.clone();
                let mut ws = PassWorkspace::new();
                for step in 0..3 {
                    let batch = random_batch(fresh.graph(), 50, 30, 900 + step);
                    let a = fresh.apply(&batch);
                    let b = reused.apply_in(&batch, &mut ws);
                    assert_eq!(a.membership, b.membership, "{strategy:?} step {step}");
                    assert_eq!(a.passes, b.passes, "{strategy:?} step {step}");
                }
            }
        });
    }
}
