//! Property-based tests: `apply_batch` against a naive reference model.

use gve_dynamic::{apply_batch, BatchUpdate};
use gve_graph::{CsrGraph, GraphBuilder};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_graph_and_batch() -> impl Strategy<Value = (CsrGraph, BatchUpdate)> {
    (3u32..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 1u32..4), 0..80);
        let inserts = proptest::collection::vec((0..n + 4, 0..n + 4, 1u32..4), 0..20);
        let deletes = proptest::collection::vec((0..n, 0..n), 0..20);
        (Just(n), edges, inserts, deletes).prop_map(|(n, edges, inserts, deletes)| {
            let typed: Vec<(u32, u32, f32)> = edges
                .into_iter()
                .map(|(u, v, w)| (u, v, w as f32))
                .collect();
            let graph = GraphBuilder::from_edges(n as usize, &typed);
            let mut batch = BatchUpdate::new();
            for (u, v, w) in inserts {
                batch.insert(u, v, w as f32);
            }
            for (u, v) in deletes {
                batch.delete(u, v);
            }
            (graph, batch)
        })
    })
}

/// Reference model: undirected weight map keyed by normalized pairs.
fn weight_map(graph: &CsrGraph) -> BTreeMap<(u32, u32), f32> {
    let mut map = BTreeMap::new();
    for (u, v, w) in graph.arcs() {
        if u <= v {
            map.insert((u, v), w);
        }
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// apply_batch ≡ editing the undirected weight map directly.
    #[test]
    fn apply_batch_matches_model((graph, batch) in arb_graph_and_batch()) {
        let updated = apply_batch(&graph, &batch);
        updated.validate().unwrap();
        prop_assert!(updated.is_symmetric());

        // Build the expected map: delete first? The implementation
        // deletes old arcs then merges insertions, and deletions do not
        // affect same-batch insertions. Model accordingly.
        let mut expected = weight_map(&graph);
        for &(u, v) in &batch.deletions {
            let key = if u <= v { (u, v) } else { (v, u) };
            expected.remove(&key);
        }
        for &(u, v, w) in &batch.insertions {
            let key = if u <= v { (u, v) } else { (v, u) };
            *expected.entry(key).or_insert(0.0) += w;
        }
        let got = weight_map(&updated);
        prop_assert_eq!(got.len(), expected.len());
        for (key, w) in &expected {
            let gw = got.get(key).copied();
            prop_assert!(gw.is_some(), "missing edge {:?}", key);
            prop_assert!((gw.unwrap() - w).abs() < 1e-5, "edge {:?}: {:?} vs {}", key, gw, w);
        }
    }

    /// Applying the inverse batch restores the original edge set (when
    /// insertions touch only new pairs).
    #[test]
    fn insert_only_batches_are_invertible((graph, batch) in arb_graph_and_batch()) {
        // Keep only insertions on pairs absent from the graph, without
        // duplicates inside the batch.
        let mut seen = std::collections::BTreeSet::new();
        let mut add = BatchUpdate::new();
        for &(u, v, w) in &batch.insertions {
            let key = if u <= v { (u, v) } else { (v, u) };
            let exists = (u as usize) < graph.num_vertices()
                && (v as usize) < graph.num_vertices()
                && graph.has_arc(u, v);
            if !exists && seen.insert(key) {
                add.insert(u, v, w);
            }
        }
        let mut remove = BatchUpdate::new();
        for &(u, v, _) in &add.insertions {
            remove.delete(u, v);
        }
        let there = apply_batch(&graph, &add);
        let back = apply_batch(&there, &remove);
        // Vertex count may have grown (new ids); compare edge maps.
        prop_assert_eq!(weight_map(&back), weight_map(&graph));
    }
}
