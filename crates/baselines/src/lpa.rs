//! Parallel label propagation (RAK) — the fast-but-lower-quality end of
//! the comparison spectrum.
//!
//! Raghavan–Albert–Kumara label propagation is the classic cheap
//! community detector: every vertex repeatedly adopts the label carrying
//! the most edge weight in its neighbourhood; no quality function is
//! optimized. The paper's group ships it as GVE-RAK alongside GVE-Louvain
//! and GVE-Leiden; here it calibrates the quality axis of comparisons —
//! any Leiden implementation must beat it on modularity, usually at
//! higher cost.

use crate::BaselineResult;
use gve_graph::{CsrGraph, VertexId};
use gve_prim::parfor::dynamic_workers;
use gve_prim::{AtomicBitset, CommunityMap, PerThread, Xorshift32};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Configuration of the label-propagation baseline.
#[derive(Debug, Clone)]
pub struct LpaConfig {
    /// Maximum sweeps over the vertex set.
    pub max_iterations: usize,
    /// Stop when fewer than this fraction of vertices changed label in a
    /// sweep.
    pub tolerance: f64,
    /// Dynamic-schedule chunk size.
    pub chunk_size: usize,
    /// Seed for the random tie-breaking RAK prescribes (without it,
    /// labels flood across weak bridges toward small ids).
    pub seed: u64,
}

impl Default for LpaConfig {
    fn default() -> Self {
        Self {
            max_iterations: 20,
            tolerance: 0.05,
            chunk_size: gve_prim::parfor::DEFAULT_CHUNK,
            seed: 0,
        }
    }
}

/// Runs label propagation with default configuration.
pub fn label_propagation(graph: &CsrGraph) -> BaselineResult {
    label_propagation_with(graph, &LpaConfig::default())
}

/// Runs asynchronous parallel label propagation.
pub fn label_propagation_with(graph: &CsrGraph, config: &LpaConfig) -> BaselineResult {
    let n = graph.num_vertices();
    if n == 0 {
        return BaselineResult {
            membership: Vec::new(),
            num_communities: 0,
            passes: 0,
        };
    }
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let tables: PerThread<CommunityMap> = PerThread::new(move || CommunityMap::new(n));
    let unprocessed = AtomicBitset::new_all_set(n);
    let mut sweeps = 0;

    for iteration in 0..config.max_iterations {
        sweeps += 1;
        let changed = AtomicUsize::new(0);
        dynamic_workers(n, config.chunk_size, |claims| {
            tables.with(|ht| {
                for range in claims {
                    for v in range {
                        if !unprocessed.take(v) {
                            continue;
                        }
                        let v = v as VertexId;
                        ht.clear();
                        // Relaxed label loads: asynchronous RAK tolerates
                        // stale neighbor labels — worst case the move
                        // happens a sweep later.
                        for (j, w) in graph.edges(v) {
                            if j != v {
                                ht.add(labels[j as usize].load(Ordering::Relaxed), w as f64);
                            }
                        }
                        let Some((_, best_weight)) = ht.max_key() else {
                            continue;
                        };
                        // RAK tie-breaking: keep the current label if it
                        // is among the maxima; otherwise pick uniformly
                        // at random among them. (Relaxed: only this
                        // worker writes `v` within a sweep.)
                        let current = labels[v as usize].load(Ordering::Relaxed);
                        if ht.weight(current) >= best_weight {
                            continue;
                        }
                        let ties: Vec<VertexId> = ht
                            .iter()
                            .filter(|&(_, w)| w >= best_weight)
                            .map(|(l, _)| l)
                            .collect();
                        let mut rng = Xorshift32::new(
                            (config.seed as u32)
                                ^ v.wrapping_mul(0x9E37_79B9)
                                ^ ((iteration as u32) << 13),
                        );
                        let best = ties[rng.next_bounded(ties.len() as u32) as usize];
                        if best != current {
                            // Relaxed: label readers accept staleness;
                            // `changed` is a pure counter read after the
                            // join.
                            labels[v as usize].store(best, Ordering::Relaxed);
                            changed.fetch_add(1, Ordering::Relaxed);
                            for &j in graph.neighbors(v) {
                                unprocessed.set(j as usize);
                            }
                        }
                    }
                }
            })
        });
        // Relaxed: both reads happen after the dynamic_workers join, so
        // every sweep store is already visible.
        if (changed.load(Ordering::Relaxed) as f64) < config.tolerance * n as f64 {
            break;
        }
    }

    // Relaxed: post-join read-back, as above.
    let raw: Vec<VertexId> = labels.iter().map(|l| l.load(Ordering::Relaxed)).collect();
    let (membership, num_communities) = gve_leiden::dendrogram::renumber(&raw);
    BaselineResult {
        membership,
        num_communities,
        passes: sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;

    #[test]
    fn separates_two_cliques() {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b, 1.0));
                edges.push((a + 5, b + 5, 1.0));
            }
        }
        edges.push((0, 5, 1.0)); // weak bridge
        let g = GraphBuilder::from_edges(10, &edges);
        let r = label_propagation(&g);
        assert_eq!(r.membership[0], r.membership[4]);
        assert_eq!(r.membership[5], r.membership[9]);
        assert_ne!(r.membership[0], r.membership[5]);
    }

    #[test]
    fn recovers_strong_planted_structure() {
        let planted = gve_generate::sbm::PlantedPartition::new(1000, 8, 14.0, 0.5)
            .seed(2)
            .generate();
        let r = label_propagation(&planted.graph);
        let nmi = gve_quality::normalized_mutual_information(&r.membership, &planted.labels);
        assert!(nmi > 0.8, "NMI {nmi}");
    }

    #[test]
    fn quality_below_leiden_on_mixed_graphs() {
        // LPA is the quality floor: Leiden must beat or match it.
        let g = gve_generate::sbm::PlantedPartition::new(1500, 12, 10.0, 3.0)
            .seed(4)
            .generate()
            .graph;
        let q_lpa = gve_quality::modularity(&g, &label_propagation(&g).membership);
        let q_leiden = gve_quality::modularity(&g, &gve_leiden::leiden(&g).membership);
        assert!(
            q_leiden >= q_lpa - 1e-9,
            "Leiden {q_leiden} lost to LPA {q_lpa}"
        );
    }

    #[test]
    fn labels_are_dense_and_valid() {
        let g = gve_generate::kmer::kmer_chains(3000, 12, 0.05, 3);
        let r = label_propagation(&g);
        gve_quality::validate_membership(&r.membership, 3000).unwrap();
        let max = *r.membership.iter().max().unwrap() as usize;
        assert_eq!(max + 1, r.num_communities);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(label_propagation(&CsrGraph::empty(0)).num_communities, 0);
        let r = label_propagation(&CsrGraph::empty(3));
        assert_eq!(r.membership, vec![0, 1, 2]);
    }
}
