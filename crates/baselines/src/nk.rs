//! NetworKit-style parallel Leiden: global queues + locking.
//!
//! The paper contrasts its flag-based pruning and lock-free commits with
//! the parallel Leiden in NetworKit \[19\], which distributes work through
//! *global queues* and serializes community updates with *vertex and
//! community locks*, and which (like other prior work) leaves the
//! aggregation phase unoptimized. This module reproduces that design
//! point: a shared frontier queue (`crossbeam::queue::SegQueue`),
//! per-community `parking_lot` mutexes around every weight transfer, and
//! a lock-guarded hash-map aggregation. It produces partitions of
//! comparable quality while paying the synchronization costs GVE-Leiden
//! avoids — the Figure 6(a)/(b) contrast.

use crate::BaselineResult;
use crossbeam::queue::SegQueue;
use gve_graph::{CsrGraph, GraphBuilder, VertexId};
use gve_leiden::delta_modularity;
use gve_prim::atomics::{atomic_f64_from_slice, AtomicF64};
use gve_prim::{CommunityMap, PerThread, Xorshift32};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Configuration of the NetworKit-style baseline.
#[derive(Debug, Clone)]
pub struct NkLeidenConfig {
    /// Cap on local-moving rounds per pass.
    pub max_rounds: usize,
    /// Cap on passes.
    pub max_passes: usize,
    /// Seed for the randomized refinement.
    pub seed: u64,
}

impl Default for NkLeidenConfig {
    fn default() -> Self {
        Self {
            max_rounds: 20,
            max_passes: 10,
            seed: 0,
        }
    }
}

/// Lock table guarding community weight transfers. Locks are acquired in
/// id order to avoid deadlock.
struct CommunityLocks {
    locks: Vec<Mutex<()>>,
}

impl CommunityLocks {
    fn new(n: usize) -> Self {
        Self {
            locks: (0..n.max(1)).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Runs `f` while holding the locks of both communities.
    fn with_pair<R>(&self, a: VertexId, b: VertexId, f: impl FnOnce() -> R) -> R {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let _first = self.locks[lo as usize].lock();
        let _second = if lo != hi {
            Some(self.locks[hi as usize].lock())
        } else {
            None
        };
        f()
    }
}

/// Runs the NetworKit-style parallel Leiden with default configuration.
pub fn nk_leiden(graph: &CsrGraph) -> BaselineResult {
    nk_leiden_with(graph, &NkLeidenConfig::default())
}

/// Runs the NetworKit-style parallel Leiden.
pub fn nk_leiden_with(graph: &CsrGraph, config: &NkLeidenConfig) -> BaselineResult {
    let n = graph.num_vertices();
    let mut top: Vec<VertexId> = (0..n as VertexId).collect();
    let m = graph.total_arc_weight() / 2.0;
    if n == 0 || m <= 0.0 {
        return BaselineResult {
            num_communities: n,
            membership: top,
            passes: 0,
        };
    }

    let tables: PerThread<CommunityMap> = PerThread::new(move || CommunityMap::new(n));
    let coeffs = gve_leiden::Objective::default().coeffs(m);
    let mut current: Option<CsrGraph> = None;
    let mut init_labels: Option<Vec<VertexId>> = None;
    let mut passes = 0;

    for pass in 0..config.max_passes {
        let g = current.as_ref().unwrap_or(graph);
        let n_cur = g.num_vertices();
        let weights: Vec<f64> = (0..n_cur as VertexId)
            .into_par_iter()
            .map(|u| g.weighted_degree(u))
            .collect();

        // ---- Local moving with a global frontier queue ----
        let membership: Vec<AtomicU32> = match init_labels.take() {
            Some(labels) => labels.into_iter().map(AtomicU32::new).collect(),
            None => (0..n_cur as u32).map(AtomicU32::new).collect(),
        };
        let sigma: Vec<AtomicF64> = {
            let mut s = vec![0.0f64; n_cur];
            for v in 0..n_cur {
                // Relaxed: single-threaded setup loop, nothing to order.
                s[membership[v].load(Ordering::Relaxed) as usize] += weights[v];
            }
            atomic_f64_from_slice(&s)
        };
        let locks = CommunityLocks::new(n_cur);
        let in_queue: Vec<AtomicBool> = (0..n_cur).map(|_| AtomicBool::new(true)).collect();
        let mut frontier: Vec<VertexId> = (0..n_cur as VertexId).collect();
        let mut any_move = false;

        for _round in 0..config.max_rounds {
            if frontier.is_empty() {
                break;
            }
            let next = SegQueue::new();
            let moves: usize = frontier
                .par_iter()
                .map(|&i| {
                    // Relaxed throughout this worker: queue flags and
                    // membership tolerate staleness (asynchronous local
                    // moving); the lock below orders the actual commit.
                    in_queue[i as usize].store(false, Ordering::Relaxed);
                    let moved = tables.with(|ht| {
                        let current_c = membership[i as usize].load(Ordering::Relaxed);
                        ht.clear();
                        for (j, w) in g.edges(i) {
                            if j != i {
                                // Relaxed: stale labels tolerated.
                                ht.add(membership[j as usize].load(Ordering::Relaxed), w as f64);
                            }
                        }
                        let k_i = weights[i as usize];
                        let target =
                            gve_leiden::localmove::choose_best(ht, current_c, k_i, &sigma, coeffs)
                                .map(|(t, _)| t)?;
                        // Lock-guarded weight transfer (the NetworKit
                        // contrast with GVE's lock-free commit). The
                        // mutex pair orders the commit; Relaxed on the
                        // membership cells themselves suffices.
                        locks.with_pair(current_c, target, || {
                            if membership[i as usize].load(Ordering::Relaxed) == current_c {
                                sigma[current_c as usize].fetch_sub(k_i);
                                sigma[target as usize].fetch_add(k_i);
                                membership[i as usize].store(target, Ordering::Relaxed);
                                Some(target)
                            } else {
                                None
                            }
                        })
                    });
                    if moved.is_some() {
                        for &j in g.neighbors(i) {
                            // Relaxed: the swap is the dedup itself; a
                            // lost race only re-queues a vertex.
                            if !in_queue[j as usize].swap(true, Ordering::Relaxed) {
                                next.push(j);
                            }
                        }
                        1
                    } else {
                        0
                    }
                })
                .sum();
            any_move |= moves > 0;
            frontier.clear();
            while let Some(j) = next.pop() {
                frontier.push(j);
            }
        }

        // ---- Randomized refinement with locks ----
        // Relaxed: these run between rayon joins — no concurrent
        // readers of the cells being rewritten.
        let bounds: Vec<VertexId> = membership
            .par_iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        membership
            .par_iter()
            .enumerate()
            // Relaxed: between-joins reset, as above.
            .for_each(|(v, c)| c.store(v as u32, Ordering::Relaxed));
        sigma
            .par_iter()
            .zip(weights.par_iter())
            .for_each(|(s, &k)| s.store(k));
        let seed = config.seed ^ ((pass as u64) << 32);
        let any_refine: bool = (0..n_cur as VertexId)
            .into_par_iter()
            .map(|i| {
                tables.with(|ht| {
                    // Relaxed membership loads: stale values are
                    // tolerated; the lock re-checks before committing.
                    let c = membership[i as usize].load(Ordering::Relaxed);
                    let k_i = weights[i as usize];
                    if sigma[c as usize].load() != k_i {
                        return false;
                    }
                    ht.clear();
                    for (j, w) in g.edges(i) {
                        if j != i && bounds[j as usize] == bounds[i as usize] {
                            // Relaxed: stale labels tolerated.
                            ht.add(membership[j as usize].load(Ordering::Relaxed), w as f64);
                        }
                    }
                    // Proportional selection over positive gains.
                    let k_to_current = ht.weight(c);
                    let sigma_current = sigma[c as usize].load();
                    let mut candidates: Vec<(VertexId, f64)> = Vec::new();
                    for (d, k_to_d) in ht.iter() {
                        if d == c {
                            continue;
                        }
                        let gain = delta_modularity(
                            k_to_d,
                            k_to_current,
                            k_i,
                            sigma[d as usize].load(),
                            sigma_current,
                            m,
                        );
                        if gain > 0.0 {
                            candidates.push((d, gain));
                        }
                    }
                    if candidates.is_empty() {
                        return false;
                    }
                    let mut rng = Xorshift32::new((seed as u32) ^ (i.wrapping_mul(0x9E37_79B9)));
                    let total: f64 = candidates.iter().map(|&(_, g)| g).sum();
                    let mut roll = rng.next_f64() * total;
                    let mut target = candidates.last().unwrap().0;
                    for &(d, g) in &candidates {
                        roll -= g;
                        if roll < 0.0 {
                            target = d;
                            break;
                        }
                    }
                    locks.with_pair(c, target, || {
                        // Re-check isolation under the lock; the target
                        // must also still be occupied.
                        if sigma[c as usize].load() == k_i && sigma[target as usize].load() > 0.0 {
                            sigma[c as usize].store(0.0);
                            sigma[target as usize].fetch_add(k_i);
                            // Relaxed: commit is ordered by the lock pair.
                            membership[i as usize].store(target, Ordering::Relaxed);
                            true
                        } else {
                            false
                        }
                    })
                })
            })
            .reduce(|| false, |a, b| a || b);

        // ---- Dendrogram + convergence ----
        // Relaxed: post-join read-back of the refinement results.
        let refined: Vec<VertexId> = membership
            .par_iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let (dense, k) = gve_leiden::dendrogram::renumber(&refined);
        for c in top.iter_mut() {
            *c = dense[*c as usize];
        }
        passes += 1;
        if (!any_move && !any_refine) || k == n_cur {
            break;
        }

        // ---- Unoptimized aggregation: lock-guarded hash maps ----
        current = Some(aggregate_locked(g, &dense, k));
        let mut label_of = vec![VertexId::MAX; k];
        for v in 0..n_cur {
            label_of[dense[v] as usize] = bounds[v];
        }
        let (next_init, _) = gve_leiden::dendrogram::renumber(&label_of);
        init_labels = Some(next_init);
    }

    let (final_membership, num_communities) = gve_leiden::dendrogram::renumber(&top);
    BaselineResult {
        membership: final_membership,
        num_communities,
        passes,
    }
}

/// Aggregation through per-community `Mutex<HashMap>` accumulators — the
/// unoptimized design the paper calls out in prior parallel Leidens.
fn aggregate_locked(graph: &CsrGraph, membership: &[VertexId], num_communities: usize) -> CsrGraph {
    let maps: Vec<Mutex<HashMap<VertexId, f64>>> = (0..num_communities)
        .map(|_| Mutex::new(HashMap::new()))
        .collect();
    (0..graph.num_vertices() as VertexId)
        .into_par_iter()
        .for_each(|i| {
            let c = membership[i as usize];
            let mut map = maps[c as usize].lock();
            for (j, w) in graph.edges(i) {
                *map.entry(membership[j as usize]).or_insert(0.0) += w as f64;
            }
        });
    let mut builder = GraphBuilder::new()
        .with_vertices(num_communities)
        .symmetrize(false)
        .dedup(false);
    for (c, map) in maps.into_iter().enumerate() {
        for (d, w) in map.into_inner() {
            builder.add_edge(c as VertexId, d, w as f32);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn finds_the_triangles() {
        let r = nk_leiden(&two_triangles());
        assert_eq!(r.num_communities, 2);
        assert_eq!(r.membership[0], r.membership[2]);
        assert_ne!(r.membership[0], r.membership[3]);
    }

    #[test]
    fn quality_comparable_to_gve_leiden() {
        let g = gve_generate::rmat::Rmat::web(10, 6.0).seed(3).generate();
        let q_nk = gve_quality::modularity(&g, &nk_leiden(&g).membership);
        let q_gve = gve_quality::modularity(&g, &gve_leiden::leiden(&g).membership);
        assert!((q_nk - q_gve).abs() < 0.1, "nk {q_nk} vs gve {q_gve}");
    }

    #[test]
    fn recovers_planted_partition() {
        let planted = gve_generate::sbm::PlantedPartition::new(1200, 10, 12.0, 1.0)
            .seed(9)
            .generate();
        let r = nk_leiden(&planted.graph);
        let nmi = gve_quality::normalized_mutual_information(&r.membership, &planted.labels);
        assert!(nmi > 0.85, "NMI {nmi}");
    }

    #[test]
    fn partition_is_valid() {
        let g = gve_generate::kmer::kmer_chains(5_000, 16, 0.05, 2);
        let r = nk_leiden(&g);
        gve_quality::validate_membership(&r.membership, g.num_vertices()).unwrap();
        assert!(r.num_communities >= 1);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(nk_leiden(&CsrGraph::empty(0)).passes, 0);
        assert_eq!(nk_leiden(&CsrGraph::empty(2)).membership, vec![0, 1]);
    }
}
