//! Comparator Leiden implementations.
//!
//! The paper benchmarks GVE-Leiden against four external systems. Two of
//! them are reproduced here *in the style that makes them slow*, so the
//! performance comparisons of Figure 6 have honest local stand-ins:
//!
//! * [`seq`] — sequential Leiden in the spirit of the original
//!   `libleidenalg` (Traag et al.): queue-driven local moving and
//!   randomized proportional refinement, single-threaded. Plays the role
//!   of "original Leiden" / "igraph Leiden" (both sequential).
//! * [`nk`] — a parallel Leiden in the style the paper attributes to
//!   NetworKit's implementation \[19\]: *global queue* based work
//!   distribution with per-community *locking*, and an unoptimized
//!   lock-guarded aggregation phase. Plays the role of "NetworKit
//!   Leiden".
//!
//! cuGraph Leiden (GPU) has no CPU-side stand-in; experiments note its
//! absence (see DESIGN.md substitution table).
//!
//! [`lpa`] adds RAK label propagation — not a paper comparator but the
//! classic quality floor every Leiden implementation must clear.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod lpa;
pub mod nk;
pub mod seq;

use gve_graph::VertexId;

/// Common result shape for the baseline implementations.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Community of every vertex, dense `0..k`.
    pub membership: Vec<VertexId>,
    /// Number of communities.
    pub num_communities: usize,
    /// Passes performed.
    pub passes: usize,
}
