//! Sequential Leiden in the style of the original `libleidenalg`.
//!
//! Single-threaded, queue-driven local moving (vertices re-enter the
//! queue when a neighbour moves), randomized proportional refinement
//! (the original paper's constrained merge), sequential aggregation,
//! move-based aggregate partition. Deterministic for a fixed seed —
//! which also makes it the reference implementation the parallel tests
//! compare quality against, and the speedup denominator for Table 1.

use crate::BaselineResult;
use gve_graph::{CsrGraph, GraphBuilder, VertexId};
use gve_leiden::delta_modularity;
use gve_prim::{CommunityMap, Xorshift32};
use std::collections::VecDeque;

/// Configuration of the sequential Leiden baseline.
#[derive(Debug, Clone)]
pub struct SeqLeidenConfig {
    /// Convergence tolerance on a sweep's accumulated gain.
    pub tolerance: f64,
    /// Safety cap on passes ("run until convergence" in practice).
    pub max_passes: usize,
    /// RNG seed for the randomized refinement.
    pub seed: u64,
}

impl Default for SeqLeidenConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-6,
            max_passes: 30,
            seed: 0,
        }
    }
}

/// Runs sequential Leiden with default configuration.
pub fn sequential_leiden(graph: &CsrGraph) -> BaselineResult {
    sequential_leiden_with(graph, &SeqLeidenConfig::default())
}

/// Runs sequential Leiden with the given configuration.
pub fn sequential_leiden_with(graph: &CsrGraph, config: &SeqLeidenConfig) -> BaselineResult {
    let n = graph.num_vertices();
    let mut top: Vec<VertexId> = (0..n as VertexId).collect();
    let m = graph.total_arc_weight() / 2.0;
    if n == 0 || m <= 0.0 {
        return BaselineResult {
            num_communities: n,
            membership: top,
            passes: 0,
        };
    }

    let mut rng = Xorshift32::new((config.seed as u32) ^ ((config.seed >> 32) as u32));
    let mut current: Option<CsrGraph> = None;
    let mut init_labels: Option<Vec<VertexId>> = None;
    let mut passes = 0;

    for _ in 0..config.max_passes {
        let g = current.as_ref().unwrap_or(graph);
        let n_cur = g.num_vertices();
        let weights: Vec<f64> = (0..n_cur as VertexId)
            .map(|u| g.weighted_degree(u))
            .collect();

        // ---- Local moving (queue-driven) ----
        let mut membership: Vec<VertexId> = match init_labels.take() {
            Some(labels) => labels,
            None => (0..n_cur as VertexId).collect(),
        };
        let mut sigma = vec![0.0f64; n_cur];
        for (v, &c) in membership.iter().enumerate() {
            sigma[c as usize] += weights[v];
        }
        let mut ht = CommunityMap::new(n_cur);
        let mut queue: VecDeque<VertexId> = (0..n_cur as VertexId).collect();
        let mut in_queue = vec![true; n_cur];
        let mut any_move = false;
        while let Some(i) = queue.pop_front() {
            in_queue[i as usize] = false;
            let current_c = membership[i as usize];
            ht.clear();
            for (j, w) in g.edges(i) {
                if j != i {
                    ht.add(membership[j as usize], w as f64);
                }
            }
            let k_i = weights[i as usize];
            let k_to_current = ht.weight(current_c);
            let mut best: Option<(VertexId, f64)> = None;
            for (d, k_to_d) in ht.iter() {
                if d == current_c {
                    continue;
                }
                let gain = delta_modularity(
                    k_to_d,
                    k_to_current,
                    k_i,
                    sigma[d as usize],
                    sigma[current_c as usize],
                    m,
                );
                if gain > 0.0
                    && best
                        .map(|(bd, bg)| gain > bg || (gain == bg && d < bd))
                        .unwrap_or(true)
                {
                    best = Some((d, gain));
                }
            }
            if let Some((target, _)) = best {
                sigma[current_c as usize] -= k_i;
                sigma[target as usize] += k_i;
                membership[i as usize] = target;
                any_move = true;
                for &j in g.neighbors(i) {
                    if !in_queue[j as usize] && membership[j as usize] != target {
                        in_queue[j as usize] = true;
                        queue.push_back(j);
                    }
                }
            }
        }

        // ---- Randomized constrained-merge refinement ----
        let bounds = membership.clone();
        let mut refined: Vec<VertexId> = (0..n_cur as VertexId).collect();
        let mut refined_sigma = weights.clone();
        let mut candidates: Vec<(VertexId, f64)> = Vec::new();
        let mut any_refine = false;
        for i in 0..n_cur as VertexId {
            let c = refined[i as usize];
            let k_i = weights[i as usize];
            if refined_sigma[c as usize] != k_i {
                continue; // not isolated
            }
            ht.clear();
            for (j, w) in g.edges(i) {
                if j != i && bounds[j as usize] == bounds[i as usize] {
                    ht.add(refined[j as usize], w as f64);
                }
            }
            candidates.clear();
            let k_to_current = ht.weight(c);
            for (d, k_to_d) in ht.iter() {
                if d == c {
                    continue;
                }
                let gain = delta_modularity(
                    k_to_d,
                    k_to_current,
                    k_i,
                    refined_sigma[d as usize],
                    refined_sigma[c as usize],
                    m,
                );
                if gain > 0.0 {
                    candidates.push((d, gain));
                }
            }
            if candidates.is_empty() {
                continue;
            }
            let total: f64 = candidates.iter().map(|&(_, g)| g).sum();
            let mut roll = rng.next_f64() * total;
            let mut target = candidates.last().unwrap().0;
            for &(d, g) in &candidates {
                roll -= g;
                if roll < 0.0 {
                    target = d;
                    break;
                }
            }
            refined_sigma[c as usize] -= k_i;
            refined_sigma[target as usize] += k_i;
            refined[i as usize] = target;
            any_refine = true;
        }

        // ---- Dendrogram + convergence ----
        let (dense, k) = gve_leiden::dendrogram::renumber(&refined);
        for c in top.iter_mut() {
            *c = dense[*c as usize];
        }
        passes += 1;
        if !any_move && !any_refine {
            break;
        }
        if k == n_cur {
            break;
        }

        // ---- Sequential aggregation + move-based labels ----
        current = Some(aggregate_sequential(g, &dense, k));
        let mut label_of = vec![VertexId::MAX; k];
        for v in 0..n_cur {
            label_of[dense[v] as usize] = bounds[v];
        }
        let (next_init, _) = gve_leiden::dendrogram::renumber(&label_of);
        init_labels = Some(next_init);
    }

    let (final_membership, num_communities) = gve_leiden::dendrogram::renumber(&top);
    BaselineResult {
        membership: final_membership,
        num_communities,
        passes,
    }
}

/// Sequentially collapses communities into super-vertices (same weight
/// conventions as the parallel aggregation).
pub(crate) fn aggregate_sequential(
    graph: &CsrGraph,
    membership: &[VertexId],
    num_communities: usize,
) -> CsrGraph {
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); num_communities];
    for (v, &c) in membership.iter().enumerate() {
        members[c as usize].push(v as VertexId);
    }
    let mut ht = CommunityMap::new(num_communities);
    let mut builder = GraphBuilder::new()
        .with_vertices(num_communities)
        .symmetrize(false)
        .dedup(false);
    for (c, group) in members.iter().enumerate() {
        ht.clear();
        for &i in group {
            for (j, w) in graph.edges(i) {
                ht.add(membership[j as usize], w as f64);
            }
        }
        for (d, w) in ht.iter() {
            builder.add_edge(c as VertexId, d, w as f32);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn finds_the_triangles() {
        let r = sequential_leiden(&two_triangles());
        assert_eq!(r.num_communities, 2);
        assert_eq!(r.membership[0], r.membership[2]);
        assert_ne!(r.membership[0], r.membership[3]);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gve_generate::rmat::Rmat::web(9, 4.0).seed(3).generate();
        let config = SeqLeidenConfig {
            seed: 7,
            ..Default::default()
        };
        let a = sequential_leiden_with(&g, &config);
        let b = sequential_leiden_with(&g, &config);
        assert_eq!(a.membership, b.membership);
    }

    #[test]
    fn communities_are_connected() {
        let g = gve_generate::rmat::Rmat::social(10, 5.0).seed(6).generate();
        let r = sequential_leiden(&g);
        let report = gve_quality::disconnected_communities(&g, &r.membership);
        assert!(report.all_connected(), "{report:?}");
    }

    #[test]
    fn recovers_planted_partition() {
        let planted = gve_generate::sbm::PlantedPartition::new(1000, 8, 12.0, 1.0)
            .seed(1)
            .generate();
        let r = sequential_leiden(&planted.graph);
        let nmi = gve_quality::normalized_mutual_information(&r.membership, &planted.labels);
        assert!(nmi > 0.85, "NMI {nmi}");
    }

    #[test]
    fn quality_matches_parallel_leiden() {
        let g = gve_generate::rmat::Rmat::web(10, 6.0).seed(2).generate();
        let q_seq = gve_quality::modularity(&g, &sequential_leiden(&g).membership);
        let q_par = gve_quality::modularity(&g, &gve_leiden::leiden(&g).membership);
        assert!(
            (q_seq - q_par).abs() < 0.05,
            "seq {q_seq} vs parallel {q_par}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(sequential_leiden(&CsrGraph::empty(0)).passes, 0);
        let r = sequential_leiden(&CsrGraph::empty(3));
        assert_eq!(r.membership, vec![0, 1, 2]);
    }
}
