//! Property-based invariants of the baseline implementations: whatever
//! the input, both must return valid partitions with bounded quality and
//! (being Leiden variants) no internally-disconnected communities.

use gve_baselines::{nk::nk_leiden, seq::sequential_leiden};
use gve_graph::{CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2u32..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1u32..4), 0..250).prop_map(move |edges| {
            let typed: Vec<(u32, u32, f32)> = edges
                .into_iter()
                .map(|(u, v, w)| (u, v, w as f32))
                .collect();
            GraphBuilder::from_edges(n as usize, &typed)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sequential_leiden_invariants(graph in arb_graph()) {
        let result = sequential_leiden(&graph);
        gve_quality::validate_membership(&result.membership, graph.num_vertices()).unwrap();
        let q = gve_quality::modularity(&graph, &result.membership);
        prop_assert!((-0.5..=1.0 + 1e-9).contains(&q));
        let report = gve_quality::disconnected_communities(&graph, &result.membership);
        prop_assert_eq!(report.disconnected, 0);
        // Deterministic.
        prop_assert_eq!(sequential_leiden(&graph).membership, result.membership);
    }

    #[test]
    fn nk_leiden_invariants(graph in arb_graph()) {
        let result = nk_leiden(&graph);
        gve_quality::validate_membership(&result.membership, graph.num_vertices()).unwrap();
        let q = gve_quality::modularity(&graph, &result.membership);
        prop_assert!((-0.5..=1.0 + 1e-9).contains(&q));
        let report = gve_quality::disconnected_communities(&graph, &result.membership);
        prop_assert_eq!(report.disconnected, 0);
    }

    /// Both baselines never lose to the singleton partition.
    #[test]
    fn baselines_beat_singletons(graph in arb_graph()) {
        let singletons: Vec<u32> = (0..graph.num_vertices() as u32).collect();
        let q0 = gve_quality::modularity(&graph, &singletons);
        let q_seq = gve_quality::modularity(&graph, &sequential_leiden(&graph).membership);
        let q_nk = gve_quality::modularity(&graph, &nk_leiden(&graph).membership);
        prop_assert!(q_seq >= q0 - 1e-9, "seq {} < singleton {}", q_seq, q0);
        prop_assert!(q_nk >= q0 - 0.02, "nk {} < singleton {}", q_nk, q0);
    }
}
