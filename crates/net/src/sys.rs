//! Raw OS readiness primitives, declared directly against the platform
//! C library.
//!
//! The workspace is deliberately dependency-free (every third-party
//! crate resolves to an offline shim), so there is no `libc` crate to
//! lean on. `std` already links the system C library into every binary;
//! these `extern "C"` declarations only *name* symbols that linkage
//! already provides: `epoll_*` on Linux, plus the portable `poll`,
//! `pipe`, and `fcntl` used by the fallback backend and the reactor's
//! self-pipe waker.
//!
//! Everything here is `cfg(unix)`; the event-loop tier reports itself
//! unavailable elsewhere and callers fall back to the threaded server.

#![cfg(unix)]

use std::fs::File;
use std::io;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_ulong};

/// Linux `epoll(7)` ABI. Constants mirror `<sys/epoll.h>`.
#[cfg(target_os = "linux")]
pub mod epoll {
    use super::{c_int, RawFd};

    /// One readiness record, kernel layout. x86-64 packs the struct
    /// (kernel ABI quirk); other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        /// Readiness bit set (`EPOLLIN` | ...).
        pub events: u32,
        /// User data echoed back verbatim — we store the connection token.
        pub data: u64,
    }

    /// Readable.
    pub const EPOLLIN: u32 = 0x001;
    /// Writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// Error condition.
    pub const EPOLLERR: u32 = 0x008;
    /// Hangup.
    pub const EPOLLHUP: u32 = 0x010;
    /// Peer shut down the write half.
    pub const EPOLLRDHUP: u32 = 0x2000;
    /// `epoll_ctl` op: register.
    pub const EPOLL_CTL_ADD: c_int = 1;
    /// `epoll_ctl` op: deregister.
    pub const EPOLL_CTL_DEL: c_int = 2;
    /// `epoll_ctl` op: change interest.
    pub const EPOLL_CTL_MOD: c_int = 3;
    /// Close the epoll fd on exec.
    pub const EPOLL_CLOEXEC: c_int = 0x80000;

    extern "C" {
        /// Creates an epoll instance; returns its fd or -1.
        pub fn epoll_create1(flags: c_int) -> c_int;
        /// Adds/modifies/removes `fd` on the instance `epfd`.
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: RawFd, event: *mut EpollEvent) -> c_int;
        /// Blocks up to `timeout` ms for readiness; returns event count.
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

/// One `poll(2)` registration, C layout (`struct pollfd`).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` | `POLLOUT`).
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

/// Readable (poll flavor).
pub const POLLIN: i16 = 0x001;
/// Writable (poll flavor).
pub const POLLOUT: i16 = 0x004;
/// Error (returned only).
pub const POLLERR: i16 = 0x008;
/// Hangup (returned only).
pub const POLLHUP: i16 = 0x010;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0x800;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x4;

extern "C" {
    /// Portable readiness multiplexer; `nfds_t` is `unsigned long` on
    /// every platform this workspace targets.
    pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: RawFd, cmd: c_int, arg: c_int) -> c_int;
}

/// Puts `fd` into nonblocking mode via `fcntl(F_SETFL, O_NONBLOCK)`.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: F_GETFL reads the descriptor's status flags; `fd` is a
    // live descriptor owned by the caller and no memory is passed.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: F_SETFL only updates status flags on a descriptor the
    // caller owns; the argument is a plain integer.
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Creates a nonblocking self-pipe `(read_end, write_end)`.
///
/// The reactor parks in `epoll_wait`/`poll` on the read end; any thread
/// can wake it by writing one byte to the write end. Both ends are
/// wrapped in [`File`] so they close on drop and expose `Read`/`Write`
/// without further unsafe code.
pub fn pipe_pair() -> io::Result<(File, File)> {
    let mut fds: [c_int; 2] = [-1, -1];
    // SAFETY: `pipe` writes exactly two descriptors into the array we
    // hand it; the array outlives the call.
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: the kernel just handed us exclusive ownership of both
    // descriptors; wrapping them in OwnedFd transfers that ownership
    // (each fd is wrapped exactly once, so no double close).
    let read_fd = unsafe { OwnedFd::from_raw_fd(fds[0]) };
    // SAFETY: as above, for the write end.
    let write_fd = unsafe { OwnedFd::from_raw_fd(fds[1]) };
    set_nonblocking(fds[0])?;
    set_nonblocking(fds[1])?;
    Ok((File::from(read_fd), File::from(write_fd)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn pipe_pair_wakes_and_drains() {
        let (mut rx, mut tx) = pipe_pair().unwrap();
        // Nonblocking empty read reports WouldBlock, not EOF.
        let mut byte = [0u8; 8];
        let err = rx.read(&mut byte).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        tx.write_all(&[1]).unwrap();
        assert_eq!(rx.read(&mut byte).unwrap(), 1);
    }

    #[test]
    fn poll_sees_pipe_readable() {
        use std::os::fd::AsRawFd;
        let (rx, mut tx) = pipe_pair().unwrap();
        tx.write_all(&[7]).unwrap();
        let mut fds = [PollFd {
            fd: rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        // SAFETY: `fds` is a live array of one initialized PollFd and
        // nfds matches its length.
        let n = unsafe { poll(fds.as_mut_ptr(), 1, 1000) };
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }
}
