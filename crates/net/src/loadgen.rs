//! Closed-loop HTTP load generator.
//!
//! Spawns `clients` threads, each issuing `requests_per_client`
//! requests back-to-back (closed loop: the next request starts when the
//! previous response lands), and reports throughput plus latency
//! percentiles. Shared by `crates/bench/src/bin/serve_load.rs` and the
//! `gve loadgen` CLI subcommand.
//!
//! Two connection modes:
//! * `keep_alive = true` — one persistent connection per client
//!   (measures the event-loop tier's keep-alive path);
//! * `keep_alive = false` — a fresh connection per request (the only
//!   mode the `Connection: close` thread-per-connection baseline
//!   supports).

use crate::http::{client_request, ClientConn};
use std::time::Instant;

/// One request shape; clients cycle through the list round-robin.
#[derive(Debug, Clone)]
pub struct Target {
    /// HTTP method.
    pub method: String,
    /// Path and query, e.g. `/graphs/g/membership`.
    pub path: String,
    /// Optional body.
    pub body: Option<String>,
}

impl Target {
    /// A GET target.
    pub fn get(path: impl Into<String>) -> Target {
        Target {
            method: "GET".into(),
            path: path.into(),
            body: None,
        }
    }

    /// A POST target with a body.
    pub fn post(path: impl Into<String>, body: impl Into<String>) -> Target {
        Target {
            method: "POST".into(),
            path: path.into(),
            body: Some(body.into()),
        }
    }
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server address, e.g. `127.0.0.1:8080`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Request shapes, cycled per request.
    pub targets: Vec<Target>,
    /// Persistent connections (see module docs).
    pub keep_alive: bool,
}

/// Aggregated result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent clients that ran.
    pub clients: usize,
    /// Successfully answered requests (any HTTP status).
    pub completed: u64,
    /// Requests that failed at the transport level.
    pub failed: u64,
    /// Responses with status >= 500.
    pub server_errors: u64,
    /// Wall time of the whole run, seconds.
    pub elapsed_seconds: f64,
    /// completed / elapsed.
    pub requests_per_second: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean request latency, milliseconds.
    pub mean_ms: f64,
    /// Slowest request, milliseconds.
    pub max_ms: f64,
}

impl LoadReport {
    /// Renders the report as a JSON object (matches the
    /// `BENCH_serve.json` per-run schema).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clients\":{},\"completed\":{},\"failed\":{},\"server_errors\":{},\
             \"elapsed_seconds\":{:.6},\"requests_per_second\":{:.1},\
             \"p50_ms\":{:.3},\"p99_ms\":{:.3},\"mean_ms\":{:.3},\"max_ms\":{:.3}}}",
            self.clients,
            self.completed,
            self.failed,
            self.server_errors,
            self.elapsed_seconds,
            self.requests_per_second,
            self.p50_ms,
            self.p99_ms,
            self.mean_ms,
            self.max_ms,
        )
    }
}

/// Nearest-rank percentile over an already **sorted** slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-client worker outcome.
struct ClientOutcome {
    latencies_ms: Vec<f64>,
    failed: u64,
    server_errors: u64,
}

fn run_client(spec: &LoadSpec, client_index: usize) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        latencies_ms: Vec::with_capacity(spec.requests_per_client),
        failed: 0,
        server_errors: 0,
    };
    let mut conn: Option<ClientConn> = None;
    for i in 0..spec.requests_per_client {
        let target = &spec.targets[(client_index + i) % spec.targets.len()];
        let t0 = Instant::now();
        let result = if spec.keep_alive {
            // Lazily (re)connect; one transport error costs one request
            // and a reconnect, not the whole client.
            if conn.is_none() {
                conn = ClientConn::connect(&spec.addr).ok();
            }
            match conn.as_mut() {
                Some(c) => {
                    let r = c.request(&target.method, &target.path, target.body.as_deref());
                    if r.is_err() {
                        conn = None;
                    }
                    r
                }
                None => Err(std::io::Error::other("connect failed")),
            }
        } else {
            client_request(
                &spec.addr,
                &target.method,
                &target.path,
                target.body.as_deref(),
            )
        };
        match result {
            Ok((status, _body)) => {
                outcome.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                if status >= 500 {
                    outcome.server_errors += 1;
                }
            }
            Err(_) => outcome.failed += 1,
        }
    }
    outcome
}

/// Runs the closed-loop load and aggregates the report.
pub fn run_load(spec: &LoadSpec) -> LoadReport {
    let t0 = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..spec.clients)
            .map(|c| scope.spawn(move || run_client(spec, c)))
            .collect();
        joins
            .into_iter()
            .map(|j| {
                j.join().unwrap_or(ClientOutcome {
                    latencies_ms: Vec::new(),
                    failed: spec.requests_per_client as u64,
                    server_errors: 0,
                })
            })
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let mut failed = 0u64;
    let mut server_errors = 0u64;
    for outcome in outcomes {
        latencies.extend(outcome.latencies_ms);
        failed += outcome.failed;
        server_errors += outcome.server_errors;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let completed = latencies.len() as u64;
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    LoadReport {
        clients: spec.clients,
        completed,
        failed,
        server_errors,
        elapsed_seconds: elapsed,
        requests_per_second: if elapsed > 0.0 {
            completed as f64 / elapsed
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        mean_ms: mean,
        max_ms: latencies.last().copied().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{EventLoopServer, NetOptions};
    use crate::Response;

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn load_run_against_live_server_counts_every_request() {
        let server = EventLoopServer::start(
            "127.0.0.1:0",
            NetOptions {
                handler_threads: 2,
                ..NetOptions::default()
            },
            |_req| Response::json(200, "{\"ok\":true}"),
        )
        .unwrap();
        let report = run_load(&LoadSpec {
            addr: format!("127.0.0.1:{}", server.port()),
            clients: 4,
            requests_per_client: 25,
            targets: vec![Target::get("/ping")],
            keep_alive: true,
        });
        assert_eq!(report.completed, 100, "failed={}", report.failed);
        assert_eq!(report.failed, 0);
        assert_eq!(report.server_errors, 0);
        assert!(report.requests_per_second > 0.0);
        assert!(report.p50_ms <= report.p99_ms);
        assert!(report.p99_ms <= report.max_ms + 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"clients\":4"), "{json}");
        server.stop();
    }
}
