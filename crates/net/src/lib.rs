//! gve-net: zero-dependency nonblocking serving tier.
//!
//! Layers, bottom up:
//!
//! 1. [`sys`] — raw `extern "C"` declarations against the platform C
//!    library (epoll on Linux, portable `poll`/`pipe`/`fcntl`). No
//!    third-party crates: the workspace is offline by construction.
//! 2. [`poller`] — a level-triggered readiness [`poller::Poller`] with
//!    an epoll backend and a `poll(2)` fallback, both token-addressed.
//! 3. [`http`] — HTTP/1.1 wire types and the incremental
//!    [`http::RequestBuffer`] parser shared by the blocking and
//!    nonblocking front ends.
//! 4. [`server`] — the [`server::EventLoopServer`] reactor: one event
//!    loop thread driving accept/read/write state machines for
//!    keep-alive connections, a handler worker pool, per-connection
//!    deadlines (slowloris guard), and bounded-drain shutdown.
//! 5. [`loadgen`] — a closed-loop load generator used by the serve
//!    benchmark and the `gve loadgen` subcommand.
//!
//! The crate is `cfg(unix)` for the reactor pieces; the HTTP wire layer
//! is portable.

pub mod http;
pub mod loadgen;
#[cfg(unix)]
pub mod poller;
#[cfg(unix)]
pub mod server;
#[cfg(unix)]
pub mod sys;

pub use http::{
    client_request, parse_query, percent_decode, read_request, ClientConn, HttpError, HttpLimits,
    Request, RequestBuffer, Response, MAX_BODY_BYTES, MAX_HEADER_BYTES,
};
pub use loadgen::{run_load, LoadReport, LoadSpec, Target};
#[cfg(unix)]
pub use server::{EventLoopServer, Handler, InlinePredicate, NetOptions};

/// True when the event-loop tier is available on this platform.
pub const EVENT_LOOP_AVAILABLE: bool = cfg!(unix);
