//! HTTP/1.1 wire types and parsing, shared by every serving front end.
//!
//! Two consumption styles over one grammar:
//!
//! * [`RequestBuffer`] — an **incremental** parser for the nonblocking
//!   reactor: feed it bytes as they arrive, get complete requests out.
//!   Pipelined requests queue up naturally; header-size and body-size
//!   caps are enforced as bytes accumulate (slowloris can't buffer-bloat).
//! * [`read_request`] — a **blocking** wrapper around the same parser
//!   for the thread-per-connection baseline, with an overall header
//!   deadline so a stalled client gets a 408 instead of pinning its
//!   worker thread forever.
//!
//! Responses serialize with either `Connection: close` (baseline) or
//! `Connection: keep-alive` (reactor). The [`ClientConn`] keep-alive
//! client feeds the load generator and tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Upper bound on accepted request bodies (64 MiB) — a registry POST
/// carrying an explicit edge list is the largest legitimate payload.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Upper bound on the request head (request line + headers). 64 KiB is
/// far above anything the service's own clients send; the cap exists so
/// a drip-feeding client cannot grow a connection buffer without bound.
pub const MAX_HEADER_BYTES: usize = 64 << 10;

/// Size caps applied while parsing a request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Max bytes of request line + headers before 431.
    pub max_header_bytes: usize,
    /// Max declared body bytes before 413.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            max_header_bytes: MAX_HEADER_BYTES,
            max_body_bytes: MAX_BODY_BYTES,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string, e.g. `/graphs/web-1`.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lower-cased header names and their values.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Whether the client wants the connection kept open afterwards
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path split into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Body interpreted as UTF-8.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad_request("body is not UTF-8"))
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Content type; the service always answers JSON.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, and body into one buffer. The
    /// reactor writes this buffer out as the socket drains.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        let mut out = Vec::with_capacity(head.len() + self.body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response with `Connection: close` (baseline path).
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        stream.write_all(&self.serialize(false))?;
        stream.flush()
    }
}

/// Error while reading or parsing a request.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// Status code the error maps to. Status 0 marks a clean client
    /// disconnect: nothing to answer, just close.
    pub status: u16,
    /// Description sent back to the client.
    pub message: String,
}

impl HttpError {
    /// 400 with a message.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// 408: the client stalled past the read deadline.
    pub fn timeout() -> Self {
        Self {
            status: 408,
            message: "timed out reading request".into(),
        }
    }

    /// Client closed the connection before sending a request; callers
    /// drop the connection without writing anything.
    pub fn closed() -> Self {
        Self {
            status: 0,
            message: "client closed connection".into(),
        }
    }

    /// True for the clean-disconnect marker.
    pub fn is_closed(&self) -> bool {
        self.status == 0
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http {}: {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Decodes `%xx` escapes and `+` spaces.
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok());
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw query string into decoded key/value pairs.
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Parses the request head (everything before the blank line) into a
/// [`Request`] with an empty body, returning the declared body length.
fn parse_head(head: &str) -> Result<(Request, usize), HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = match lines.next() {
        Some(line) if !line.trim().is_empty() => line,
        _ => return Err(HttpError::bad_request("empty request line")),
    };
    let mut parts = request_line.split_whitespace();
    let method = match parts.next() {
        Some(m) => m.to_ascii_uppercase(),
        None => return Err(HttpError::bad_request("empty request line")),
    };
    let target = match parts.next() {
        Some(t) => t,
        None => return Err(HttpError::bad_request("missing request target")),
    };
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(format!(
            "unsupported version {version}"
        )));
    }
    let http11 = version != "HTTP/1.0";

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11; // 1.1 defaults to keep-alive
    for line in lines {
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "transfer-encoding" {
                // This parser only frames bodies by Content-Length.
                // Silently ignoring Transfer-Encoding would leave the
                // chunk framing in the buffer to be parsed as the next
                // pipelined request — a request-desync/smuggling
                // primitive behind a proxy. Refuse outright.
                return Err(HttpError {
                    status: 501,
                    message: "Transfer-Encoding is not supported".into(),
                });
            }
            if name == "content-length" {
                let parsed: usize = value
                    .parse()
                    .map_err(|_| HttpError::bad_request("bad Content-Length"))?;
                // Duplicate Content-Length headers with differing
                // values are the other classic desync vector; last-wins
                // silently picks a framing the peer may not share.
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Err(HttpError::bad_request("conflicting Content-Length headers"));
                }
                content_length = Some(parsed);
            }
            if name == "connection" {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            headers.push((name, value));
        }
    }

    Ok((
        Request {
            method,
            path: percent_decode(path_raw),
            query: parse_query(query_raw),
            headers,
            body: Vec::new(),
            keep_alive,
        },
        content_length.unwrap_or(0),
    ))
}

/// Incremental request parser: an accumulation buffer plus a cursor so
/// repeated scans for the head terminator stay linear under drip feeds.
#[derive(Debug, Default)]
pub struct RequestBuffer {
    buf: Vec<u8>,
    /// Bytes already scanned for `\r\n\r\n` without finding it.
    scanned: usize,
}

impl RequestBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when bytes are buffered but no complete request has been
    /// extracted yet — the signal that a header-read deadline applies.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Tries to extract one complete request. `Ok(None)` means more
    /// bytes are needed; errors are terminal for the connection.
    pub fn try_next(&mut self, limits: &HttpLimits) -> Result<Option<Request>, HttpError> {
        // Find the head terminator, resuming where the last scan ended.
        let start = self.scanned.saturating_sub(3);
        let head_end = self.buf[start..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|p| start + p);
        let Some(head_end) = head_end else {
            self.scanned = self.buf.len();
            if self.buf.len() > limits.max_header_bytes {
                return Err(HttpError {
                    status: 431,
                    message: format!("request head exceeds {} bytes", limits.max_header_bytes),
                });
            }
            return Ok(None);
        };
        if head_end > limits.max_header_bytes {
            return Err(HttpError {
                status: 431,
                message: format!("request head exceeds {} bytes", limits.max_header_bytes),
            });
        }
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let (mut request, content_length) = parse_head(&head)?;
        if content_length > limits.max_body_bytes {
            return Err(HttpError {
                status: 413,
                message: "body too large".into(),
            });
        }
        let body_start = head_end + 4;
        if self.buf.len() < body_start + content_length {
            return Ok(None); // waiting on body bytes
        }
        request.body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        self.scanned = 0;
        Ok(Some(request))
    }
}

/// Reads one request from a blocking stream, giving the client at most
/// `deadline` from now to deliver the complete request. A stall maps to
/// 408; a clean close before any byte maps to [`HttpError::closed`].
pub fn read_request(
    stream: &mut TcpStream,
    limits: &HttpLimits,
    deadline: Duration,
) -> Result<Request, HttpError> {
    let until = Instant::now() + deadline;
    let mut parser = RequestBuffer::new();
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(request) = parser.try_next(limits)? {
            return Ok(request);
        }
        let remaining = until.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(HttpError::timeout());
        }
        if stream.set_read_timeout(Some(remaining)).is_err() {
            return Err(HttpError::closed());
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if parser.is_empty() {
                    HttpError::closed()
                } else {
                    HttpError::bad_request("connection closed mid-request")
                });
            }
            Ok(n) => parser.extend(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::timeout());
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(HttpError::bad_request(format!("cannot read request: {e}")));
            }
        }
    }
}

/// Minimal blocking HTTP client: sends one request on a fresh
/// connection, reads the full response. Shared by `gve client` and the
/// integration tests.
pub fn client_request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> Result<(u16, String), std::io::Error> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body_bytes = body.map(str::as_bytes).unwrap_or(&[]);
    write!(
        stream,
        "{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body_bytes.len()
    )?;
    stream.write_all(body_bytes)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    read_response(&mut reader, true)
}

/// Reads one `status, body` response pair from a buffered stream.
/// `to_end` additionally drains length-less bodies until EOF (only
/// valid on `Connection: close` streams).
fn read_response(
    reader: &mut BufReader<TcpStream>,
    to_end: bool,
) -> Result<(u16, String), std::io::Error> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if status_line.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line {status_line:?}")))?;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader.read_exact(&mut body)?;
        }
        None if to_end => {
            reader.read_to_end(&mut body)?;
        }
        None => {}
    }
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// A persistent keep-alive HTTP/1.1 client connection. The load
/// generator keeps one per simulated client so request throughput
/// measures the server, not TCP handshakes.
pub struct ClientConn {
    reader: BufReader<TcpStream>,
    addr: String,
}

impl ClientConn {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs + ToString) -> Result<ClientConn, std::io::Error> {
        let stream = TcpStream::connect(&addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(ClientConn {
            reader: BufReader::new(stream),
            addr: addr.to_string(),
        })
    }

    /// Sends one request on the persistent connection and reads the
    /// response. The connection stays open for the next call.
    pub fn request(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), std::io::Error> {
        let body_bytes = body.map(str::as_bytes).unwrap_or(&[]);
        let addr = &self.addr;
        let stream = self.reader.get_mut();
        write!(
            stream,
            "{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body_bytes.len()
        )?;
        stream.write_all(body_bytes)?;
        stream.flush()?;
        read_response(&mut self.reader, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(parser: &mut RequestBuffer, bytes: &[u8]) -> Option<Request> {
        parser.extend(bytes);
        parser.try_next(&HttpLimits::default()).unwrap()
    }

    #[test]
    fn incremental_parse_across_fragments() {
        let mut parser = RequestBuffer::new();
        assert!(feed(&mut parser, b"POST /echo%20path?x=1+2 HT").is_none());
        assert!(feed(&mut parser, b"TP/1.1\r\nContent-Length: 5\r\n").is_none());
        assert!(feed(&mut parser, b"\r\nhel").is_none());
        let request = feed(&mut parser, b"lo").expect("complete request");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/echo path");
        assert_eq!(request.query_param("x"), Some("1 2"));
        assert_eq!(request.body, b"hello");
        assert!(request.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(parser.is_empty());
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut parser = RequestBuffer::new();
        parser.extend(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
        let limits = HttpLimits::default();
        let a = parser.try_next(&limits).unwrap().expect("first");
        let b = parser.try_next(&limits).unwrap().expect("second");
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(a.keep_alive);
        assert!(!b.keep_alive, "Connection: close honored");
        assert!(parser.try_next(&limits).unwrap().is_none());
    }

    #[test]
    fn header_cap_truncates_slowloris() {
        let mut parser = RequestBuffer::new();
        let limits = HttpLimits {
            max_header_bytes: 128,
            max_body_bytes: 1024,
        };
        parser.extend(b"GET / HTTP/1.1\r\n");
        for _ in 0..40 {
            parser.extend(b"X-Pad: aaaaaaaa\r\n");
            match parser.try_next(&limits) {
                Ok(None) => continue,
                Err(e) => {
                    assert_eq!(e.status, 431);
                    return;
                }
                Ok(Some(_)) => panic!("incomplete head parsed"),
            }
        }
        panic!("header cap never tripped");
    }

    #[test]
    fn oversized_body_is_413_and_http10_defaults_to_close() {
        let mut parser = RequestBuffer::new();
        let limits = HttpLimits {
            max_header_bytes: 1024,
            max_body_bytes: 10,
        };
        parser.extend(b"POST /x HTTP/1.1\r\nContent-Length: 11\r\n\r\n");
        assert_eq!(parser.try_next(&limits).unwrap_err().status, 413);

        let mut parser = RequestBuffer::new();
        parser.extend(b"GET / HTTP/1.0\r\n\r\n");
        let request = parser
            .try_next(&HttpLimits::default())
            .unwrap()
            .expect("complete");
        assert!(!request.keep_alive, "HTTP/1.0 defaults to close");
    }

    /// Desync guards: a chunked request must be refused (501), not
    /// parsed body-less with its chunk framing left in the buffer as a
    /// phantom pipelined request; conflicting duplicate Content-Length
    /// headers must be refused (400) rather than resolved last-wins.
    #[test]
    fn transfer_encoding_and_conflicting_lengths_are_rejected() {
        let limits = HttpLimits::default();
        let mut parser = RequestBuffer::new();
        parser.extend(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              5\r\nhello\r\n0\r\n\r\n",
        );
        assert_eq!(parser.try_next(&limits).unwrap_err().status, 501);

        let mut parser = RequestBuffer::new();
        parser.extend(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 0\r\n\r\nhello");
        assert_eq!(parser.try_next(&limits).unwrap_err().status, 400);

        // Repeated but agreeing Content-Length headers stay accepted.
        let mut parser = RequestBuffer::new();
        parser.extend(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello");
        let request = parser.try_next(&limits).unwrap().expect("complete");
        assert_eq!(request.body, b"hello");
    }

    #[test]
    fn serialize_marks_connection_mode() {
        let response = Response::json(200, "{}");
        let keep = String::from_utf8(response.serialize(true)).unwrap();
        let close = String::from_utf8(response.serialize(false)).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"), "{keep}");
        assert!(close.contains("Connection: close\r\n"), "{close}");
        assert!(keep.contains("Content-Length: 2\r\n"));
    }

    #[test]
    fn reasons_cover_timeout_and_header_cap() {
        assert!(
            String::from_utf8(Response::json(408, "{}").serialize(false))
                .unwrap()
                .starts_with("HTTP/1.1 408 Request Timeout")
        );
        assert!(
            String::from_utf8(Response::json(431, "{}").serialize(false))
                .unwrap()
                .starts_with("HTTP/1.1 431 Request Header Fields Too Large")
        );
    }
}
