//! Nonblocking event-loop HTTP server.
//!
//! One **reactor thread** owns the listener, a self-pipe waker, and
//! every connection's read/write state machine, multiplexed through the
//! [`Poller`](crate::poller::Poller) (epoll on Linux, `poll(2)`
//! fallback). Complete requests are handed to a small pool of **handler
//! workers** over an in-process queue; while a request is in flight its
//! connection is *parked* (interest [`Interest::NONE`]) so the reactor
//! spends no cycles on it. Workers push finished responses onto a
//! completion list and wake the reactor through the pipe; the reactor
//! serializes the response and drives the write, keeping the connection
//! open for HTTP/1.1 keep-alive reuse.
//!
//! Connection lifecycle:
//!
//! ```text
//!   accept ──▶ Reading ──complete request──▶ Dispatched (parked)
//!                ▲                                │ handler finishes
//!                │ keep-alive                     ▼
//!                └────────────────────────── Writing ──close──▶ drop
//! ```
//!
//! Timeouts are deadlines on the connection, enforced by bounding the
//! poll wait: a connection with a *partial* request head gets
//! `header_timeout` (slowloris guard → 408 + counter), an *idle*
//! keep-alive connection gets `idle_timeout` (silent close), and a
//! stalled response write gets `header_timeout` as a write-stall guard.
//!
//! Shutdown ([`EventLoopServer::stop`]) is a **bounded drain**: stop
//! accepting, close idle/reading connections immediately, let
//! dispatched and writing connections finish for at most
//! `drain_timeout`, then drop whatever remains.

#![cfg(unix)]

use crate::http::{HttpError, HttpLimits, Request, RequestBuffer, Response};
use crate::poller::{Event, Interest, Poller};
use crate::sys;
use gve_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Token of the self-pipe waker registration.
const TOKEN_WAKER: u64 = 0;
/// Token of the listening socket registration.
const TOKEN_LISTENER: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Buckets for the reactor loop-latency histogram: a healthy loop
/// iteration is microseconds, a pathological one milliseconds.
const LOOP_BUCKETS: &[f64] = &[
    0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5,
];

/// Locks a mutex, recovering the data from a poisoned lock. Every
/// structure behind these mutexes stays consistent across panics
/// (queues and lists are push/pop only), so continuing is safe and
/// keeps the reactor alive when a handler worker dies mid-push.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Minimal JSON string escaping for error bodies built inside the
/// reactor (gve-net has no JSON dependency by design).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Error → `{"error": "..."}` response.
fn error_response(error: &HttpError) -> Response {
    Response::json(
        error.status,
        format!("{{\"error\":\"{}\"}}", json_escape(&error.message)),
    )
}

/// Shared request handler type.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// Predicate marking requests cheap enough to run *inline on the
/// reactor thread*, skipping the worker-pool round trip entirely.
pub type InlinePredicate = Arc<dyn Fn(&Request) -> bool + Send + Sync>;

/// Tuning knobs for [`EventLoopServer::start`].
pub struct NetOptions {
    /// Cap on concurrently open connections; further accepts are
    /// answered 503 and closed.
    pub max_connections: usize,
    /// Handler worker threads (0 = one per available core, capped at 8).
    pub handler_threads: usize,
    /// Request parsing size caps.
    pub limits: HttpLimits,
    /// Max time a client may take to deliver a complete request head
    /// once it has started sending (slowloris guard → 408). Also bounds
    /// a stalled response write.
    pub header_timeout: Duration,
    /// Max time an idle keep-alive connection is kept open.
    pub idle_timeout: Duration,
    /// Max time `stop` waits for dispatched/writing connections.
    pub drain_timeout: Duration,
    /// Force the portable `poll(2)` backend even where epoll exists.
    pub force_portable_poll: bool,
    /// Requests this predicate accepts run **inline on the reactor
    /// thread** instead of round-tripping through the worker pool —
    /// two context switches and a waker write cheaper per request.
    /// Only route requests here whose handlers are strictly
    /// non-blocking and microsecond-scale; one slow inline handler
    /// stalls every connection. `None` sends everything to workers.
    pub inline: Option<InlinePredicate>,
    /// Registry to export `gve_net_*`/`gve_http_*` metrics into.
    pub metrics: Option<MetricsRegistry>,
}

impl Default for NetOptions {
    fn default() -> Self {
        Self {
            max_connections: 1024,
            handler_threads: 0,
            limits: HttpLimits::default(),
            header_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(5),
            force_portable_poll: false,
            inline: None,
            metrics: None,
        }
    }
}

/// Event-loop metric handles (cheap clones; always allocated so the hot
/// path never branches on "metrics enabled").
#[derive(Clone, Default)]
struct NetMetrics {
    accepted: Counter,
    requests: Counter,
    inline_served: Counter,
    keepalive_reuses: Counter,
    timeouts: Counter,
    rejected: Counter,
    wakeups: Counter,
    loop_seconds: Histogram,
    open_connections: Gauge,
    handler_queue_depth: Gauge,
}

impl NetMetrics {
    fn new() -> NetMetrics {
        NetMetrics {
            loop_seconds: Histogram::with_buckets(LOOP_BUCKETS),
            ..NetMetrics::default()
        }
    }

    fn attach(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "gve_net_accepted_total",
            "Connections accepted by the event-loop reactor.",
            &[],
            &self.accepted,
        );
        registry.register_counter(
            "gve_net_requests_total",
            "HTTP requests parsed and dispatched by the reactor.",
            &[],
            &self.requests,
        );
        registry.register_counter(
            "gve_net_inline_total",
            "Requests served inline on the reactor thread (fast path).",
            &[],
            &self.inline_served,
        );
        registry.register_counter(
            "gve_net_keepalive_reuses_total",
            "Requests served on an already-used keep-alive connection.",
            &[],
            &self.keepalive_reuses,
        );
        registry.register_counter(
            "gve_http_timeouts_total",
            "Connections closed for exceeding a read/write deadline.",
            &[],
            &self.timeouts,
        );
        registry.register_counter(
            "gve_net_rejected_connections_total",
            "Connections answered 503 because the connection cap was reached.",
            &[],
            &self.rejected,
        );
        registry.register_counter(
            "gve_net_wakeups_total",
            "Reactor loop iterations (poll returns).",
            &[],
            &self.wakeups,
        );
        // Compatibility families: the thread-per-connection front end
        // exported these names, and the observability contract
        // (dashboards, metrics smoke tests) keys on them. Same handles
        // as the gve_net_* counters above.
        registry.register_counter(
            "gve_http_connections_total",
            "Connections accepted (alias of gve_net_accepted_total).",
            &[],
            &self.accepted,
        );
        registry.register_counter(
            "gve_http_rejected_connections_total",
            "Connections answered 503 at the cap (alias of gve_net_rejected_connections_total).",
            &[],
            &self.rejected,
        );
        registry.register_histogram(
            "gve_net_loop_seconds",
            "Time spent processing events per reactor loop iteration (excludes the poll wait).",
            &[],
            &self.loop_seconds,
        );
        registry.register_gauge(
            "gve_net_open_connections",
            "Currently open connections owned by the reactor.",
            &[],
            &self.open_connections,
        );
        registry.register_gauge(
            "gve_net_handler_queue_depth",
            "Requests waiting for a handler worker.",
            &[],
            &self.handler_queue_depth,
        );
    }
}

/// One finished handler invocation, headed back to the reactor.
struct Completion {
    token: u64,
    response: Response,
    keep_alive: bool,
}

/// Blocking work queue feeding the handler workers.
struct TaskQueue {
    state: Mutex<(VecDeque<(u64, Request)>, bool)>,
    ready: Condvar,
}

impl TaskQueue {
    fn new() -> TaskQueue {
        TaskQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, token: u64, request: Request) {
        let mut state = lock_clean(&self.state);
        state.0.push_back((token, request));
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<(u64, Request)> {
        let mut state = lock_clean(&self.state);
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = match self.ready.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Stops accepting the queue as a blocking source: workers drain
    /// what is queued, then exit.
    fn close(&self) {
        lock_clean(&self.state).1 = true;
        self.ready.notify_all();
    }
}

/// State shared between the reactor, the workers, and the user-facing
/// handle.
struct Shared {
    queue: TaskQueue,
    completions: Mutex<Vec<Completion>>,
    waker_tx: Mutex<File>,
    stopping: AtomicBool,
    metrics: NetMetrics,
}

impl Shared {
    /// Wakes the reactor out of its poll wait. A full pipe means a wake
    /// is already pending, so the error is ignorable by construction.
    fn wake(&self) {
        let _ = lock_clean(&self.waker_tx).write(&[1]);
    }
}

/// Per-connection state machine position.
enum ConnState {
    /// Waiting for (more of) a request.
    Reading,
    /// A request is with a handler worker; the fd is parked.
    Dispatched,
    /// A serialized response is draining into the socket.
    Writing { close_after: bool },
}

/// One accepted connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    parser: RequestBuffer,
    out: Vec<u8>,
    written: usize,
    state: ConnState,
    deadline: Option<Instant>,
    /// Requests dispatched on this connection so far.
    served: u64,
    /// Interest currently registered with the poller. Tracked so state
    /// transitions skip the `epoll_ctl` syscall when the armed interest
    /// already matches (the common keep-alive request → immediate
    /// response cycle stays READ-armed throughout).
    armed: Interest,
}

/// The reactor: single thread, owns everything network-facing.
struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    waker_rx: File,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    shared: Arc<Shared>,
    limits: HttpLimits,
    header_timeout: Duration,
    idle_timeout: Duration,
    drain_timeout: Duration,
    max_connections: usize,
    /// Set once the stop signal is observed: deadline for the drain.
    drain_deadline: Option<Instant>,
    /// Reused by `expire_deadlines` each tick; keeps the steady-state
    /// reactor path allocation-free.
    expired_scratch: Vec<u64>,
    /// Fast-path dispatch: requests the predicate accepts run directly
    /// on this thread instead of through the worker pool.
    inline: Option<InlinePredicate>,
    handler: Handler,
}

impl Reactor {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout_ms = self.poll_timeout_ms();
            if self.poller.wait(&mut events, timeout_ms).is_err() {
                // A failed poll is unrecoverable for the loop; drain
                // shutdown state and exit rather than spin.
                break;
            }
            let tick = Instant::now();
            self.shared.metrics.wakeups.inc();

            // Acquire pairs with the Release store in `stop` (audit
            // publish rule): once observed, everything written before
            // the signal is visible here.
            if self.drain_deadline.is_none() && self.shared.stopping.load(Ordering::Acquire) {
                self.begin_drain(tick);
            }

            for event in events.iter().copied() {
                match event.token {
                    TOKEN_WAKER => self.drain_waker(),
                    TOKEN_LISTENER => self.accept_ready(tick),
                    token => self.conn_ready(token, event, tick),
                }
            }

            self.apply_completions(tick);
            self.expire_deadlines(tick);

            if self.drain_deadline.is_some() && self.conns.is_empty() {
                break;
            }
            if let Some(deadline) = self.drain_deadline {
                if Instant::now() >= deadline {
                    break; // drain budget exhausted; drop stragglers
                }
            }
            self.shared
                .metrics
                .loop_seconds
                .observe_duration(tick.elapsed());
        }
        // Drop remaining connections explicitly so the open gauge ends
        // accurate even when the drain deadline fired.
        let leftover: Vec<u64> = self.conns.keys().copied().collect();
        for token in leftover {
            self.close_conn(token);
        }
    }

    /// Poll timeout: the nearest connection/drain deadline, or forever
    /// (-1) when nothing is armed — stop() wakes us via the pipe.
    fn poll_timeout_ms(&self) -> i32 {
        let mut nearest: Option<Instant> = self.drain_deadline;
        for conn in self.conns.values() {
            if let Some(deadline) = conn.deadline {
                nearest = Some(match nearest {
                    Some(n) if n <= deadline => n,
                    _ => deadline,
                });
            }
        }
        match nearest {
            None => -1,
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                // Round UP to the next millisecond: truncation would
                // turn any deadline under 1 ms away into a 0 ms timeout
                // and spin the loop until it actually expires
                // (`expire_deadlines` fires on `d <= now`).
                let mut ms = remaining.as_millis();
                if remaining.subsec_nanos() % 1_000_000 != 0 {
                    ms += 1;
                }
                ms.min(i32::MAX as u128) as i32
            }
        }
    }

    /// Transition into bounded-drain shutdown: stop accepting, drop
    /// idle/reading connections immediately, let dispatched and writing
    /// connections finish within `drain_timeout`.
    fn begin_drain(&mut self, now: Instant) {
        if let Some(listener) = self.listener.take() {
            self.poller.remove(listener.as_raw_fd());
        }
        let reading: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.state, ConnState::Reading))
            .map(|(&t, _)| t)
            .collect();
        for token in reading {
            self.close_conn(token);
        }
        self.shared.queue.close();
        self.drain_deadline = Some(now + self.drain_timeout);
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match self.waker_rx.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return, // already draining
            };
            match accepted {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.shared.metrics.accepted.inc();
                    let token = self.next_token;
                    self.next_token += 1;
                    let fd = stream.as_raw_fd();
                    let mut conn = Conn {
                        stream,
                        parser: RequestBuffer::new(),
                        out: Vec::new(),
                        written: 0,
                        state: ConnState::Reading,
                        deadline: Some(now + self.idle_timeout),
                        served: 0,
                        armed: Interest::READ,
                    };
                    if self.conns.len() >= self.max_connections {
                        // Over the cap: answer 503 through the normal
                        // write path, then close.
                        self.shared.metrics.rejected.inc();
                        conn.out = error_response(&HttpError {
                            status: 503,
                            message: "connection limit reached, retry later".into(),
                        })
                        .serialize(false);
                        conn.state = ConnState::Writing { close_after: true };
                        conn.deadline = Some(now + self.header_timeout);
                        conn.armed = Interest::WRITE;
                        if self.poller.add(fd, token, Interest::WRITE).is_err() {
                            continue; // conn drops, fd closes
                        }
                        self.conns.insert(token, conn);
                        self.shared.metrics.open_connections.inc();
                        self.flush_write(token, now);
                        continue;
                    }
                    if self.poller.add(fd, token, Interest::READ).is_err() {
                        continue;
                    }
                    self.conns.insert(token, conn);
                    self.shared.metrics.open_connections.inc();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, event: Event, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.state {
            ConnState::Reading if event.readable || event.closed => {
                self.read_conn(token, now);
            }
            ConnState::Writing { .. } if event.writable => {
                self.flush_write(token, now);
            }
            ConnState::Dispatched if event.closed => {
                // Peer went away while its request is in flight; the
                // late completion will find no connection and be
                // dropped.
                self.close_conn(token);
            }
            _ => {
                if event.closed {
                    self.close_conn(token);
                }
            }
        }
    }

    /// Reads until `WouldBlock`, then tries to dispatch a request.
    fn read_conn(&mut self, token: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; 8192];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Clean close (or mid-request truncation — nothing
                    // useful can be answered either way).
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.parser.extend(&chunk[..n]);
                    // Short read: the socket buffer is (almost surely)
                    // drained, so skip the extra syscall that would
                    // confirm `WouldBlock`. Safe under level-triggered
                    // polling — any leftover bytes re-report readiness.
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.advance_parser(token, now);
    }

    /// Drives the parser on buffered bytes: dispatch a complete
    /// request, re-arm with the right deadline, or answer a parse
    /// error.
    fn advance_parser(&mut self, token: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        debug_assert!(matches!(conn.state, ConnState::Reading));
        match conn.parser.try_next(&self.limits) {
            Ok(Some(request)) => {
                self.shared.metrics.requests.inc();
                if conn.served > 0 {
                    self.shared.metrics.keepalive_reuses.inc();
                }
                conn.served += 1;
                if self
                    .inline
                    .as_ref()
                    .is_some_and(|predicate| predicate(&request))
                {
                    // Fast path: run the handler right here. No parking,
                    // no queue, no completion, no waker — the response
                    // starts draining before this function returns.
                    self.shared.metrics.inline_served.inc();
                    let keep_alive = request.keep_alive;
                    let handler = Arc::clone(&self.handler);
                    let response =
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            handler(request)
                        })) {
                            Ok(response) => response,
                            Err(_) => error_response(&HttpError {
                                status: 500,
                                message: "handler panicked".into(),
                            }),
                        };
                    self.start_write(token, response, keep_alive, now);
                    return;
                }
                conn.state = ConnState::Dispatched;
                conn.deadline = None;
                let rearm = conn.armed != Interest::NONE;
                conn.armed = Interest::NONE;
                let fd = conn.stream.as_raw_fd();
                if rearm {
                    let _ = self.poller.modify(fd, token, Interest::NONE);
                }
                self.shared.metrics.handler_queue_depth.inc();
                self.shared.queue.push(token, request);
            }
            Ok(None) => {
                // Partial head ⇒ slowloris deadline; empty ⇒ idle.
                conn.deadline = Some(if conn.parser.has_partial() {
                    now + self.header_timeout
                } else {
                    now + self.idle_timeout
                });
                let rearm = conn.armed != Interest::READ;
                conn.armed = Interest::READ;
                let fd = conn.stream.as_raw_fd();
                if rearm {
                    let _ = self.poller.modify(fd, token, Interest::READ);
                }
            }
            Err(e) if e.is_closed() => self.close_conn(token),
            Err(e) => self.start_write(token, error_response(&e), false, now),
        }
    }

    /// Loads a serialized response and starts draining it.
    fn start_write(&mut self, token: u64, response: Response, keep_alive: bool, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let keep = keep_alive && self.drain_deadline.is_none();
        conn.out = response.serialize(keep);
        conn.written = 0;
        conn.state = ConnState::Writing { close_after: !keep };
        conn.deadline = Some(now + self.header_timeout); // write-stall guard
                                                         // Write eagerly: the socket buffer is almost always empty, so
                                                         // the common case drains fully without ever arming WRITE (the
                                                         // `flush_write` WouldBlock branch arms it only when needed).
        self.flush_write(token, now);
    }

    /// Writes as much of the pending response as the socket accepts;
    /// on completion either closes or returns to `Reading`.
    fn flush_write(&mut self, token: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let close_after = match conn.state {
            ConnState::Writing { close_after } => close_after,
            _ => return,
        };
        while conn.written < conn.out.len() {
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let rearm = conn.armed != Interest::WRITE;
                    conn.armed = Interest::WRITE;
                    let fd = conn.stream.as_raw_fd();
                    if rearm {
                        let _ = self.poller.modify(fd, token, Interest::WRITE);
                    }
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if close_after {
            self.close_conn(token);
            return;
        }
        conn.out.clear();
        conn.written = 0;
        conn.state = ConnState::Reading;
        conn.deadline = Some(now + self.idle_timeout);
        let rearm = conn.armed != Interest::READ;
        conn.armed = Interest::READ;
        let fd = conn.stream.as_raw_fd();
        if rearm {
            let _ = self.poller.modify(fd, token, Interest::READ);
        }
        // A pipelined request may already be buffered; serve it without
        // waiting for more bytes.
        self.advance_parser(token, now);
    }

    /// Applies finished handler invocations.
    fn apply_completions(&mut self, now: Instant) {
        let done: Vec<Completion> = std::mem::take(&mut *lock_clean(&self.shared.completions));
        for completion in done {
            // The connection may have timed out or hung up while the
            // handler ran; its completion is then simply dropped.
            if !self.conns.contains_key(&completion.token) {
                continue;
            }
            self.start_write(
                completion.token,
                completion.response,
                completion.keep_alive,
                now,
            );
        }
    }

    /// Enforces per-connection deadlines.
    fn expire_deadlines(&mut self, now: Instant) {
        // Move the scratch buffer out of `self` for the duration (the
        // expiry handlers below need `&mut self`); reusing it across
        // ticks keeps this path allocation-free after warm-up.
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.extend(
            self.conns
                .iter()
                .filter(|(_, c)| c.deadline.is_some_and(|d| d <= now))
                .map(|(&t, _)| t),
        );
        for token in expired.drain(..) {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            match conn.state {
                ConnState::Reading if conn.parser.has_partial() => {
                    // Slowloris: started a request, never finished it.
                    self.shared.metrics.timeouts.inc();
                    self.start_write(token, error_response(&HttpError::timeout()), false, now);
                }
                ConnState::Reading => {
                    // Idle keep-alive connection: close silently.
                    self.close_conn(token);
                }
                ConnState::Writing { .. } => {
                    // Client stopped draining its response.
                    self.shared.metrics.timeouts.inc();
                    self.close_conn(token);
                }
                ConnState::Dispatched => {} // no deadline while parked
            }
        }
        self.expired_scratch = expired;
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.remove(conn.stream.as_raw_fd());
            self.shared.metrics.open_connections.dec();
        }
    }
}

/// A running event-loop server; dropping the handle stops it.
pub struct EventLoopServer {
    port: u16,
    backend: &'static str,
    shared: Arc<Shared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl EventLoopServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and serves
    /// keep-alive HTTP/1.1 connections through the reactor, running
    /// `handler` on a worker pool.
    pub fn start<F>(
        addr: impl ToSocketAddrs,
        options: NetOptions,
        handler: F,
    ) -> std::io::Result<EventLoopServer>
    where
        F: Fn(Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;

        let mut poller = Poller::new(options.force_portable_poll)?;
        let backend = poller.backend_name();
        let (waker_rx, waker_tx) = sys::pipe_pair()?;
        poller.add(waker_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;

        let metrics = NetMetrics::new();
        if let Some(registry) = &options.metrics {
            metrics.attach(registry);
        }
        let shared = Arc::new(Shared {
            queue: TaskQueue::new(),
            completions: Mutex::new(Vec::new()),
            waker_tx: Mutex::new(waker_tx),
            stopping: AtomicBool::new(false),
            metrics,
        });

        let workers = if options.handler_threads > 0 {
            options.handler_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8)
        };
        let handler: Arc<dyn Fn(Request) -> Response + Send + Sync> = Arc::new(handler);
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let handler = Arc::clone(&handler);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gve-net-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &handler))?,
            );
        }

        let mut reactor = Reactor {
            poller,
            listener: Some(listener),
            waker_rx,
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            shared: Arc::clone(&shared),
            limits: options.limits,
            header_timeout: options.header_timeout,
            idle_timeout: options.idle_timeout,
            drain_timeout: options.drain_timeout,
            max_connections: options.max_connections.max(1),
            drain_deadline: None,
            expired_scratch: Vec::new(),
            inline: options.inline.clone(),
            handler: Arc::clone(&handler),
        };
        threads.push(
            std::thread::Builder::new()
                .name("gve-net-reactor".into())
                .spawn(move || reactor.run())?,
        );

        Ok(EventLoopServer {
            port,
            backend,
            shared,
            threads: Mutex::new(threads),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Which poller backend is live: `"epoll"` or `"poll"`.
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Bounded-drain shutdown; blocks until the reactor and workers
    /// have exited. Idempotent.
    pub fn stop(&self) {
        // Release: publish everything preceding the signal to the
        // reactor's Acquire load.
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.queue.close();
        self.shared.wake();
        // Scope the guard so it is released before the (blocking) joins.
        let handles = {
            let mut threads = lock_clean(&self.threads);
            std::mem::take(&mut *threads)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for EventLoopServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Handler worker: pull a request, run the handler (panics become
/// 500s), hand the response back, wake the reactor.
fn worker_loop(shared: &Shared, handler: &Arc<dyn Fn(Request) -> Response + Send + Sync>) {
    while let Some((token, request)) = shared.queue.pop() {
        shared.metrics.handler_queue_depth.dec();
        let keep_alive = request.keep_alive;
        let response =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(request))) {
                Ok(response) => response,
                Err(_) => error_response(&HttpError {
                    status: 500,
                    message: "handler panicked".into(),
                }),
            };
        lock_clean(&shared.completions).push(Completion {
            token,
            response,
            keep_alive,
        });
        shared.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::ClientConn;

    fn options_fast() -> NetOptions {
        NetOptions {
            handler_threads: 2,
            header_timeout: Duration::from_millis(300),
            idle_timeout: Duration::from_millis(800),
            drain_timeout: Duration::from_secs(2),
            ..NetOptions::default()
        }
    }

    fn echo_server(options: NetOptions) -> EventLoopServer {
        EventLoopServer::start("127.0.0.1:0", options, |req| {
            Response::json(
                200,
                format!("{{\"path\":\"{}\",\"len\":{}}}", req.path, req.body.len()),
            )
        })
        .unwrap()
    }

    #[test]
    fn keep_alive_roundtrips_many_requests_on_one_connection() {
        let registry = MetricsRegistry::new();
        let server = echo_server(NetOptions {
            metrics: Some(registry.clone()),
            ..options_fast()
        });
        let mut conn = ClientConn::connect(format!("127.0.0.1:{}", server.port())).unwrap();
        for i in 0..10 {
            let (status, body) = conn
                .request("POST", &format!("/r{i}"), Some("abc"))
                .unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, format!("{{\"path\":\"/r{i}\",\"len\":3}}"));
        }
        let text = registry.render();
        assert!(
            text.contains("gve_net_keepalive_reuses_total 9"),
            "10 requests on one connection = 9 reuses:\n{text}"
        );
        assert!(text.contains("gve_net_accepted_total 1"), "{text}");
        server.stop();
    }

    #[test]
    fn concurrent_clients_are_multiplexed() {
        let server = Arc::new(echo_server(options_fast()));
        let mut joins = Vec::new();
        for c in 0..8 {
            let server = Arc::clone(&server);
            joins.push(std::thread::spawn(move || {
                let mut conn = ClientConn::connect(format!("127.0.0.1:{}", server.port())).unwrap();
                for i in 0..20 {
                    let (status, body) = conn.request("GET", &format!("/c{c}/i{i}"), None).unwrap();
                    assert_eq!(status, 200, "{body}");
                }
            }));
        }
        for join in joins {
            join.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn slowloris_partial_header_gets_408_and_counted() {
        let registry = MetricsRegistry::new();
        let server = echo_server(NetOptions {
            metrics: Some(registry.clone()),
            ..options_fast()
        });
        let mut stream = TcpStream::connect(format!("127.0.0.1:{}", server.port())).unwrap();
        stream
            .write_all(b"GET /stalled HTTP/1.1\r\nX-Drip: ")
            .unwrap();
        let mut out = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = String::new();
        let _ = std::io::Read::read_to_string(&mut stream, &mut buf);
        out.push_str(&buf);
        assert!(out.starts_with("HTTP/1.1 408"), "{out:?}");
        assert!(
            registry.render().contains("gve_http_timeouts_total 1"),
            "{}",
            registry.render()
        );
        server.stop();
    }

    #[test]
    fn idle_keepalive_connection_is_closed_silently() {
        let server = echo_server(options_fast());
        let mut conn = ClientConn::connect(format!("127.0.0.1:{}", server.port())).unwrap();
        let (status, _) = conn.request("GET", "/warm", None).unwrap();
        assert_eq!(status, 200);
        // Exceed the idle timeout; the server must close the socket.
        std::thread::sleep(Duration::from_millis(1500));
        let result = conn.request("GET", "/after-idle", None);
        assert!(
            result.is_err(),
            "idle connection should have been closed, got {result:?}"
        );
        server.stop();
    }

    #[test]
    fn oversized_header_gets_431() {
        let server = echo_server(NetOptions {
            limits: HttpLimits {
                max_header_bytes: 256,
                max_body_bytes: 1024,
            },
            ..options_fast()
        });
        let mut stream = TcpStream::connect(format!("127.0.0.1:{}", server.port())).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n").unwrap();
        for _ in 0..64 {
            if stream.write_all(b"X-Pad: aaaaaaaaaaaaaaaa\r\n").is_err() {
                break; // server already closed on us — fine
            }
        }
        let mut out = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let _ = std::io::Read::read_to_string(&mut stream, &mut out);
        assert!(out.starts_with("HTTP/1.1 431"), "{out:?}");
        server.stop();
    }

    #[test]
    fn stop_finishes_in_flight_requests_and_closes_idle() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let handler_gate = Arc::clone(&gate);
        let server = Arc::new(
            EventLoopServer::start("127.0.0.1:0", options_fast(), move |_req| {
                let (lock, signal) = &*handler_gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = signal.wait(open).unwrap();
                }
                Response::json(200, "{\"drained\":true}")
            })
            .unwrap(),
        );
        let addr = format!("127.0.0.1:{}", server.port());

        // One in-flight request parked in the handler...
        let in_flight = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut conn = ClientConn::connect(addr).unwrap();
                conn.request("GET", "/in-flight", None)
            })
        };
        // ...and one idle keep-alive connection doing nothing.
        let _idle = TcpStream::connect(&addr).unwrap();
        std::thread::sleep(Duration::from_millis(200)); // let both arrive

        let stopper = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let t0 = Instant::now();
                server.stop();
                t0.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        // Release the gate: the in-flight request must complete even
        // though stop() is already underway.
        {
            let (lock, signal) = &*gate;
            *lock.lock().unwrap() = true;
            signal.notify_all();
        }
        let (status, body) = in_flight.join().unwrap().expect("in-flight request failed");
        assert_eq!(status, 200, "{body}");
        let elapsed = stopper.join().unwrap();
        assert!(
            elapsed < Duration::from_secs(5),
            "stop took {elapsed:?}, drain is not bounded"
        );
    }

    #[test]
    fn connection_cap_answers_503() {
        let registry = MetricsRegistry::new();
        let server = echo_server(NetOptions {
            max_connections: 1,
            metrics: Some(registry.clone()),
            ..options_fast()
        });
        let addr = format!("127.0.0.1:{}", server.port());
        let mut first = ClientConn::connect(&addr).unwrap();
        let (status, _) = first.request("GET", "/one", None).unwrap();
        assert_eq!(status, 200);
        // Second concurrent connection is over the cap.
        let mut second = TcpStream::connect(&addr).unwrap();
        let mut out = String::new();
        second
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let _ = std::io::Read::read_to_string(&mut second, &mut out);
        assert!(out.starts_with("HTTP/1.1 503"), "{out:?}");
        assert!(
            registry
                .render()
                .contains("gve_net_rejected_connections_total 1"),
            "{}",
            registry.render()
        );
        server.stop();
    }

    #[test]
    fn portable_poll_backend_serves_requests() {
        let server = echo_server(NetOptions {
            force_portable_poll: true,
            ..options_fast()
        });
        assert_eq!(server.backend(), "poll");
        let mut conn = ClientConn::connect(format!("127.0.0.1:{}", server.port())).unwrap();
        for _ in 0..3 {
            let (status, _) = conn.request("GET", "/via-poll", None).unwrap();
            assert_eq!(status, 200);
        }
        server.stop();
    }

    #[test]
    fn handler_panic_becomes_500_and_connection_survives() {
        let server = EventLoopServer::start("127.0.0.1:0", options_fast(), |req| {
            if req.path == "/boom" {
                panic!("deliberate test panic");
            }
            Response::json(200, "{}")
        })
        .unwrap();
        let mut conn = ClientConn::connect(format!("127.0.0.1:{}", server.port())).unwrap();
        let (status, body) = conn.request("GET", "/boom", None).unwrap();
        assert_eq!(status, 500, "{body}");
        // Same connection keeps working: the worker pool survived.
        let (status, _) = conn.request("GET", "/fine", None).unwrap();
        assert_eq!(status, 200);
        server.stop();
    }
}
