//! Readiness poller: epoll on Linux, portable `poll(2)` everywhere
//! else (and on Linux when explicitly forced, so both backends stay
//! tested on the platform CI actually runs).
//!
//! The poller maps file descriptors to caller-chosen `u64` tokens and
//! reports readiness as [`Event`]s. It is strictly level-triggered on
//! both backends — the reactor re-arms interest explicitly, which keeps
//! the two backends behaviorally identical.

#![cfg(unix)]

use crate::sys;
use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
#[cfg(target_os = "linux")]
use std::os::fd::{FromRawFd, OwnedFd};

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Parked: stay registered but request no readiness wakeups (used
    /// while a request is dispatched to a handler worker).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Token the fd was registered under.
    pub token: u64,
    /// Readable now (or peer closed with data pending).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error/hangup condition; the owner should tear the fd down.
    pub closed: bool,
}

/// Backend selector.
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    Portable(PortableBackend),
}

/// The readiness poller.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Creates a poller, preferring epoll on Linux. `force_portable`
    /// selects the `poll(2)` backend even where epoll exists.
    pub fn new(force_portable: bool) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if !force_portable {
                return Ok(Poller {
                    backend: Backend::Epoll(EpollBackend::new()?),
                });
            }
        }
        let _ = force_portable;
        Ok(Poller {
            backend: Backend::Portable(PortableBackend::default()),
        })
    }

    /// Which backend is live (`"epoll"` or `"poll"`), for logs/metrics.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Portable(_) => "poll",
        }
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.ctl(sys::epoll::EPOLL_CTL_ADD, fd, token, interest),
            Backend::Portable(b) => {
                b.entries.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest of an already registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.ctl(sys::epoll::EPOLL_CTL_MOD, fd, token, interest),
            Backend::Portable(b) => {
                b.entries.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Deregisters `fd`. Errors are swallowed: removal happens on the
    /// teardown path where the fd may already be gone.
    pub fn remove(&mut self, fd: RawFd) {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => {
                let _ = b.ctl(sys::epoll::EPOLL_CTL_DEL, fd, 0, Interest::NONE);
            }
            Backend::Portable(b) => {
                b.entries.remove(&fd);
            }
        }
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and appends readiness
    /// reports to `events` (cleared first).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.wait(events, timeout_ms),
            Backend::Portable(b) => b.wait(events, timeout_ms),
        }
    }
}

// ------------------------------------------------------------- epoll

#[cfg(target_os = "linux")]
struct EpollBackend {
    epfd: OwnedFd,
    buf: Vec<sys::epoll::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new() -> io::Result<EpollBackend> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // checked before the fd is used.
        let raw = unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) };
        if raw < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: the kernel just handed us exclusive ownership of this
        // descriptor; it is wrapped exactly once.
        let epfd = unsafe { OwnedFd::from_raw_fd(raw) };
        Ok(EpollBackend {
            epfd,
            buf: vec![sys::epoll::EpollEvent::default(); 256],
        })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        // RDHUP is requested only alongside read interest: epoll is
        // level-triggered, so registering it on a parked (NONE) or
        // write-only connection would make a half-closed peer re-report
        // on every wait, spinning the reactor for the whole handler
        // duration. Full hangup/error (EPOLLHUP/EPOLLERR) is always
        // reported regardless of the requested set, so dead parked
        // connections are still torn down promptly.
        let mut events = 0;
        if interest.readable {
            events |= sys::epoll::EPOLLIN | sys::epoll::EPOLLRDHUP;
        }
        if interest.writable {
            events |= sys::epoll::EPOLLOUT;
        }
        let mut event = sys::epoll::EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `event` is a live, initialized EpollEvent for the
        // duration of the call; DEL ignores the pointer entirely.
        let rc = unsafe { sys::epoll::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        loop {
            // SAFETY: the buffer is a live allocation of `buf.len()`
            // EpollEvent slots; the kernel writes at most that many.
            let n = unsafe {
                sys::epoll::epoll_wait(
                    self.epfd.as_raw_fd(),
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for slot in self.buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let bits = slot.events;
                let token = slot.data;
                out.push(Event {
                    token,
                    readable: bits & (sys::epoll::EPOLLIN | sys::epoll::EPOLLRDHUP) != 0,
                    writable: bits & sys::epoll::EPOLLOUT != 0,
                    closed: bits & (sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP) != 0,
                });
            }
            // Saturated buffer: more readiness may be pending; grow so
            // a busy server is not starved to 256 events per loop.
            if n as usize == self.buf.len() {
                self.buf
                    .resize(self.buf.len() * 2, sys::epoll::EpollEvent::default());
            }
            return Ok(());
        }
    }
}

// -------------------------------------------------------------- poll

#[derive(Default)]
struct PortableBackend {
    entries: HashMap<RawFd, (u64, Interest)>,
    fds: Vec<sys::PollFd>,
    tokens: Vec<u64>,
}

impl PortableBackend {
    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        self.fds.clear();
        self.tokens.clear();
        for (&fd, &(token, interest)) in &self.entries {
            let mut events = 0i16;
            if interest.readable {
                events |= sys::POLLIN;
            }
            if interest.writable {
                events |= sys::POLLOUT;
            }
            // Parked (Interest::NONE) fds stay in the set with an empty
            // request: poll(2) reports POLLERR/POLLHUP regardless of the
            // requested events, so peer hangup on a dispatched
            // connection surfaces as `closed` here exactly as EPOLLHUP
            // does on the epoll backend.
            self.fds.push(sys::PollFd {
                fd,
                events,
                revents: 0,
            });
            self.tokens.push(token);
        }
        if self.fds.is_empty() {
            // Nothing registered: sleep out the timeout so callers
            // still get their deadline semantics instead of a busy loop.
            if timeout_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
            }
            return Ok(());
        }
        loop {
            // SAFETY: `fds` is a live, initialized slice and nfds
            // matches its length exactly.
            let n = unsafe {
                sys::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::os::raw::c_ulong,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for (slot, &token) in self.fds.iter().zip(&self.tokens) {
                if slot.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: slot.revents & sys::POLLIN != 0,
                    writable: slot.revents & sys::POLLOUT != 0,
                    closed: slot.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                });
            }
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;

    fn roundtrip(force_portable: bool) {
        let mut poller = Poller::new(force_portable).unwrap();
        let (rx, mut tx) = crate::sys::pipe_pair().unwrap();
        poller.add(rx.as_raw_fd(), 42, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no readiness before the write");

        tx.write_all(&[1]).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        // Parked interest suppresses the (still-pending) readiness.
        poller.modify(rx.as_raw_fd(), 42, Interest::NONE).unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "parked fd must not report readiness");

        poller.modify(rx.as_raw_fd(), 42, Interest::READ).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1, "re-armed fd reports again");

        poller.remove(rx.as_raw_fd());
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }

    /// Peer hangup on a parked (Interest::NONE) fd must still surface
    /// as `closed` — error/hangup conditions are reported by both
    /// kernels regardless of the requested event set, and the reactor
    /// relies on that to tear down dead dispatched connections.
    fn parked_hangup_reports_closed(force_portable: bool) {
        let mut poller = Poller::new(force_portable).unwrap();
        let (rx, tx) = crate::sys::pipe_pair().unwrap();
        poller.add(rx.as_raw_fd(), 7, Interest::NONE).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no hangup yet");
        drop(tx); // peer goes away while the fd is parked
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(
            events[0].closed,
            "hangup on a parked fd must report closed: {:?}",
            events[0]
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_roundtrip() {
        let poller = Poller::new(false).unwrap();
        assert_eq!(poller.backend_name(), "epoll");
        roundtrip(false);
        parked_hangup_reports_closed(false);
    }

    #[test]
    fn portable_backend_roundtrip() {
        let poller = Poller::new(true).unwrap();
        assert_eq!(poller.backend_name(), "poll");
        roundtrip(true);
        parked_hangup_reports_closed(true);
    }
}
