//! HTTP route handlers.
//!
//! Stateless dispatch from a parsed [`Request`] to the service state:
//! registry for graph lifecycle, job engine for detection, partition
//! cache for reads, and `gve-dynamic` for update ingestion. Every
//! response body is JSON; errors come back as `{"error": "..."}` with a
//! meaningful status code.

use crate::cache::{CachedPartition, PartitionOrigin};
use crate::delta::DeltaAnswer;
use crate::http::{Request, Response};
use crate::ingest::IngestOutcome;
use crate::jobs::{DetectRequest, JobState};
use crate::json::Json;
use crate::registry::{validate_name, GraphCell, GraphSource, RegistryError};
use crate::ServerState;
use gve_dynamic::{apply_batch, BatchUpdate, DynamicLeiden, DynamicStrategy};
use gve_graph::{CsrGraph, GraphBuilder, VertexId};
use gve_obs::DEFAULT_LATENCY_BUCKETS;
use std::sync::{Arc, MutexGuard};
use std::time::Instant;

/// Largest community membership list returned inline.
const MAX_INLINE_VERTICES: usize = 100_000;

pub(crate) struct ApiError {
    pub(crate) status: u16,
    pub(crate) message: String,
}

impl ApiError {
    pub(crate) fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }

    fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }
}

impl From<RegistryError> for ApiError {
    fn from(error: RegistryError) -> Self {
        let status = match error {
            RegistryError::AlreadyExists(_) => 409,
            RegistryError::NotFound(_) => 404,
            RegistryError::Load(_) => 400,
        };
        ApiError::new(status, error.to_string())
    }
}

fn ok(status: u16, body: Json) -> Response {
    Response::json(status, body.render())
}

/// Top-level dispatch. Never panics a connection thread: route errors
/// become JSON error responses. Every request lands one observation in
/// the per-endpoint latency histogram.
pub fn handle(state: &ServerState, request: &Request) -> Response {
    let started = Instant::now();
    let response = match route(state, request) {
        Ok(response) => response,
        Err(e) => ok(e.status, Json::obj([("error", Json::from(e.message))])),
    };
    let endpoint = endpoint_label(request.method.as_str(), &request.segments());
    state
        .metrics
        .histogram_or_register(
            "gve_http_request_seconds",
            "Request latency by endpoint.",
            &[("endpoint", endpoint)],
            DEFAULT_LATENCY_BUCKETS,
        )
        .observe_duration(started.elapsed());
    response
}

/// Coarse endpoint label for the latency histogram — route patterns,
/// not raw paths, so label cardinality stays bounded.
fn endpoint_label(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        ("GET", []) | ("GET", ["healthz"]) => "healthz",
        ("GET", ["stats"]) => "stats",
        ("GET", ["metrics"]) => "metrics",
        ("GET", ["graphs"]) => "graphs_list",
        ("POST", ["graphs"]) => "graphs_register",
        ("GET", ["graphs", _]) => "graph_info",
        ("DELETE", ["graphs", _]) => "graph_remove",
        ("POST", ["graphs", _, "detect"]) => "detect",
        ("GET", ["graphs", _, "membership"]) => "membership",
        ("GET", ["graphs", _, "communities", _]) => "communities",
        ("POST", ["graphs", _, "updates"]) => "updates",
        ("GET", ["graphs", _, "delta"]) => "delta",
        ("GET", ["jobs", _]) => "job_status",
        ("POST", ["jobs", _, "cancel"]) => "job_cancel",
        _ => "unrouted",
    }
}

fn route(state: &ServerState, request: &Request) -> Result<Response, ApiError> {
    let segments = request.segments();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", []) | ("GET", ["healthz"]) => Ok(ok(
            200,
            Json::obj([
                ("status", Json::from("ok")),
                ("service", Json::from("gve-serve")),
            ]),
        )),
        ("GET", ["stats"]) => Ok(stats(state)),
        ("GET", ["metrics"]) => Ok(metrics(state)),
        ("GET", ["graphs"]) => Ok(list_graphs(state)),
        ("POST", ["graphs"]) => register_graph(state, request),
        ("GET", ["graphs", name]) => graph_info(state, name),
        ("DELETE", ["graphs", name]) => remove_graph(state, name),
        ("POST", ["graphs", name, "detect"]) => detect(state, name, request),
        ("GET", ["graphs", name, "membership"]) => membership(state, name, request),
        ("GET", ["graphs", name, "communities", community]) => communities(state, name, community),
        ("POST", ["graphs", name, "updates"]) => updates(state, name, request),
        ("GET", ["graphs", name, "delta"]) => delta(state, name, request),
        ("GET", ["jobs", id]) => job_status(state, id),
        ("POST", ["jobs", id, "cancel"]) => job_cancel(state, id),
        (_, _) => Err(ApiError::new(
            404,
            format!("no route for {method} {}", request.path),
        )),
    }
}

fn parse_body(request: &Request) -> Result<Json, ApiError> {
    let text = request
        .body_utf8()
        .map_err(|e| ApiError::new(e.status, e.message))?;
    if text.trim().is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    crate::json::parse(text).map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))
}

fn require_u64(body: &Json, field: &str) -> Result<u64, ApiError> {
    body.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::bad_request(format!("missing numeric field '{field}'")))
}

fn optional_u64(body: &Json, field: &str, default: u64) -> u64 {
    body.get(field).and_then(Json::as_u64).unwrap_or(default)
}

fn optional_f64(body: &Json, field: &str, default: f64) -> f64 {
    body.get(field).and_then(Json::as_f64).unwrap_or(default)
}

// ---------------------------------------------------------------- graphs

fn graph_json(state: &ServerState, name: &str) -> Result<Json, ApiError> {
    let entry = state.registry.snapshot(name)?;
    let mut fields = vec![
        ("name".to_string(), Json::from(name)),
        ("epoch".to_string(), Json::from(entry.epoch)),
        (
            "vertices".to_string(),
            Json::from(entry.graph.num_vertices()),
        ),
        ("arcs".to_string(), Json::from(entry.graph.num_arcs())),
        ("source".to_string(), Json::from(entry.source.label())),
        (
            "batches_applied".to_string(),
            Json::from(entry.batches_applied),
        ),
    ];
    if let Some((key, partition)) = state.cache.latest(name) {
        fields.push((
            "latest_partition".to_string(),
            Json::obj([
                ("epoch", Json::from(key.epoch)),
                ("current", Json::from(key.epoch == entry.epoch)),
                ("num_communities", Json::from(partition.num_communities)),
                ("modularity", Json::from(partition.modularity)),
                ("origin", Json::from(partition.origin.label())),
            ]),
        ));
    }
    Ok(Json::Obj(fields))
}

fn list_graphs(state: &ServerState) -> Response {
    let graphs: Vec<Json> = state
        .registry
        .names()
        .iter()
        .filter_map(|name| graph_json(state, name).ok())
        .collect();
    ok(200, Json::obj([("graphs", Json::Arr(graphs))]))
}

fn graph_info(state: &ServerState, name: &str) -> Result<Response, ApiError> {
    Ok(ok(200, graph_json(state, name)?))
}

fn remove_graph(state: &ServerState, name: &str) -> Result<Response, ApiError> {
    if !state.registry.remove(name) {
        return Err(RegistryError::NotFound(name.to_string()).into());
    }
    state.cache.forget_graph(name);
    state.delta.forget(name);
    if let Some(durability) = &state.durability {
        if let Err(e) = durability.remove_graph(name) {
            eprintln!("gve-serve: failed to remove durable state for '{name}': {e}");
        }
    }
    Ok(ok(200, Json::obj([("removed", Json::from(name))])))
}

fn parse_vertex_id(value: &Json) -> Result<VertexId, ApiError> {
    let id = value
        .as_u64()
        .ok_or_else(|| ApiError::bad_request("vertex ids must be non-negative integers"))?;
    VertexId::try_from(id).map_err(|_| ApiError::bad_request(format!("vertex id {id} too large")))
}

fn parse_edge_list(edges: &Json) -> Result<Vec<(VertexId, VertexId, f32)>, ApiError> {
    let items = edges
        .as_array()
        .ok_or_else(|| ApiError::bad_request("'edges' must be an array of [u, v, w?]"))?;
    let mut parsed = Vec::with_capacity(items.len());
    for item in items {
        let parts = item
            .as_array()
            .ok_or_else(|| ApiError::bad_request("each edge must be [u, v] or [u, v, w]"))?;
        if parts.len() != 2 && parts.len() != 3 {
            return Err(ApiError::bad_request(
                "each edge must be [u, v] or [u, v, w]",
            ));
        }
        let u = parse_vertex_id(&parts[0])?;
        let v = parse_vertex_id(&parts[1])?;
        let w = parts.get(2).and_then(Json::as_f64).unwrap_or(1.0) as f32;
        parsed.push((u, v, w));
    }
    Ok(parsed)
}

fn generate_graph(spec: &Json) -> Result<(CsrGraph, String), ApiError> {
    let class = spec
        .get("class")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("'generate' needs a 'class' field"))?;
    let seed = optional_u64(spec, "seed", 42);
    let graph = match class {
        "sbm" | "planted" => {
            let vertices = require_u64(spec, "vertices")? as usize;
            let communities = optional_u64(spec, "communities", 10) as usize;
            let intra = optional_f64(spec, "intra_degree", 10.0);
            let inter = optional_f64(spec, "inter_degree", 1.0);
            gve_generate::PlantedPartition::new(vertices, communities, intra, inter)
                .seed(seed)
                .generate()
                .graph
        }
        "er" => {
            let vertices = require_u64(spec, "vertices")? as usize;
            let edges = optional_u64(spec, "edges", (vertices as u64) * 8) as usize;
            gve_generate::er::erdos_renyi(vertices, edges, seed)
        }
        "ring" => {
            let cliques = optional_u64(spec, "cliques", 16) as usize;
            let clique_size = optional_u64(spec, "clique_size", 8) as usize;
            if cliques < 3 || clique_size < 3 {
                return Err(ApiError::bad_request(
                    "ring needs cliques >= 3 and clique_size >= 3",
                ));
            }
            gve_generate::ring_of_cliques(cliques, clique_size)
        }
        "grid" => {
            let width = require_u64(spec, "width")? as usize;
            let height = require_u64(spec, "height")? as usize;
            let avg_degree = optional_f64(spec, "avg_degree", 2.5);
            if width * height == 0 {
                return Err(ApiError::bad_request("grid needs width * height > 0"));
            }
            gve_generate::grid::road_grid(width, height, avg_degree, seed)
        }
        other => {
            return Err(ApiError::bad_request(format!(
                "unknown generator class '{other}' (sbm|er|ring|grid)"
            )))
        }
    };
    Ok((graph, class.to_string()))
}

fn register_graph(state: &ServerState, request: &Request) -> Result<Response, ApiError> {
    let body = parse_body(request)?;
    let name = body
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("missing 'name'"))?
        .to_string();
    validate_name(&name).map_err(ApiError::bad_request)?;

    if let Some(path) = body.get("path").and_then(Json::as_str) {
        state.registry.register_from_path(&name, path)?;
    } else if let Some(spec) = body.get("generate") {
        let (graph, class) = generate_graph(spec)?;
        state
            .registry
            .register(&name, graph, GraphSource::Generated(class))?;
    } else if let Some(edges) = body.get("edges") {
        let edges = parse_edge_list(edges)?;
        let max_endpoint = edges
            .iter()
            .map(|&(u, v, _)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        let vertices =
            optional_u64(&body, "vertices", max_endpoint as u64).max(max_endpoint as u64);
        let graph = GraphBuilder::from_edges(vertices as usize, &edges);
        state.registry.register(&name, graph, GraphSource::Inline)?;
    } else {
        return Err(ApiError::bad_request(
            "provide one of 'path', 'generate', or 'edges'",
        ));
    }
    if let Some(durability) = &state.durability {
        let entry = state.registry.snapshot(&name)?;
        if let Err(e) = durability.register_graph(&name, &entry.graph, &entry.source.label()) {
            // Roll back: a graph the server cannot persist must not be
            // half-registered in memory only when durability was asked for.
            state.registry.remove(&name);
            return Err(ApiError::new(
                500,
                format!("failed to persist graph '{name}': {e}"),
            ));
        }
    }
    Ok(ok(201, graph_json(state, &name)?))
}

// ---------------------------------------------------------------- detect

fn detect(state: &ServerState, name: &str, request: &Request) -> Result<Response, ApiError> {
    let body = parse_body(request)?;
    let detect_request = DetectRequest::from_json(&body).map_err(ApiError::bad_request)?;
    let record = state.jobs.submit(name, detect_request).map_err(|e| {
        match state.registry.snapshot(name) {
            Err(registry_error) => registry_error.into(),
            Ok(_) => ApiError::bad_request(e),
        }
    })?;
    let status = if record.cached { 200 } else { 202 };
    Ok(ok(status, record.to_json(&state.cache)))
}

fn job_status(state: &ServerState, id: &str) -> Result<Response, ApiError> {
    let id: u64 = id
        .parse()
        .map_err(|_| ApiError::bad_request("job ids are integers"))?;
    let record = state
        .jobs
        .job(id)
        .ok_or_else(|| ApiError::new(404, format!("job {id} not found")))?;
    Ok(ok(200, record.to_json(&state.cache)))
}

fn job_cancel(state: &ServerState, id: &str) -> Result<Response, ApiError> {
    let id: u64 = id
        .parse()
        .map_err(|_| ApiError::bad_request("job ids are integers"))?;
    let new_state = state
        .jobs
        .cancel(id)
        .ok_or_else(|| ApiError::new(404, format!("job {id} not found")))?;
    Ok(ok(
        200,
        Json::obj([
            ("id", Json::from(id)),
            ("state", Json::from(new_state.label())),
            ("cancelled", Json::from(new_state == JobState::Cancelled)),
        ]),
    ))
}

// ----------------------------------------------------------------- reads

fn latest_partition(
    state: &ServerState,
    name: &str,
) -> Result<(u64, Arc<CachedPartition>), ApiError> {
    let entry = state.registry.snapshot(name)?;
    let (key, partition) = state.cache.latest(name).ok_or_else(|| {
        ApiError::new(
            404,
            format!("no partition computed for '{name}' yet — POST a detect job"),
        )
    })?;
    if key.epoch != entry.epoch {
        return Err(ApiError::new(
            404,
            format!(
                "latest partition for '{name}' is for epoch {} but the graph is at {} — rerun detect",
                key.epoch, entry.epoch
            ),
        ));
    }
    Ok((key.epoch, partition))
}

fn membership(state: &ServerState, name: &str, request: &Request) -> Result<Response, ApiError> {
    let (epoch, partition) = latest_partition(state, name)?;
    let mut fields = vec![
        ("graph".to_string(), Json::from(name)),
        ("epoch".to_string(), Json::from(epoch)),
        (
            "num_communities".to_string(),
            Json::from(partition.num_communities),
        ),
        ("modularity".to_string(), Json::from(partition.modularity)),
        ("origin".to_string(), Json::from(partition.origin.label())),
    ];
    match request.query_param("vertex") {
        Some(raw) => {
            let vertex: usize = raw
                .parse()
                .map_err(|_| ApiError::bad_request("'vertex' must be an integer"))?;
            let community = *partition.membership.get(vertex).ok_or_else(|| {
                ApiError::new(
                    404,
                    format!(
                        "vertex {vertex} out of range (graph has {})",
                        partition.membership.len()
                    ),
                )
            })?;
            fields.push(("vertex".to_string(), Json::from(vertex)));
            fields.push(("community".to_string(), Json::from(community)));
        }
        None => {
            if partition.membership.len() > MAX_INLINE_VERTICES {
                return Err(ApiError::bad_request(format!(
                    "membership has {} entries; query per-vertex with ?vertex=",
                    partition.membership.len()
                )));
            }
            fields.push((
                "membership".to_string(),
                Json::Arr(
                    partition
                        .membership
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect(),
                ),
            ));
        }
    }
    Ok(ok(200, Json::Obj(fields)))
}

fn communities(state: &ServerState, name: &str, community: &str) -> Result<Response, ApiError> {
    let (epoch, partition) = latest_partition(state, name)?;
    let community: VertexId = community
        .parse()
        .map_err(|_| ApiError::bad_request("community ids are integers"))?;
    let members: Vec<usize> = partition
        .membership
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == community)
        .map(|(v, _)| v)
        .collect();
    if members.is_empty() {
        return Err(ApiError::new(
            404,
            format!("community {community} is empty or unknown"),
        ));
    }
    let truncated = members.len() > MAX_INLINE_VERTICES;
    let listed: Vec<Json> = members
        .iter()
        .take(MAX_INLINE_VERTICES)
        .map(|&v| Json::from(v))
        .collect();
    Ok(ok(
        200,
        Json::obj([
            ("graph", Json::from(name)),
            ("epoch", Json::from(epoch)),
            ("community", Json::from(community)),
            ("size", Json::from(members.len())),
            ("vertices", Json::Arr(listed)),
            ("truncated", Json::from(truncated)),
        ]),
    ))
}

// --------------------------------------------------------------- updates

fn parse_strategy(body: &Json) -> Result<DynamicStrategy, ApiError> {
    match body.get("strategy").and_then(Json::as_str) {
        None => Ok(DynamicStrategy::default()),
        Some("full-static") => Ok(DynamicStrategy::FullStatic),
        Some("naive") => Ok(DynamicStrategy::NaiveDynamic),
        Some("delta-screening") => Ok(DynamicStrategy::DeltaScreening),
        Some("dynamic-frontier") => Ok(DynamicStrategy::DynamicFrontier),
        Some(other) => Err(ApiError::bad_request(format!(
            "unknown strategy '{other}' (full-static|naive|delta-screening|dynamic-frontier)"
        ))),
    }
}

fn parse_batch(body: &Json) -> Result<BatchUpdate, ApiError> {
    let mut batch = BatchUpdate::new();
    if let Some(insertions) = body.get("insertions") {
        for (u, v, w) in parse_edge_list(insertions)? {
            batch.insert(u, v, w);
        }
    }
    if let Some(deletions) = body.get("deletions") {
        let items = deletions
            .as_array()
            .ok_or_else(|| ApiError::bad_request("'deletions' must be an array of [u, v]"))?;
        for item in items {
            let parts = item
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| ApiError::bad_request("each deletion must be [u, v]"))?;
            batch.delete(parse_vertex_id(&parts[0])?, parse_vertex_id(&parts[1])?);
        }
    }
    Ok(batch)
}

/// Routes an edge batch through the ingest queue: applied inline when
/// the graph is idle (200), deferred behind a busy graph (202), or
/// rejected at the queue's edit cap (429). An empty batch is a no-op
/// that reports the current epoch without bumping it or touching the
/// cache.
fn updates(state: &ServerState, name: &str, request: &Request) -> Result<Response, ApiError> {
    let body = parse_body(request)?;
    let strategy = parse_strategy(&body)?;
    let batch = parse_batch(&body)?;
    if batch.is_empty() {
        let cell = state.registry.entry(name)?;
        let epoch = cell.lock().epoch;
        return Ok(ok(
            200,
            Json::obj([
                ("graph", Json::from(name)),
                ("epoch", Json::from(epoch)),
                ("insertions", Json::from(0usize)),
                ("deletions", Json::from(0usize)),
                ("refreshed", Json::from(false)),
                ("noop", Json::from(true)),
            ]),
        ));
    }
    match state.ingest.submit(state, name, batch, strategy)? {
        IngestOutcome::Applied(body) => Ok(ok(200, body)),
        IngestOutcome::Deferred {
            queue_depth,
            queued_edits,
            coalesced,
        } => Ok(ok(
            202,
            Json::obj([
                ("graph", Json::from(name)),
                ("deferred", Json::from(true)),
                ("queue_depth", Json::from(queue_depth)),
                ("queued_edits", Json::from(queued_edits)),
                ("coalesced", Json::from(coalesced)),
            ]),
        )),
        IngestOutcome::Rejected { queued_edits } => Err(ApiError::new(
            429,
            format!("ingest queue full ({queued_edits} edits queued); retry later"),
        )),
    }
}

/// Applies an edge batch: bumps the graph epoch and, when a current
/// partition is cached, refreshes it incrementally through
/// `gve-dynamic` instead of forcing clients to re-detect from scratch.
/// The caller holds the cell's update gate (witnessed by `_gate`), so
/// at most one apply per graph is in flight. Returns the JSON body the
/// synchronous 200 response carries.
pub(crate) fn apply_update(
    state: &ServerState,
    name: &str,
    cell: &GraphCell,
    _gate: &MutexGuard<'_, ()>,
    batch: &BatchUpdate,
    strategy: DynamicStrategy,
) -> Result<Json, ApiError> {
    // Updates to one graph are serialized through the cell's update
    // gate, NOT by holding the entry lock across the apply: the entry
    // lock is taken only to snapshot the graph and to publish the
    // result, so readers — including the event-loop reactor's inline
    // handlers, which must never block — wait microseconds at most
    // even while a seconds-long incremental refresh is in flight.
    let (old_graph, old_epoch) = {
        let entry = cell.lock();
        (Arc::clone(&entry.graph), entry.epoch)
    };
    let new_epoch = old_epoch + 1;
    let seeded = state
        .cache
        .latest(name)
        .filter(|(key, _)| key.epoch == old_epoch)
        .map(|(_, partition)| partition);

    let started = Instant::now();
    let mut refreshed = None;
    let new_graph = match &seeded {
        Some(partition) => {
            let config = partition
                .request
                .to_config()
                .map_err(ApiError::bad_request)?;
            let mut dynamic = DynamicLeiden::from_state(
                old_graph.as_ref().clone(),
                partition.membership.as_ref().clone(),
                config,
                strategy,
            )
            .map_err(ApiError::bad_request)?;
            // Incremental refreshes reuse the same pooled arenas as the
            // detection workers, so update batches stay allocation-free
            // on the Leiden hot path too.
            let mut workspace = state.jobs.workspaces_for(name).checkout();
            let alloc_before = gve_prim::alloc_count::snapshot();
            let result = dynamic.apply_in(batch, &mut workspace);
            state
                .jobs
                .stats
                .core_allocs
                .add(gve_prim::alloc_count::snapshot().allocs_since(&alloc_before));
            refreshed = Some((result, partition.request.clone()));
            dynamic.graph().clone()
        }
        None => apply_batch(&old_graph, batch),
    };
    let seconds = started.elapsed().as_secs_f64();

    // Write-ahead ordering: the batch is made durable BEFORE the new
    // epoch is published. A crash after the fsync replays the batch on
    // restart; a crash before it leaves the old epoch visible — either
    // way memory and disk agree.
    if let Some(durability) = &state.durability {
        if let Err(e) = durability.append_batch(name, new_epoch, batch, &new_graph) {
            return Err(ApiError::new(
                500,
                format!("WAL append failed for '{name}': {e}"),
            ));
        }
    }

    let graph = {
        let mut entry = cell.lock();
        entry.graph = Arc::new(new_graph);
        entry.epoch = new_epoch;
        entry.batches_applied += 1;
        Arc::clone(&entry.graph)
    };

    state.updates.batches_applied.inc();
    state
        .updates
        .edges_inserted
        .add(batch.insertions.len() as u64);
    state
        .updates
        .edges_deleted
        .add(batch.deletions.len() as u64);

    let mut fields = vec![
        ("graph".to_string(), Json::from(name)),
        ("epoch".to_string(), Json::from(new_epoch)),
        ("vertices".to_string(), Json::from(graph.num_vertices())),
        ("arcs".to_string(), Json::from(graph.num_arcs())),
        ("insertions".to_string(), Json::from(batch.insertions.len())),
        ("deletions".to_string(), Json::from(batch.deletions.len())),
        ("strategy".to_string(), Json::from(strategy_label(strategy))),
        ("seconds".to_string(), Json::from(seconds)),
    ];
    if let Some((result, detect_request)) = refreshed {
        let modularity = gve_quality::modularity(&graph, &result.membership);
        state.cache.insert(
            crate::cache::PartitionKey {
                graph: name.to_string(),
                epoch: new_epoch,
                fingerprint: detect_request.fingerprint(),
            },
            CachedPartition {
                membership: Arc::new(result.membership),
                num_communities: result.num_communities,
                modularity,
                seconds,
                origin: PartitionOrigin::IncrementalRefresh,
                request: detect_request,
            },
        );
        state.updates.incremental_refreshes.inc();
        fields.push(("refreshed".to_string(), Json::from(true)));
        fields.push((
            "num_communities".to_string(),
            Json::from(result.num_communities),
        ));
        fields.push(("modularity".to_string(), Json::from(modularity)));
    } else {
        fields.push(("refreshed".to_string(), Json::from(false)));
    }
    state.cache.evict_stale(name, new_epoch);
    Ok(Json::Obj(fields))
}

// ----------------------------------------------------------------- delta

/// `GET /graphs/{name}/delta?since=E` — membership changes since epoch
/// `E`, or `resync: true` when `E` fell off the bounded delta ring.
fn delta(state: &ServerState, name: &str, request: &Request) -> Result<Response, ApiError> {
    let since: u64 = request
        .query_param("since")
        .ok_or_else(|| ApiError::bad_request("missing required query parameter 'since'"))?
        .parse()
        .map_err(|_| ApiError::bad_request("'since' must be a non-negative integer epoch"))?;
    // Distinguish "unknown graph" (404) from "no partition yet".
    state.registry.entry(name)?;
    match state.delta.since(name, since) {
        DeltaAnswer::NoPartition => Err(ApiError::new(
            404,
            format!("no partition has been published for graph '{name}'"),
        )),
        DeltaAnswer::UpToDate { epoch } => Ok(ok(
            200,
            Json::obj([
                ("graph", Json::from(name)),
                ("epoch", Json::from(epoch)),
                ("since", Json::from(since)),
                ("resync", Json::from(false)),
                ("changes", Json::Arr(Vec::new())),
            ]),
        )),
        DeltaAnswer::Changes { epoch, changes } => {
            let listed: Vec<Json> = changes
                .iter()
                .map(|&(v, community)| {
                    Json::Arr(vec![Json::from(v as usize), Json::from(community as usize)])
                })
                .collect();
            Ok(ok(
                200,
                Json::obj([
                    ("graph", Json::from(name)),
                    ("epoch", Json::from(epoch)),
                    ("since", Json::from(since)),
                    ("resync", Json::from(false)),
                    ("changes", Json::Arr(listed)),
                ]),
            ))
        }
        DeltaAnswer::Resync { epoch } => Ok(ok(
            200,
            Json::obj([
                ("graph", Json::from(name)),
                ("epoch", Json::from(epoch)),
                ("since", Json::from(since)),
                ("resync", Json::from(true)),
                ("changes", Json::Arr(Vec::new())),
            ]),
        )),
    }
}

fn strategy_label(strategy: DynamicStrategy) -> &'static str {
    match strategy {
        DynamicStrategy::FullStatic => "full-static",
        DynamicStrategy::NaiveDynamic => "naive",
        DynamicStrategy::DeltaScreening => "delta-screening",
        DynamicStrategy::DynamicFrontier => "dynamic-frontier",
    }
}

// ----------------------------------------------------------------- stats

fn stats(state: &ServerState) -> Response {
    let graphs: Vec<Json> = state
        .registry
        .names()
        .iter()
        .filter_map(|name| graph_json(state, name).ok())
        .collect();
    let body = Json::obj([
        (
            "uptime_seconds",
            Json::from(state.started.elapsed().as_secs_f64()),
        ),
        ("graphs", Json::Arr(graphs)),
        (
            "jobs",
            Json::obj([
                ("submitted", Json::from(state.jobs.stats.submitted.get())),
                ("completed", Json::from(state.jobs.stats.completed.get())),
                ("failed", Json::from(state.jobs.stats.failed.get())),
                (
                    "full_detections",
                    Json::from(state.jobs.stats.full_detections.get()),
                ),
                (
                    "queue_depth",
                    Json::from(state.jobs.stats.queue_depth.get()),
                ),
                ("records", Json::from(state.jobs.len())),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("hits", Json::from(state.cache.stats.hits.get())),
                ("misses", Json::from(state.cache.stats.misses.get())),
                ("insertions", Json::from(state.cache.stats.insertions.get())),
                ("evictions", Json::from(state.cache.stats.evictions.get())),
                ("resident", Json::from(state.cache.len())),
            ]),
        ),
        (
            "updates",
            Json::obj([
                (
                    "batches_applied",
                    Json::from(state.updates.batches_applied.get()),
                ),
                (
                    "incremental_refreshes",
                    Json::from(state.updates.incremental_refreshes.get()),
                ),
                (
                    "edges_inserted",
                    Json::from(state.updates.edges_inserted.get()),
                ),
                (
                    "edges_deleted",
                    Json::from(state.updates.edges_deleted.get()),
                ),
            ]),
        ),
    ]);
    ok(200, body)
}

/// Prometheus text exposition (format 0.0.4) of every metric the
/// subsystems registered at boot, plus the per-endpoint latency
/// histograms `handle` creates on first use.
fn metrics(state: &ServerState) -> Response {
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: state.metrics.render().into_bytes(),
    }
}
