//! Per-graph durability: write-ahead log + periodic binary snapshots.
//!
//! Opted into with `gve serve --data-dir`; the memory-only registry
//! stays the default. The layout under the data dir is one directory
//! per graph (names are path-safe by [`crate::registry::validate_name`]):
//!
//! ```text
//! <data-dir>/<name>/meta              source label, one line of text
//! <data-dir>/<name>/snapshot-<E>.gveg binary CSR at epoch E
//! <data-dir>/<name>/wal.log           records appended since <E>
//! ```
//!
//! Every WAL record is length-prefixed and checksummed:
//!
//! ```text
//! u32  payload length (LE)
//! u64  FNV-1a of the payload (LE)
//! ...  payload, first byte = record kind
//! ```
//!
//! Kinds: `1` Register (source label; head of a registration-time WAL),
//! `2` UpdateBatch (new epoch + edge edits), `3` Partition (a cached
//! partition current at its epoch), `4` EpochBump (head of a
//! compaction-time WAL, cross-checking the snapshot epoch it follows).
//!
//! **Write-ahead ordering.** An update batch is appended — and, under
//! the default fsync policy, synced — *before* the new graph/epoch is
//! published to the registry, so every state a client can observe is
//! recoverable. Partitions are derived data (recomputable by a detect
//! job) and are logged best-effort *after* cache publish.
//!
//! **Fsync policy.** `fsync = true` (default) syncs after every append:
//! an acknowledged batch survives `kill -9`. `fsync = false` leaves
//! records in the OS page cache — faster, and still crash-consistent
//! (the checksummed tail is dropped on recovery), but acknowledged
//! batches written after the last sync may be lost.
//!
//! **Compaction.** Every [`DurabilityConfig::snapshot_every`] appended
//! records the graph is snapshotted (`tmp` + rename, so a torn write
//! leaves the previous snapshot intact), the WAL is restarted with a
//! single EpochBump record, and older snapshots are deleted.
//!
//! **Recovery** loads the newest decodable snapshot, then replays the
//! WAL: batch records at epochs the snapshot already covers are
//! skipped, a truncated or corrupt tail is tolerated (dropped and
//! counted in `gve_wal_tail_records_dropped_total`), and partition
//! records matching the final epoch re-seed the partition cache.

use crate::cache::{CachedPartition, PartitionKey, PartitionOrigin};
use crate::jobs::DetectRequest;
use gve_dynamic::{apply_batch, BatchUpdate};
use gve_graph::io::binary;
use gve_graph::{CsrGraph, VertexId};
use gve_obs::{Counter, MetricsRegistry};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Record kind tags (first payload byte).
const KIND_REGISTER: u8 = 1;
const KIND_BATCH: u8 = 2;
const KIND_PARTITION: u8 = 3;
const KIND_EPOCH_BUMP: u8 = 4;

/// Upper bound on a single record payload. Far above any real record
/// (the largest are partition memberships, 4 bytes/vertex); its job is
/// to reject garbage lengths from a corrupt prefix before allocating.
const MAX_RECORD_BYTES: u32 = 1 << 30;

/// FNV-1a — the same stable hash family the registry and cache use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Durability tuning, carried from `ServeConfig`.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root data directory; one subdirectory per graph.
    pub root: PathBuf,
    /// Snapshot + restart the WAL after this many appended records.
    pub snapshot_every: usize,
    /// Sync every append to disk (see the module docs for the policy).
    pub fsync: bool,
}

impl DurabilityConfig {
    /// Defaults for a given root: snapshot every 64 records, fsync on.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            snapshot_every: 64,
            fsync: true,
        }
    }
}

/// Counters exported under `gve_wal_*`.
#[derive(Debug, Clone, Default)]
pub struct WalStats {
    /// Records appended (all kinds).
    pub records_appended: Counter,
    /// Payload bytes appended.
    pub bytes_appended: Counter,
    /// Snapshots written by compaction or registration.
    pub snapshots_written: Counter,
    /// Graphs restored by recovery.
    pub recovered_graphs: Counter,
    /// Valid records replayed by recovery.
    pub recovered_records: Counter,
    /// Truncated or corrupt tail records dropped by recovery.
    pub tail_records_dropped: Counter,
}

impl WalStats {
    /// Registers the counters with `registry`.
    pub fn attach_to(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "gve_wal_records_total",
            "WAL records appended (all kinds).",
            &[],
            &self.records_appended,
        );
        registry.register_counter(
            "gve_wal_bytes_total",
            "WAL payload bytes appended.",
            &[],
            &self.bytes_appended,
        );
        registry.register_counter(
            "gve_wal_snapshots_total",
            "Graph snapshots written (compaction + registration).",
            &[],
            &self.snapshots_written,
        );
        registry.register_counter(
            "gve_wal_recovered_graphs_total",
            "Graphs restored from disk at startup.",
            &[],
            &self.recovered_graphs,
        );
        registry.register_counter(
            "gve_wal_recovered_records_total",
            "Valid WAL records replayed at startup.",
            &[],
            &self.recovered_records,
        );
        registry.register_counter(
            "gve_wal_tail_records_dropped_total",
            "Truncated or corrupt WAL tail records dropped at startup.",
            &[],
            &self.tail_records_dropped,
        );
    }
}

/// Open WAL handle for one graph, behind its per-graph lock.
#[derive(Debug)]
struct GraphWal {
    file: File,
    records_since_snapshot: usize,
}

/// The store: one WAL + snapshot chain per registered graph.
#[derive(Debug)]
pub struct DurabilityStore {
    config: DurabilityConfig,
    /// Brief-hold map of per-graph WAL handles. Never held while doing
    /// IO — fetch the `Arc`, drop this lock, then lock the graph's WAL.
    graphs: Mutex<HashMap<String, Arc<Mutex<GraphWal>>>>,
    /// Counter block (public for `/stats` and tests).
    pub stats: WalStats,
}

/// A partition restored from partition records, ready for the cache.
#[derive(Debug)]
pub struct RecoveredPartition {
    /// Cache key (epoch equals the recovered graph epoch).
    pub key: PartitionKey,
    /// The partition itself.
    pub partition: CachedPartition,
}

/// One graph restored by [`DurabilityStore::recover`].
#[derive(Debug)]
pub struct RecoveredGraph {
    /// Registered name (the directory name).
    pub name: String,
    /// Graph state after snapshot + WAL replay.
    pub graph: CsrGraph,
    /// Epoch after replay.
    pub epoch: u64,
    /// Source label from the `meta` file.
    pub source: String,
    /// Tail records dropped while replaying this graph's WAL.
    pub tail_dropped: u64,
    /// Partitions current at `epoch`, for re-seeding the cache.
    pub partitions: Vec<RecoveredPartition>,
}

impl DurabilityStore {
    /// Opens (creating if needed) the store rooted at `config.root`.
    pub fn open(config: DurabilityConfig) -> io::Result<Self> {
        fs::create_dir_all(&config.root)?;
        Ok(Self {
            config,
            graphs: Mutex::new(HashMap::new()),
            stats: WalStats::default(),
        })
    }

    /// The root data directory.
    pub fn root(&self) -> &Path {
        &self.config.root
    }

    fn graph_dir(&self, name: &str) -> PathBuf {
        self.config.root.join(name)
    }

    fn wal_handle(&self, name: &str) -> io::Result<Arc<Mutex<GraphWal>>> {
        let mut graphs = self.graphs.lock().expect("wal map poisoned");
        if let Some(handle) = graphs.get(name) {
            return Ok(Arc::clone(handle));
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.graph_dir(name).join("wal.log"))?;
        let handle = Arc::new(Mutex::new(GraphWal {
            file,
            records_since_snapshot: 0,
        }));
        graphs.insert(name.to_string(), Arc::clone(&handle));
        Ok(handle)
    }

    fn lock_wal<'a>(&self, handle: &'a Mutex<GraphWal>) -> MutexGuard<'a, GraphWal> {
        match handle.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends one record (and syncs it, per policy) to an open WAL.
    fn append(&self, wal: &mut GraphWal, payload: &[u8]) -> io::Result<()> {
        debug_assert!(payload.len() < MAX_RECORD_BYTES as usize);
        let mut framed = Vec::with_capacity(12 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&fnv1a(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        wal.file.write_all(&framed)?;
        if self.config.fsync {
            wal.file.sync_data()?;
        }
        wal.records_since_snapshot += 1;
        self.stats.records_appended.inc();
        self.stats.bytes_appended.add(payload.len() as u64);
        Ok(())
    }

    /// Writes `snapshot-<epoch>.gveg` atomically (tmp + rename).
    fn write_snapshot(&self, name: &str, graph: &CsrGraph, epoch: u64) -> io::Result<()> {
        let dir = self.graph_dir(name);
        let tmp = dir.join("snapshot.tmp");
        {
            let mut file = File::create(&tmp)?;
            binary::write_binary(graph, &mut file)?;
            if self.config.fsync {
                file.sync_data()?;
            }
        }
        fs::rename(&tmp, dir.join(format!("snapshot-{epoch}.gveg")))?;
        self.stats.snapshots_written.inc();
        Ok(())
    }

    /// Records a fresh registration: graph directory, `meta` with the
    /// source label, the epoch-0 snapshot, and a WAL opened with a
    /// Register record at its head.
    pub fn register_graph(&self, name: &str, graph: &CsrGraph, source: &str) -> io::Result<()> {
        let dir = self.graph_dir(name);
        fs::create_dir_all(&dir)?;
        fs::write(dir.join("meta"), source)?;
        self.write_snapshot(name, graph, 0)?;
        let handle = self.wal_handle(name)?;
        let mut wal = self.lock_wal(&handle);
        let mut payload = vec![KIND_REGISTER];
        put_bytes(&mut payload, source.as_bytes());
        self.append(&mut wal, &payload)
    }

    /// Logs one applied update batch. Called **before** the new
    /// graph/epoch is published; `graph` is the post-batch graph, used
    /// when this append crosses the compaction threshold.
    pub fn append_batch(
        &self,
        name: &str,
        new_epoch: u64,
        batch: &BatchUpdate,
        graph: &CsrGraph,
    ) -> io::Result<()> {
        let handle = self.wal_handle(name)?;
        let mut wal = self.lock_wal(&handle);
        let mut payload = Vec::with_capacity(
            1 + 8 + 16 + 12 * batch.insertions.len() + 8 * batch.deletions.len(),
        );
        payload.push(KIND_BATCH);
        payload.extend_from_slice(&new_epoch.to_le_bytes());
        payload.extend_from_slice(&(batch.insertions.len() as u64).to_le_bytes());
        for &(u, v, w) in &batch.insertions {
            payload.extend_from_slice(&u.to_le_bytes());
            payload.extend_from_slice(&v.to_le_bytes());
            payload.extend_from_slice(&w.to_le_bytes());
        }
        payload.extend_from_slice(&(batch.deletions.len() as u64).to_le_bytes());
        for &(u, v) in &batch.deletions {
            payload.extend_from_slice(&u.to_le_bytes());
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.append(&mut wal, &payload)?;
        if wal.records_since_snapshot >= self.config.snapshot_every.max(1) {
            self.compact(name, &mut wal, graph, new_epoch)?;
        }
        Ok(())
    }

    /// Logs a partition current at its epoch (best-effort derived data;
    /// see the module docs).
    pub fn append_partition(
        &self,
        key: &PartitionKey,
        partition: &CachedPartition,
    ) -> io::Result<()> {
        let handle = self.wal_handle(&key.graph)?;
        let mut wal = self.lock_wal(&handle);
        let request_json = partition.request.to_json().render();
        let mut payload =
            Vec::with_capacity(64 + request_json.len() + 4 * partition.membership.len());
        payload.push(KIND_PARTITION);
        payload.extend_from_slice(&key.epoch.to_le_bytes());
        payload.extend_from_slice(&key.fingerprint.to_le_bytes());
        payload.push(match partition.origin {
            PartitionOrigin::Detection => 0,
            PartitionOrigin::IncrementalRefresh => 1,
        });
        payload.extend_from_slice(&(partition.num_communities as u64).to_le_bytes());
        payload.extend_from_slice(&partition.modularity.to_le_bytes());
        payload.extend_from_slice(&partition.seconds.to_le_bytes());
        put_bytes(&mut payload, request_json.as_bytes());
        payload.extend_from_slice(&(partition.membership.len() as u64).to_le_bytes());
        for &community in partition.membership.iter() {
            payload.extend_from_slice(&community.to_le_bytes());
        }
        self.append(&mut wal, &payload)
    }

    /// Snapshot the graph at `epoch` and restart the WAL with a single
    /// EpochBump record. Crash-safe at every step: the snapshot and the
    /// fresh WAL are both staged to `tmp` files and renamed over, and
    /// replay skips batch records the snapshot already covers.
    fn compact(
        &self,
        name: &str,
        wal: &mut GraphWal,
        graph: &CsrGraph,
        epoch: u64,
    ) -> io::Result<()> {
        self.write_snapshot(name, graph, epoch)?;
        let dir = self.graph_dir(name);
        let tmp = dir.join("wal.tmp");
        let mut payload = vec![KIND_EPOCH_BUMP];
        payload.extend_from_slice(&epoch.to_le_bytes());
        let mut framed = Vec::with_capacity(12 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&framed)?;
            if self.config.fsync {
                file.sync_data()?;
            }
        }
        fs::rename(&tmp, dir.join("wal.log"))?;
        wal.file = OpenOptions::new().append(true).open(dir.join("wal.log"))?;
        wal.records_since_snapshot = 1;
        self.stats.records_appended.inc();
        // Older snapshots are now redundant; removal is best-effort.
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                if let Some(old) = snapshot_epoch(&entry.file_name().to_string_lossy()) {
                    if old < epoch {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(())
    }

    /// Drops all on-disk state for `name` (graph deregistered).
    pub fn remove_graph(&self, name: &str) -> io::Result<()> {
        self.graphs.lock().expect("wal map poisoned").remove(name);
        let dir = self.graph_dir(name);
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        Ok(())
    }

    /// Restores every graph under the data dir: newest decodable
    /// snapshot + WAL replay, tolerating a truncated or corrupt tail.
    /// Also opens each graph's WAL for appending, so the store is ready
    /// for writes when this returns.
    pub fn recover(&self) -> io::Result<Vec<RecoveredGraph>> {
        let mut recovered = Vec::new();
        let mut entries: Vec<_> = fs::read_dir(&self.config.root)?
            .filter_map(Result::ok)
            .filter(|e| e.path().is_dir())
            .collect();
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let name = entry.file_name().to_string_lossy().to_string();
            match self.recover_graph(&name, &entry.path()) {
                Ok(graph) => {
                    self.stats.recovered_graphs.inc();
                    recovered.push(graph);
                }
                Err(e) => {
                    // A directory with no decodable snapshot is not a
                    // graph we can serve; leave it on disk for manual
                    // inspection rather than failing the whole boot.
                    eprintln!("gve-serve: skipping unrecoverable graph '{name}': {e}");
                }
            }
        }
        Ok(recovered)
    }

    fn recover_graph(&self, name: &str, dir: &Path) -> io::Result<RecoveredGraph> {
        let source = fs::read_to_string(dir.join("meta"))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|_| "recovered".to_string());
        // Newest decodable snapshot wins; torn or corrupt snapshot
        // files fall back to the next-newest.
        let mut snapshot_epochs: Vec<u64> = fs::read_dir(dir)?
            .filter_map(Result::ok)
            .filter_map(|e| snapshot_epoch(&e.file_name().to_string_lossy()))
            .collect();
        snapshot_epochs.sort_unstable_by(|a, b| b.cmp(a));
        let mut snapshot = None;
        for &epoch in &snapshot_epochs {
            let path = dir.join(format!("snapshot-{epoch}.gveg"));
            if let Ok(graph) = File::open(&path)
                .map_err(|e| e.to_string())
                .and_then(|f| binary::read_binary(f).map_err(|e| e.to_string()))
            {
                snapshot = Some((graph, epoch));
                break;
            }
        }
        let (mut graph, snapshot_epoch) = snapshot
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no decodable snapshot"))?;
        let mut epoch = snapshot_epoch;

        // Replay the WAL past the snapshot.
        let mut raw = Vec::new();
        if let Ok(mut file) = File::open(dir.join("wal.log")) {
            file.read_to_end(&mut raw)?;
        }
        let mut cursor = 0usize;
        let mut tail_dropped = 0u64;
        // Keyed by fingerprint, last record wins; filtered to the final
        // epoch once replay finishes.
        let mut partitions: HashMap<u64, (u64, CachedPartition)> = HashMap::new();
        while cursor < raw.len() {
            let Some((payload, next)) = read_record(&raw, cursor) else {
                tail_dropped += 1;
                break;
            };
            cursor = next;
            match parse_record(payload) {
                Some(Record::Register) => {}
                Some(Record::EpochBump(bumped)) => epoch = epoch.max(bumped),
                Some(Record::Batch { new_epoch, batch }) => {
                    // Batches the snapshot already folded in are skipped;
                    // replay must be idempotent across compaction races.
                    if new_epoch > epoch {
                        graph = apply_batch(&graph, &batch);
                        epoch = new_epoch;
                    }
                }
                Some(Record::Partition {
                    epoch: partition_epoch,
                    fingerprint,
                    partition,
                }) => {
                    partitions.insert(fingerprint, (partition_epoch, partition));
                }
                None => {
                    // Checksummed but unparseable: a kind from a future
                    // version, or corruption the checksum missed. Stop
                    // here — everything after is suspect.
                    tail_dropped += 1;
                    break;
                }
            }
            self.stats.recovered_records.inc();
        }
        self.stats.tail_records_dropped.add(tail_dropped);
        // Truncate the dropped tail so future appends extend a valid
        // prefix instead of burying garbage mid-log.
        if tail_dropped > 0 {
            let file = OpenOptions::new().write(true).open(dir.join("wal.log"))?;
            file.set_len(cursor as u64)?;
        }

        let wal_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("wal.log"))?;
        let mut records = 0usize;
        let mut scan = 0usize;
        while let Some((_, next)) = read_record(&raw[..cursor], scan) {
            records += 1;
            scan = next;
        }
        self.graphs.lock().expect("wal map poisoned").insert(
            name.to_string(),
            Arc::new(Mutex::new(GraphWal {
                file: wal_file,
                records_since_snapshot: records,
            })),
        );

        let partitions = partitions
            .into_iter()
            .filter(|(_, (partition_epoch, _))| *partition_epoch == epoch)
            .map(
                |(fingerprint, (partition_epoch, partition))| RecoveredPartition {
                    key: PartitionKey {
                        graph: name.to_string(),
                        epoch: partition_epoch,
                        fingerprint,
                    },
                    partition,
                },
            )
            .collect();
        Ok(RecoveredGraph {
            name: name.to_string(),
            graph,
            epoch,
            source,
            tail_dropped,
            partitions,
        })
    }
}

/// `snapshot-<epoch>.gveg` → `epoch`.
fn snapshot_epoch(file_name: &str) -> Option<u64> {
    file_name
        .strip_prefix("snapshot-")?
        .strip_suffix(".gveg")?
        .parse()
        .ok()
}

/// One frame: `(payload, next_cursor)`, or `None` on a truncated or
/// checksum-failing tail.
fn read_record(raw: &[u8], cursor: usize) -> Option<(&[u8], usize)> {
    let header = raw.get(cursor..cursor + 12)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if len == 0 || len > MAX_RECORD_BYTES {
        return None;
    }
    let checksum = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let start = cursor + 12;
    let payload = raw.get(start..start + len as usize)?;
    if fnv1a(payload) != checksum {
        return None;
    }
    Some((payload, start + len as usize))
}

/// A parsed WAL payload.
enum Record {
    Register,
    Batch {
        new_epoch: u64,
        batch: BatchUpdate,
    },
    Partition {
        epoch: u64,
        fingerprint: u64,
        partition: CachedPartition,
    },
    EpochBump(u64),
}

fn parse_record(payload: &[u8]) -> Option<Record> {
    let mut cursor = Cursor::new(payload);
    match cursor.u8()? {
        KIND_REGISTER => {
            let _source = cursor.bytes()?;
            Some(Record::Register)
        }
        KIND_BATCH => {
            let new_epoch = cursor.u64()?;
            let mut batch = BatchUpdate::new();
            for _ in 0..cursor.u64()? {
                let u = cursor.u32()?;
                let v = cursor.u32()?;
                let w = f32::from_le_bytes(cursor.array()?);
                batch.insert(u, v, w);
            }
            for _ in 0..cursor.u64()? {
                batch.delete(cursor.u32()?, cursor.u32()?);
            }
            Some(Record::Batch { new_epoch, batch })
        }
        KIND_PARTITION => {
            let epoch = cursor.u64()?;
            let fingerprint = cursor.u64()?;
            let origin = match cursor.u8()? {
                0 => PartitionOrigin::Detection,
                1 => PartitionOrigin::IncrementalRefresh,
                _ => return None,
            };
            let num_communities = cursor.u64()? as usize;
            let modularity = f64::from_le_bytes(cursor.array()?);
            let seconds = f64::from_le_bytes(cursor.array()?);
            let request_json = String::from_utf8(cursor.bytes()?.to_vec()).ok()?;
            let request = crate::json::parse(&request_json)
                .ok()
                .and_then(|body| DetectRequest::from_json(&body).ok())?;
            // The fingerprint is derived from the request; a mismatch
            // means the record is inconsistent — drop it.
            if request.fingerprint() != fingerprint {
                return None;
            }
            let n = cursor.u64()? as usize;
            let mut membership: Vec<VertexId> = Vec::with_capacity(n.min(1 << 24));
            for _ in 0..n {
                membership.push(cursor.u32()?);
            }
            Some(Record::Partition {
                epoch,
                fingerprint,
                partition: CachedPartition {
                    membership: Arc::new(membership),
                    num_communities,
                    modularity,
                    seconds,
                    origin,
                    request,
                },
            })
        }
        KIND_EPOCH_BUMP => Some(Record::EpochBump(cursor.u64()?)),
        _ => None,
    }
}

/// Length-prefixed byte run (u32 length).
fn put_bytes(payload: &mut Vec<u8>, bytes: &[u8]) {
    payload.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    payload.extend_from_slice(bytes);
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.data.get(self.at..self.at.checked_add(n)?)?;
        self.at += n;
        Some(slice)
    }

    fn array<const N: usize>(&mut self) -> Option<[u8; N]> {
        self.take(N)?.try_into().ok()
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.array()?))
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(tag: &str) -> DurabilityStore {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gve-wal-test-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        DurabilityStore::open(DurabilityConfig::new(dir)).unwrap()
    }

    fn reopen(store: &DurabilityStore) -> DurabilityStore {
        DurabilityStore::open(store.config.clone()).unwrap()
    }

    fn path_graph() -> CsrGraph {
        GraphBuilder::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    }

    fn sample_partition(n: usize) -> CachedPartition {
        CachedPartition {
            membership: Arc::new((0..n as VertexId).map(|v| v % 2).collect()),
            num_communities: 2,
            modularity: 0.25,
            seconds: 0.01,
            origin: PartitionOrigin::IncrementalRefresh,
            request: DetectRequest::default(),
        }
    }

    /// Register + batches + partition, recover, compare against the
    /// same updates applied purely in memory.
    #[test]
    fn recovery_replays_to_the_in_memory_state() {
        let store = temp_store("roundtrip");
        let mut graph = path_graph();
        store.register_graph("g", &graph, "inline").unwrap();
        for epoch in 1..=5u64 {
            let mut batch = BatchUpdate::new();
            batch.insert(0, 2 + (epoch as VertexId % 2), epoch as f32);
            if epoch == 3 {
                batch.delete(1, 2);
            }
            graph = apply_batch(&graph, &batch);
            store.append_batch("g", epoch, &batch, &graph).unwrap();
        }
        let key = PartitionKey {
            graph: "g".into(),
            epoch: 5,
            fingerprint: DetectRequest::default().fingerprint(),
        };
        let partition = sample_partition(graph.num_vertices());
        store.append_partition(&key, &partition).unwrap();

        let recovered = reopen(&store).recover().unwrap();
        assert_eq!(recovered.len(), 1);
        let g = &recovered[0];
        assert_eq!(g.name, "g");
        assert_eq!(g.epoch, 5);
        assert_eq!(g.graph, graph);
        assert_eq!(g.source, "inline");
        assert_eq!(g.tail_dropped, 0);
        assert_eq!(g.partitions.len(), 1);
        assert_eq!(g.partitions[0].key, key);
        assert_eq!(g.partitions[0].partition.membership, partition.membership);
    }

    /// A partially written tail record (the crash case) is dropped and
    /// counted; everything before it survives.
    #[test]
    fn truncated_tail_record_is_dropped() {
        let store = temp_store("truncated");
        let mut graph = path_graph();
        store.register_graph("g", &graph, "inline").unwrap();
        for epoch in 1..=3u64 {
            let mut batch = BatchUpdate::new();
            batch.insert(0, 3, 1.0);
            graph = apply_batch(&graph, &batch);
            store.append_batch("g", epoch, &batch, &graph).unwrap();
        }
        let wal_path = store.graph_dir("g").join("wal.log");
        let len = fs::metadata(&wal_path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let reopened = reopen(&store);
        let recovered = reopened.recover().unwrap();
        assert_eq!(recovered[0].epoch, 2, "the torn epoch-3 record is gone");
        assert_eq!(recovered[0].tail_dropped, 1);
        assert_eq!(reopened.stats.tail_records_dropped.get(), 1);
        // The tail was truncated away: appending now extends a valid
        // prefix, and a second recovery sees a clean log.
        let mut batch = BatchUpdate::new();
        batch.insert(0, 3, 1.0);
        let resumed = apply_batch(&recovered[0].graph, &batch);
        reopened.append_batch("g", 3, &batch, &resumed).unwrap();
        let again = reopen(&store).recover().unwrap();
        assert_eq!(again[0].epoch, 3);
        assert_eq!(again[0].tail_dropped, 0);
    }

    /// Bit corruption in the middle of the newest record fails its
    /// checksum; the valid prefix still recovers.
    #[test]
    fn corrupt_checksum_drops_the_tail() {
        let store = temp_store("corrupt");
        let mut graph = path_graph();
        store.register_graph("g", &graph, "inline").unwrap();
        for epoch in 1..=2u64 {
            let mut batch = BatchUpdate::new();
            batch.insert(epoch as VertexId, 3, 1.0);
            graph = apply_batch(&graph, &batch);
            store.append_batch("g", epoch, &batch, &graph).unwrap();
        }
        let wal_path = store.graph_dir("g").join("wal.log");
        let mut raw = fs::read(&wal_path).unwrap();
        let last = raw.len() - 3;
        raw[last] ^= 0xFF;
        fs::write(&wal_path, &raw).unwrap();

        let recovered = reopen(&store).recover().unwrap();
        assert_eq!(recovered[0].epoch, 1);
        assert_eq!(recovered[0].tail_dropped, 1);
    }

    /// Crossing `snapshot_every` writes a snapshot, restarts the WAL,
    /// and deletes older snapshots — and recovery agrees with memory.
    #[test]
    fn compaction_snapshots_and_restarts_the_wal() {
        let mut store = temp_store("compact");
        store.config.snapshot_every = 4;
        let mut graph = path_graph();
        store.register_graph("g", &graph, "inline").unwrap();
        for epoch in 1..=9u64 {
            let mut batch = BatchUpdate::new();
            batch.insert(0, (epoch % 4) as VertexId, 0.5);
            graph = apply_batch(&graph, &batch);
            store.append_batch("g", epoch, &batch, &graph).unwrap();
        }
        let names: Vec<String> = fs::read_dir(store.graph_dir("g"))
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().to_string())
            .collect();
        let snapshots: Vec<&String> = names
            .iter()
            .filter(|n| n.starts_with("snapshot-"))
            .collect();
        assert_eq!(snapshots.len(), 1, "old snapshots deleted: {names:?}");
        assert!(store.stats.snapshots_written.get() >= 2);

        let recovered = reopen(&store).recover().unwrap();
        assert_eq!(recovered[0].epoch, 9);
        assert_eq!(recovered[0].graph, graph);
    }

    #[test]
    fn remove_graph_wipes_the_directory() {
        let store = temp_store("remove");
        store.register_graph("g", &path_graph(), "inline").unwrap();
        assert!(store.graph_dir("g").exists());
        store.remove_graph("g").unwrap();
        assert!(!store.graph_dir("g").exists());
        assert!(reopen(&store).recover().unwrap().is_empty());
    }

    /// Unsynced-tail policy: with fsync off, records still frame and
    /// recover correctly when they *did* reach disk.
    #[test]
    fn os_buffered_mode_still_recovers_flushed_records() {
        let mut store = temp_store("nofsync");
        store.config.fsync = false;
        let mut graph = path_graph();
        store.register_graph("g", &graph, "inline").unwrap();
        let mut batch = BatchUpdate::new();
        batch.insert(0, 3, 2.0);
        graph = apply_batch(&graph, &batch);
        store.append_batch("g", 1, &batch, &graph).unwrap();
        drop(store.graphs.lock().unwrap().remove("g")); // close the handle
        let recovered = reopen(&store).recover().unwrap();
        assert_eq!(recovered[0].epoch, 1);
        assert_eq!(recovered[0].graph, graph);
    }
}
