//! Minimal JSON value, parser and writer.
//!
//! The service speaks JSON without pulling in `serde` — consistent with
//! the repo's from-scratch ethos and the no-new-runtime-deps constraint
//! of the offline build containers. Only what the wire format needs:
//! UTF-8 strings with standard escapes, `f64` numbers, arrays, objects
//! with preserved insertion order.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as an unsigned integer, when exactly integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(items: &[T]) -> Json {
        Json::Arr(items.iter().cloned().map(Into::into).collect())
    }
}

impl From<BTreeMap<String, Json>> for Json {
    fn from(map: BTreeMap<String, Json>) -> Json {
        Json::Obj(map.into_iter().collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document (must consume all non-whitespace input).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing data"));
    }
    Ok(value)
}

fn err(at: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        at,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == what {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", what as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-') | Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(err(*pos, format!("unexpected character '{}'", c as char))),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, format!("invalid number '{text}'")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_documents() {
        let doc = Json::obj([
            ("name", Json::from("web-1")),
            ("epoch", Json::from(3u64)),
            ("tags", Json::from(vec!["a", "b"])),
            (
                "nested",
                Json::obj([("pi", Json::from(3.25)), ("ok", Json::from(true))]),
            ),
            ("nothing", Json::Null),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = parse(" { \"a\\n\\\"b\" : [ 1 , -2.5e1 , null , true ] } ").unwrap();
        assert_eq!(parsed.get("a\n\"b").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            parsed.get("a\n\"b").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-25.0)
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from(2.5).to_string(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("'single'").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn as_u64_guards_integrality() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn unicode_escape_roundtrip() {
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        let control = Json::Str("\u{0001}".to_string());
        assert_eq!(parse(&control.to_string()).unwrap(), control);
    }
}
