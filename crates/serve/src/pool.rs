//! Per-engine pooling of [`PassWorkspace`] arenas.
//!
//! Every full detection needs a workspace — membership/sigma atomics,
//! renumbering scratch, aggregation CSR buffers — sized to the largest
//! graph it has seen. Allocating one per request would throw away the
//! whole point of the pass-resident arena, so the job engine keeps a
//! small free list here: a worker checks a workspace out for the
//! duration of one detection and the RAII guard returns it on drop
//! (including on panic, which is safe because every run reinitializes
//! the prefixes it reads). Steady state is one resident workspace per
//! concurrently active worker and **zero** Leiden-hot-path allocations
//! per request once the arenas have grown to the serving graph sizes.

use gve_leiden::PassWorkspace;
use gve_obs::{Counter, Gauge, MetricsRegistry};
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// A free list of pass-resident workspaces shared by the worker pool.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<PassWorkspace>>,
    /// Workspaces handed out (reuses + fresh builds).
    pub checkouts: Counter,
    /// Workspaces built because the free list was empty.
    pub created: Counter,
    /// Workspaces currently parked in the free list.
    pub idle: Gauge,
}

impl WorkspacePool {
    /// An empty pool; workspaces are built lazily on first checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a workspace out, reusing a parked one when available.
    /// The guard returns it to the pool on drop.
    pub fn checkout(self: &Arc<Self>) -> PooledWorkspace {
        self.checkouts.inc();
        let reused = self.free.lock().expect("workspace pool poisoned").pop();
        if reused.is_some() {
            self.idle.dec();
        }
        let workspace = reused.unwrap_or_else(|| {
            self.created.inc();
            PassWorkspace::new()
        });
        PooledWorkspace {
            pool: Arc::clone(self),
            workspace: Some(workspace),
        }
    }

    /// Number of workspaces currently parked.
    pub fn idle_len(&self) -> usize {
        self.free.lock().expect("workspace pool poisoned").len()
    }

    /// Registers the pool's counters with `registry`.
    pub fn attach_to(&self, registry: &MetricsRegistry) {
        self.attach_with_labels(registry, &[]);
    }

    /// Registers the pool's counters under extra labels (the sharded
    /// job engine registers one pool per shard as `{shard="i"}`).
    pub fn attach_with_labels(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        registry.register_counter(
            "gve_workspace_checkouts_total",
            "Workspace checkouts by detection workers.",
            labels,
            &self.checkouts,
        );
        registry.register_counter(
            "gve_workspace_created_total",
            "Workspaces built because the free list was empty.",
            labels,
            &self.created,
        );
        registry.register_gauge(
            "gve_workspace_idle",
            "Workspaces currently parked in the free list.",
            labels,
            &self.idle,
        );
    }
}

/// RAII checkout of one [`PassWorkspace`]; derefs to the workspace and
/// returns it to its pool on drop.
#[derive(Debug)]
pub struct PooledWorkspace {
    pool: Arc<WorkspacePool>,
    workspace: Option<PassWorkspace>,
}

impl Deref for PooledWorkspace {
    type Target = PassWorkspace;
    fn deref(&self) -> &PassWorkspace {
        self.workspace.as_ref().expect("workspace taken")
    }
}

impl DerefMut for PooledWorkspace {
    fn deref_mut(&mut self) -> &mut PassWorkspace {
        self.workspace.as_mut().expect("workspace taken")
    }
}

impl Drop for PooledWorkspace {
    fn drop(&mut self) {
        if let Some(workspace) = self.workspace.take() {
            self.pool
                .free
                .lock()
                .expect("workspace pool poisoned")
                .push(workspace);
            self.pool.idle.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_workspaces() {
        let pool = Arc::new(WorkspacePool::new());
        {
            let mut first = pool.checkout();
            first.ensure(100, 400);
            assert!(first.capacity() >= 100);
        } // returned here
        assert_eq!(pool.idle_len(), 1);
        let second = pool.checkout();
        assert!(
            second.capacity() >= 100,
            "second checkout must reuse the grown arena"
        );
        assert_eq!(pool.created.get(), 1, "only one workspace ever built");
        assert_eq!(pool.checkouts.get(), 2);
        drop(second);
        assert_eq!(pool.idle.get(), 1.0);
    }

    #[test]
    fn concurrent_checkouts_build_distinct_workspaces() {
        let pool = Arc::new(WorkspacePool::new());
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.created.get(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.idle_len(), 2);
        // Both parked arenas are reusable.
        let _c = pool.checkout();
        let _d = pool.checkout();
        assert_eq!(pool.created.get(), 2, "no new builds after returns");
    }

    #[test]
    fn attach_to_exports_pool_metrics() {
        let pool = Arc::new(WorkspacePool::new());
        let registry = MetricsRegistry::new();
        pool.attach_to(&registry);
        let _ws = pool.checkout();
        let text = registry.render();
        assert!(text.contains("gve_workspace_checkouts_total 1"), "{text}");
        assert!(text.contains("gve_workspace_created_total 1"), "{text}");
        assert!(text.contains("gve_workspace_idle 0"), "{text}");
    }
}
