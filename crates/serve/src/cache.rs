//! Partition cache.
//!
//! Detection results are memoized under `(graph name, graph epoch,
//! config fingerprint)`. Identical queries against an unchanged graph
//! are answered without touching the job engine; an epoch bump (dynamic
//! update) naturally misses, and stale epochs are evicted eagerly so
//! the cache never grows with graph history. A per-graph **latest**
//! pointer backs the membership/community read endpoints, which want
//! "the current partition" without restating a config.

use crate::jobs::DetectRequest;
use gve_graph::VertexId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: which graph state and which detection config.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PartitionKey {
    /// Registered graph name.
    pub graph: String,
    /// Graph epoch the partition was computed against.
    pub epoch: u64,
    /// Fingerprint of the detection config.
    pub fingerprint: u64,
}

/// How a cached partition was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionOrigin {
    /// Full detection by a job-engine worker.
    Detection,
    /// Incremental refresh after a dynamic-update batch.
    IncrementalRefresh,
}

impl PartitionOrigin {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            PartitionOrigin::Detection => "detection",
            PartitionOrigin::IncrementalRefresh => "incremental-refresh",
        }
    }
}

/// A memoized detection result.
#[derive(Debug, Clone)]
pub struct CachedPartition {
    /// Dense community membership.
    pub membership: Arc<Vec<VertexId>>,
    /// Number of communities.
    pub num_communities: usize,
    /// Modularity at computation time.
    pub modularity: f64,
    /// Wall-clock seconds the computation took.
    pub seconds: f64,
    /// Full detection or incremental refresh.
    pub origin: PartitionOrigin,
    /// The request that produced this partition — kept so dynamic
    /// updates can refresh under the same configuration.
    pub request: DetectRequest,
}

/// Monotonic counters exported through `/stats`.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Detect requests answered from cache.
    pub hits: AtomicU64,
    /// Detect requests that had to compute.
    pub misses: AtomicU64,
    /// Partitions inserted (jobs + refreshes).
    pub insertions: AtomicU64,
    /// Entries evicted because their epoch went stale.
    pub evictions: AtomicU64,
}

/// The shared partition cache.
#[derive(Debug, Default)]
pub struct PartitionCache {
    entries: Mutex<HashMap<PartitionKey, Arc<CachedPartition>>>,
    latest: Mutex<HashMap<String, PartitionKey>>,
    /// Counter block (public for `/stats` reporting).
    pub stats: CacheStats,
}

impl PartitionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache lookup, counting a hit or miss.
    pub fn get(&self, key: &PartitionKey) -> Option<Arc<CachedPartition>> {
        let found = self
            .entries
            .lock()
            .expect("cache lock poisoned")
            .get(key)
            .cloned();
        // Relaxed: hit/miss tallies are monotonic counters read only
        // for reporting; nothing synchronizes on them.
        match &found {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Lookup without counting (used by read endpoints and the job
    /// engine's double-check, which are not "detect requests").
    pub fn peek(&self, key: &PartitionKey) -> Option<Arc<CachedPartition>> {
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .get(key)
            .cloned()
    }

    /// Inserts a partition and makes it the graph's latest.
    pub fn insert(&self, key: PartitionKey, partition: CachedPartition) -> Arc<CachedPartition> {
        let partition = Arc::new(partition);
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .insert(key.clone(), Arc::clone(&partition));
        self.latest
            .lock()
            .expect("latest lock poisoned")
            .insert(key.graph.clone(), key);
        // Relaxed: reporting-only counter, as in `get`.
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        partition
    }

    /// The most recent partition for `graph`, with its key.
    pub fn latest(&self, graph: &str) -> Option<(PartitionKey, Arc<CachedPartition>)> {
        let key = self
            .latest
            .lock()
            .expect("latest lock poisoned")
            .get(graph)
            .cloned()?;
        let partition = self.peek(&key)?;
        Some((key, partition))
    }

    /// Evicts every entry of `graph` whose epoch predates
    /// `current_epoch`. Called after an update batch bumps the epoch.
    pub fn evict_stale(&self, graph: &str, current_epoch: u64) -> usize {
        let mut entries = self.entries.lock().expect("cache lock poisoned");
        let before = entries.len();
        entries.retain(|key, _| key.graph != graph || key.epoch >= current_epoch);
        let evicted = before - entries.len();
        drop(entries);
        // Relaxed: reporting-only counter, as in `get`.
        self.stats
            .evictions
            .fetch_add(evicted as u64, Ordering::Relaxed);
        let mut latest = self.latest.lock().expect("latest lock poisoned");
        if let Some(key) = latest.get(graph) {
            if key.epoch < current_epoch {
                latest.remove(graph);
            }
        }
        evicted
    }

    /// Drops every entry of `graph` (graph deregistered).
    pub fn forget_graph(&self, graph: &str) {
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .retain(|key, _| key.graph != graph);
        self.latest
            .lock()
            .expect("latest lock poisoned")
            .remove(graph);
    }

    /// Number of resident partitions.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock poisoned").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(graph: &str, epoch: u64, fingerprint: u64) -> PartitionKey {
        PartitionKey {
            graph: graph.to_string(),
            epoch,
            fingerprint,
        }
    }

    fn partition(communities: usize) -> CachedPartition {
        CachedPartition {
            membership: Arc::new(vec![0; 4]),
            num_communities: communities,
            modularity: 0.5,
            seconds: 0.01,
            origin: PartitionOrigin::Detection,
            request: DetectRequest::default(),
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = PartitionCache::new();
        assert!(cache.get(&key("g", 0, 7)).is_none());
        cache.insert(key("g", 0, 7), partition(2));
        assert!(cache.get(&key("g", 0, 7)).is_some());
        assert!(
            cache.get(&key("g", 1, 7)).is_none(),
            "epoch is part of the key"
        );
        assert!(
            cache.get(&key("g", 0, 8)).is_none(),
            "fingerprint is part of the key"
        );
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats.misses.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn latest_tracks_most_recent_insert() {
        let cache = PartitionCache::new();
        cache.insert(key("g", 0, 1), partition(2));
        cache.insert(key("g", 0, 2), partition(3));
        let (k, p) = cache.latest("g").unwrap();
        assert_eq!(k.fingerprint, 2);
        assert_eq!(p.num_communities, 3);
        assert!(cache.latest("other").is_none());
    }

    #[test]
    fn stale_epochs_are_evicted() {
        let cache = PartitionCache::new();
        cache.insert(key("g", 0, 1), partition(2));
        cache.insert(key("g", 0, 2), partition(2));
        cache.insert(key("h", 0, 1), partition(2));
        cache.insert(key("g", 1, 1), partition(4));
        assert_eq!(cache.evict_stale("g", 1), 2);
        assert_eq!(cache.len(), 2);
        assert!(
            cache.peek(&key("h", 0, 1)).is_some(),
            "other graphs untouched"
        );
        let (k, p) = cache.latest("g").unwrap();
        assert_eq!((k.epoch, p.num_communities), (1, 4));
    }

    #[test]
    fn latest_cleared_when_its_epoch_goes_stale() {
        let cache = PartitionCache::new();
        cache.insert(key("g", 0, 1), partition(2));
        cache.evict_stale("g", 5);
        assert!(cache.latest("g").is_none());
        cache.insert(key("g", 5, 1), partition(2));
        cache.forget_graph("g");
        assert!(cache.latest("g").is_none());
        assert!(cache.is_empty());
    }
}
