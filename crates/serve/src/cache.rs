//! Partition cache.
//!
//! Detection results are memoized under `(graph name, graph epoch,
//! config fingerprint)`. Identical queries against an unchanged graph
//! are answered without touching the job engine; an epoch bump (dynamic
//! update) naturally misses, and stale epochs are evicted eagerly so
//! the cache never grows with graph history. A per-graph **latest**
//! pointer backs the membership/community read endpoints, which want
//! "the current partition" without restating a config.
//!
//! The entry table and the latest pointers live under **one** mutex:
//! with two, an `insert` that had stored its entry but not yet updated
//! `latest` could interleave with `evict_stale`, leaving `latest`
//! pointing at an evicted key forever (the read endpoints would then
//! 404 on a graph that has a perfectly good partition).

use crate::jobs::DetectRequest;
use gve_graph::VertexId;
use gve_obs::{Counter, MetricsRegistry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: which graph state and which detection config.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PartitionKey {
    /// Registered graph name.
    pub graph: String,
    /// Graph epoch the partition was computed against.
    pub epoch: u64,
    /// Fingerprint of the detection config.
    pub fingerprint: u64,
}

/// How a cached partition was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionOrigin {
    /// Full detection by a job-engine worker.
    Detection,
    /// Incremental refresh after a dynamic-update batch.
    IncrementalRefresh,
}

impl PartitionOrigin {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            PartitionOrigin::Detection => "detection",
            PartitionOrigin::IncrementalRefresh => "incremental-refresh",
        }
    }
}

/// A memoized detection result.
#[derive(Debug, Clone)]
pub struct CachedPartition {
    /// Dense community membership.
    pub membership: Arc<Vec<VertexId>>,
    /// Number of communities.
    pub num_communities: usize,
    /// Modularity at computation time.
    pub modularity: f64,
    /// Wall-clock seconds the computation took.
    pub seconds: f64,
    /// Full detection or incremental refresh.
    pub origin: PartitionOrigin,
    /// The request that produced this partition — kept so dynamic
    /// updates can refresh under the same configuration.
    pub request: DetectRequest,
}

/// Monotonic counters exported through `/stats` and `/metrics`.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Detect requests answered from cache.
    pub hits: Counter,
    /// Detect requests that had to compute.
    pub misses: Counter,
    /// Partitions inserted (jobs + refreshes).
    pub insertions: Counter,
    /// Entries evicted because their epoch went stale.
    pub evictions: Counter,
}

impl CacheStats {
    /// Registers the counters with `registry` under `gve_cache_*` names.
    pub fn attach_to(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "gve_cache_hits_total",
            "Detect requests answered from the partition cache.",
            &[],
            &self.hits,
        );
        registry.register_counter(
            "gve_cache_misses_total",
            "Detect requests that had to compute.",
            &[],
            &self.misses,
        );
        registry.register_counter(
            "gve_cache_insertions_total",
            "Partitions inserted into the cache (jobs + refreshes).",
            &[],
            &self.insertions,
        );
        registry.register_counter(
            "gve_cache_evictions_total",
            "Cache entries evicted because their epoch went stale.",
            &[],
            &self.evictions,
        );
    }
}

/// Entry table + latest pointers, guarded together so every public
/// operation is atomic with respect to both maps.
#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<PartitionKey, Arc<CachedPartition>>,
    latest: HashMap<String, PartitionKey>,
}

/// Callback invoked after every [`PartitionCache::insert`] publish —
/// the single choke point through which both producers (detect jobs and
/// incremental refreshes) flow, so durability logging and the delta
/// ring see every partition without either producer knowing they exist.
type InsertListener = Box<dyn Fn(&PartitionKey, &Arc<CachedPartition>) + Send + Sync>;

/// The shared partition cache.
#[derive(Default)]
pub struct PartitionCache {
    inner: Mutex<CacheInner>,
    /// Set at most once, at boot, *after* recovery has re-seeded the
    /// cache — recovered partitions must not be re-logged. Invoked
    /// outside the inner lock, so a listener doing IO (the WAL append)
    /// never blocks cache readers.
    listener: OnceLock<InsertListener>,
    /// Counter block (public for `/stats` reporting).
    pub stats: CacheStats,
}

impl std::fmt::Debug for PartitionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionCache")
            .field("resident", &self.len())
            .field("has_listener", &self.listener.get().is_some())
            .finish()
    }
}

impl PartitionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache lookup, counting a hit or miss.
    pub fn get(&self, key: &PartitionKey) -> Option<Arc<CachedPartition>> {
        let found = self
            .inner
            .lock()
            .expect("cache lock poisoned")
            .entries
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.stats.hits.inc(),
            None => self.stats.misses.inc(),
        };
        found
    }

    /// Lookup without counting (used by read endpoints and the job
    /// engine's double-check, which are not "detect requests").
    pub fn peek(&self, key: &PartitionKey) -> Option<Arc<CachedPartition>> {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .entries
            .get(key)
            .cloned()
    }

    /// Installs the insert listener. At most one listener may ever be
    /// installed; later calls are ignored (`OnceLock` semantics).
    pub fn set_listener(
        &self,
        listener: impl Fn(&PartitionKey, &Arc<CachedPartition>) + Send + Sync + 'static,
    ) {
        let _ = self.listener.set(Box::new(listener));
    }

    /// Inserts a partition and makes it the graph's latest. The entry
    /// and the latest pointer are published under one lock, so readers
    /// never observe a `latest` that does not resolve. The insert
    /// listener (durability + delta ring), when installed, runs after
    /// the lock releases.
    pub fn insert(&self, key: PartitionKey, partition: CachedPartition) -> Arc<CachedPartition> {
        let partition = Arc::new(partition);
        {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            inner.entries.insert(key.clone(), Arc::clone(&partition));
            inner.latest.insert(key.graph.clone(), key.clone());
        }
        self.stats.insertions.inc();
        if let Some(listener) = self.listener.get() {
            listener(&key, &partition);
        }
        partition
    }

    /// The most recent partition for `graph`, with its key.
    pub fn latest(&self, graph: &str) -> Option<(PartitionKey, Arc<CachedPartition>)> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        let key = inner.latest.get(graph)?.clone();
        let partition = inner.entries.get(&key).cloned()?;
        Some((key, partition))
    }

    /// Evicts every entry of `graph` whose epoch predates
    /// `current_epoch`. Called after an update batch bumps the epoch.
    pub fn evict_stale(&self, graph: &str, current_epoch: u64) -> usize {
        let evicted = {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            let before = inner.entries.len();
            inner
                .entries
                .retain(|key, _| key.graph != graph || key.epoch >= current_epoch);
            let evicted = before - inner.entries.len();
            if let Some(key) = inner.latest.get(graph) {
                if key.epoch < current_epoch {
                    inner.latest.remove(graph);
                }
            }
            evicted
        };
        self.stats.evictions.add(evicted as u64);
        evicted
    }

    /// Drops every entry of `graph` (graph deregistered).
    pub fn forget_graph(&self, graph: &str) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.entries.retain(|key, _| key.graph != graph);
        inner.latest.remove(graph);
    }

    /// Number of resident partitions.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .entries
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Invariant check: the latest pointer for `graph`, when present,
    /// resolves to a live entry. Always true with the single-lock
    /// layout; the old two-mutex layout could violate it permanently.
    #[cfg(test)]
    fn latest_resolves(&self, graph: &str) -> bool {
        let inner = self.inner.lock().expect("cache lock poisoned");
        match inner.latest.get(graph) {
            Some(key) => inner.entries.contains_key(key),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(graph: &str, epoch: u64, fingerprint: u64) -> PartitionKey {
        PartitionKey {
            graph: graph.to_string(),
            epoch,
            fingerprint,
        }
    }

    fn partition(communities: usize) -> CachedPartition {
        CachedPartition {
            membership: Arc::new(vec![0; 4]),
            num_communities: communities,
            modularity: 0.5,
            seconds: 0.01,
            origin: PartitionOrigin::Detection,
            request: DetectRequest::default(),
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = PartitionCache::new();
        assert!(cache.get(&key("g", 0, 7)).is_none());
        cache.insert(key("g", 0, 7), partition(2));
        assert!(cache.get(&key("g", 0, 7)).is_some());
        assert!(
            cache.get(&key("g", 1, 7)).is_none(),
            "epoch is part of the key"
        );
        assert!(
            cache.get(&key("g", 0, 8)).is_none(),
            "fingerprint is part of the key"
        );
        assert_eq!(cache.stats.hits.get(), 1);
        assert_eq!(cache.stats.misses.get(), 3);
    }

    #[test]
    fn latest_tracks_most_recent_insert() {
        let cache = PartitionCache::new();
        cache.insert(key("g", 0, 1), partition(2));
        cache.insert(key("g", 0, 2), partition(3));
        let (k, p) = cache.latest("g").unwrap();
        assert_eq!(k.fingerprint, 2);
        assert_eq!(p.num_communities, 3);
        assert!(cache.latest("other").is_none());
    }

    #[test]
    fn stale_epochs_are_evicted() {
        let cache = PartitionCache::new();
        cache.insert(key("g", 0, 1), partition(2));
        cache.insert(key("g", 0, 2), partition(2));
        cache.insert(key("h", 0, 1), partition(2));
        cache.insert(key("g", 1, 1), partition(4));
        assert_eq!(cache.evict_stale("g", 1), 2);
        assert_eq!(cache.len(), 2);
        assert!(
            cache.peek(&key("h", 0, 1)).is_some(),
            "other graphs untouched"
        );
        let (k, p) = cache.latest("g").unwrap();
        assert_eq!((k.epoch, p.num_communities), (1, 4));
    }

    #[test]
    fn latest_cleared_when_its_epoch_goes_stale() {
        let cache = PartitionCache::new();
        cache.insert(key("g", 0, 1), partition(2));
        cache.evict_stale("g", 5);
        assert!(cache.latest("g").is_none());
        cache.insert(key("g", 5, 1), partition(2));
        cache.forget_graph("g");
        assert!(cache.latest("g").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn attach_to_exports_cache_counters() {
        let cache = PartitionCache::new();
        let registry = MetricsRegistry::new();
        cache.stats.attach_to(&registry);
        cache.insert(key("g", 0, 1), partition(2));
        let _ = cache.get(&key("g", 0, 1));
        let text = registry.render();
        assert!(text.contains("gve_cache_hits_total 1"), "{text}");
        assert!(text.contains("gve_cache_insertions_total 1"), "{text}");
    }

    /// Regression test for the two-mutex race: `insert` used to publish
    /// the entry and the latest pointer under separate locks, so a
    /// concurrent `evict_stale` could land in the window, evict the
    /// just-inserted entry, and then have `insert` install a latest
    /// pointer at the evicted key — permanently, if a competing insert
    /// for a newer epoch had already finished. With the single-lock
    /// layout `latest_resolves` holds at every instant.
    #[test]
    fn latest_never_points_at_an_evicted_key() {
        use std::sync::atomic::{AtomicBool, Ordering};
        const ROUNDS: u64 = 2000;
        let cache = Arc::new(PartitionCache::new());
        let done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();

        // Inserter: one partition per epoch, epochs strictly rising.
        {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    cache.insert(key("g", i, i), partition(2));
                }
            }));
        }
        // Evictor: races the update-batch eviction sweep against the
        // inserter, repeatedly bumping the stale horizon.
        {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for e in 0..ROUNDS {
                    cache.evict_stale("g", e);
                    cache.latest("g");
                }
            }));
        }
        // Checker: the latest pointer must resolve at every instant.
        {
            let cache = Arc::clone(&cache);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                // Relaxed: test-only stop flag, no data guarded by it.
                while !done.load(Ordering::Relaxed) {
                    assert!(
                        cache.latest_resolves("g"),
                        "latest points at an evicted key"
                    );
                }
            }));
        }

        let checker = handles.pop().expect("checker handle");
        for h in handles {
            h.join().expect("cache race thread panicked");
        }
        done.store(true, Ordering::Relaxed);
        checker.join().expect("checker panicked");

        // Quiesced end state: the newest insert survived the sweeps and
        // is reachable through `latest`.
        assert!(cache.latest_resolves("g"));
        let (k, _) = cache.latest("g").expect("latest after quiesce");
        assert_eq!(k.epoch, ROUNDS - 1);
    }
}
