//! `gve-serve`: a resident community-detection service.
//!
//! The batch CLI answers one question per process: load a graph, run
//! GVE-Leiden, print. This crate keeps the expensive state *resident*
//! instead — graphs stay loaded, partitions stay cached, and edge
//! updates are folded in incrementally through `gve-dynamic` — behind a
//! deliberately dependency-free HTTP/1.1 + JSON surface built on
//! `std::net`:
//!
//! * [`registry`] — named graphs held as `Arc<CsrGraph>` snapshots with
//!   a monotone **epoch** bumped on every update batch;
//! * [`jobs`] — asynchronous detection: submit, poll, cancel, with a
//!   worker pool doing the computing;
//! * [`cache`] — partitions memoized by `(graph, epoch, config
//!   fingerprint)`; identical requests are instant cache hits;
//! * [`handlers`] + [`http`] + [`json`] — the wire layer.
//!
//! ```no_run
//! let server = gve_serve::Server::start(&gve_serve::ServeConfig::default()).unwrap();
//! println!("listening on 127.0.0.1:{}", server.port());
//! server.join();
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cache;
pub mod handlers;
pub mod http;
pub mod jobs;
pub mod json;
pub mod registry;

pub use http::client_request;

use cache::PartitionCache;
use jobs::JobEngine;
use registry::GraphRegistry;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Detection worker threads.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7461".to_string(),
            workers: 2,
        }
    }
}

/// Counters for the dynamic-update path, exported through `/stats`.
#[derive(Debug, Default)]
pub struct UpdateStats {
    /// Edge batches applied.
    pub batches_applied: AtomicU64,
    /// Batches that also refreshed a cached partition incrementally.
    pub incremental_refreshes: AtomicU64,
    /// Total edge insertions ingested.
    pub edges_inserted: AtomicU64,
    /// Total edge deletions ingested.
    pub edges_deleted: AtomicU64,
}

/// Shared state behind every connection thread.
pub struct ServerState {
    /// Named graphs.
    pub registry: Arc<GraphRegistry>,
    /// Memoized partitions.
    pub cache: Arc<PartitionCache>,
    /// Detection job engine.
    pub jobs: JobEngine,
    /// Update-path counters.
    pub updates: UpdateStats,
    /// Server start time (for `/stats` uptime).
    pub started: Instant,
}

impl ServerState {
    /// Builds the state and starts `workers` detection workers.
    pub fn new(workers: usize) -> Arc<Self> {
        let registry = Arc::new(GraphRegistry::new());
        let cache = Arc::new(PartitionCache::new());
        let jobs = JobEngine::start(Arc::clone(&registry), Arc::clone(&cache), workers);
        Arc::new(Self {
            registry,
            cache,
            jobs,
            updates: UpdateStats::default(),
            started: Instant::now(),
        })
    }
}

/// A running service: HTTP front end plus worker pool.
pub struct Server {
    http: http::HttpServer,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds and starts serving.
    pub fn start(config: &ServeConfig) -> std::io::Result<Server> {
        let state = ServerState::new(config.workers);
        let handler_state = Arc::clone(&state);
        let http = http::HttpServer::start(config.addr.as_str(), move |request| {
            handlers::handle(&handler_state, &request)
        })?;
        Ok(Server { http, state })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.http.port()
    }

    /// The shared state (tests inspect counters directly).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Blocks the calling thread forever (the accept loop and workers
    /// run on their own threads). Used by `gve serve`.
    pub fn join(&self) {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    /// Stops the HTTP front end and the worker pool.
    pub fn stop(&mut self) {
        self.http.stop();
        self.state.jobs.stop();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_boots_on_ephemeral_port_and_answers_health() {
        let mut server = Server::start(&ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
        })
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let (status, body) = client_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""), "{body}");
        let (status, _) = client_request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        server.stop();
    }
}
