//! `gve-serve`: a resident community-detection service.
//!
//! The batch CLI answers one question per process: load a graph, run
//! GVE-Leiden, print. This crate keeps the expensive state *resident*
//! instead — graphs stay loaded, partitions stay cached, and edge
//! updates are folded in incrementally through `gve-dynamic` — behind a
//! deliberately dependency-free HTTP/1.1 + JSON surface built on
//! `std::net`:
//!
//! * [`registry`] — named graphs held as `Arc<CsrGraph>` snapshots with
//!   a monotone **epoch** bumped on every update batch;
//! * [`jobs`] — asynchronous detection: submit, poll, cancel, with a
//!   worker pool doing the computing;
//! * [`cache`] — partitions memoized by `(graph, epoch, config
//!   fingerprint)`; identical requests are instant cache hits;
//! * [`handlers`] + [`http`] + [`json`] — the wire layer.
//!
//! Every subsystem registers its counters, gauges, and histograms with
//! one `gve_obs::MetricsRegistry`, served in Prometheus text format at
//! `GET /metrics` (the JSON `/stats` endpoint reads the same handles).
//!
//! ```no_run
//! let server = gve_serve::Server::start(&gve_serve::ServeConfig::default()).unwrap();
//! println!("listening on 127.0.0.1:{}", server.port());
//! server.join();
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cache;
pub mod delta;
pub mod handlers;
pub mod http;
pub mod ingest;
pub mod jobs;
pub mod json;
pub mod pool;
pub mod registry;
pub mod wal;

pub use http::client_request;
pub use pool::{PooledWorkspace, WorkspacePool};

use cache::PartitionCache;
use delta::DeltaRing;
use gve_obs::{Counter, MetricsRegistry};
use ingest::{IngestConfig, IngestQueue};
use jobs::JobEngine;
use registry::{GraphRegistry, GraphSource};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use wal::{DurabilityConfig, DurabilityStore};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Detection worker threads **per job-engine shard**.
    pub workers: usize,
    /// Concurrent connection cap (further connections get 503).
    pub max_connections: usize,
    /// Job-engine shards: independent worker pools + workspace arenas,
    /// keyed by graph-name hash.
    pub shards: usize,
    /// Serve through the `gve-net` epoll event loop instead of a thread
    /// per connection. Ignored (threaded fallback) on non-unix targets.
    pub event_loop: bool,
    /// Force the portable `poll(2)` reactor backend even where epoll
    /// exists (testing aid; only meaningful with `event_loop`).
    pub force_portable_poll: bool,
    /// Directory for the write-ahead log + snapshots. `None` (default)
    /// keeps the server memory-only; `Some` makes registered graphs,
    /// applied batches, and published partitions survive restarts.
    pub data_dir: Option<String>,
    /// WAL records between snapshot compactions (per graph).
    pub snapshot_every: usize,
    /// fsync the WAL after every appended record. Turning this off
    /// trades the durability of the latest acked batches for latency.
    pub fsync_wal: bool,
    /// Cap on edits queued in the ingest queue per shard (429 past it).
    pub ingest_max_queued_edits: usize,
    /// Membership deltas retained per graph for `GET .../delta`.
    pub delta_capacity: usize,
}

/// Largest request body the event-loop inline fast path will handle on
/// the reactor thread; bigger bodies route to the worker pool so their
/// JSON parse cannot stall unrelated connections.
const MAX_INLINE_BODY_BYTES: usize = 4 << 10;

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7461".to_string(),
            workers: 2,
            max_connections: http::DEFAULT_MAX_CONNECTIONS,
            shards: 4,
            event_loop: gve_net::EVENT_LOOP_AVAILABLE,
            force_portable_poll: false,
            data_dir: None,
            snapshot_every: 64,
            fsync_wal: true,
            ingest_max_queued_edits: 1 << 20,
            delta_capacity: 32,
        }
    }
}

/// Counters for the dynamic-update path, exported through `/stats` and
/// `/metrics`.
#[derive(Debug, Clone, Default)]
pub struct UpdateStats {
    /// Edge batches applied.
    pub batches_applied: Counter,
    /// Batches that also refreshed a cached partition incrementally.
    pub incremental_refreshes: Counter,
    /// Total edge insertions ingested.
    pub edges_inserted: Counter,
    /// Total edge deletions ingested.
    pub edges_deleted: Counter,
}

impl UpdateStats {
    /// Registers the counters with `registry` under `gve_updates_*`.
    pub fn attach_to(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "gve_updates_batches_total",
            "Dynamic edge batches applied.",
            &[],
            &self.batches_applied,
        );
        registry.register_counter(
            "gve_updates_incremental_refreshes_total",
            "Update batches that refreshed a cached partition incrementally.",
            &[],
            &self.incremental_refreshes,
        );
        registry.register_counter(
            "gve_updates_edges_inserted_total",
            "Edge insertions ingested through update batches.",
            &[],
            &self.edges_inserted,
        );
        registry.register_counter(
            "gve_updates_edges_deleted_total",
            "Edge deletions ingested through update batches.",
            &[],
            &self.edges_deleted,
        );
    }
}

/// Shared state behind every connection thread.
pub struct ServerState {
    /// Named graphs.
    pub registry: Arc<GraphRegistry>,
    /// Memoized partitions.
    pub cache: Arc<PartitionCache>,
    /// Detection job engine.
    pub jobs: JobEngine,
    /// Bounded coalescing queue in front of the update path.
    pub ingest: IngestQueue,
    /// Per-epoch membership diffs for `GET .../delta`.
    pub delta: Arc<DeltaRing>,
    /// WAL + snapshot store; `None` when running memory-only.
    pub durability: Option<Arc<DurabilityStore>>,
    /// Update-path counters.
    pub updates: UpdateStats,
    /// Every subsystem's metric handles, rendered by `GET /metrics`.
    pub metrics: MetricsRegistry,
    /// Server start time (for `/stats` uptime).
    pub started: Instant,
}

impl ServerState {
    /// Builds single-shard state with `workers` detection workers
    /// (embedded/test convenience). Memory-only.
    pub fn new(workers: usize) -> Arc<Self> {
        Self::new_sharded(1, workers)
    }

    /// Builds sharded, memory-only state (no durability directory).
    pub fn new_sharded(shards: usize, workers: usize) -> Arc<Self> {
        let config = ServeConfig {
            shards,
            workers,
            data_dir: None,
            ..ServeConfig::default()
        };
        Self::with_config(&config).expect("memory-only state construction cannot do IO")
    }

    /// Builds the state, starts `shards` job-engine shards of `workers`
    /// detection workers each, and wires every subsystem's metrics into
    /// one registry. The graph registry uses the same shard count so a
    /// graph's map shard and its worker pool line up.
    ///
    /// When `config.data_dir` is set, opens (or creates) the durability
    /// store there and **recovers**: every graph directory's newest
    /// valid snapshot is loaded and its WAL replayed, restoring graphs,
    /// epochs, and cached partitions to the pre-crash state before the
    /// listener starts logging new activity.
    pub fn with_config(config: &ServeConfig) -> std::io::Result<Arc<Self>> {
        let shards = config.shards.max(1);
        let registry = Arc::new(GraphRegistry::with_shards(shards));
        let cache = Arc::new(PartitionCache::new());
        let jobs = JobEngine::start_sharded(
            Arc::clone(&registry),
            Arc::clone(&cache),
            shards,
            config.workers,
        );
        let ingest = IngestQueue::new(
            shards,
            IngestConfig {
                max_queued_edits: config.ingest_max_queued_edits,
            },
        );
        let delta = Arc::new(DeltaRing::new(config.delta_capacity));
        let updates = UpdateStats::default();
        let metrics = MetricsRegistry::new();
        cache.stats.attach_to(&metrics);
        jobs.attach_to(&metrics);
        updates.attach_to(&metrics);
        ingest.stats.attach_to(&metrics);

        let durability = match &config.data_dir {
            None => None,
            Some(dir) => {
                let store = Arc::new(DurabilityStore::open(DurabilityConfig {
                    root: dir.into(),
                    snapshot_every: config.snapshot_every,
                    fsync: config.fsync_wal,
                })?);
                store.stats.attach_to(&metrics);
                // Recovery seeds registry, cache, and delta ring BEFORE
                // the insert listener exists, so recovered partitions
                // are not re-appended to the WAL they came from.
                for recovered in store.recover()? {
                    let source = GraphSource::parse_label(&recovered.source);
                    if let Err(e) = registry.install(
                        &recovered.name,
                        recovered.graph,
                        recovered.epoch,
                        source,
                        recovered.epoch,
                    ) {
                        eprintln!(
                            "gve-serve: skipping recovered graph '{}': {e}",
                            recovered.name
                        );
                        continue;
                    }
                    for item in recovered.partitions {
                        delta.record(&item.key.graph, item.key.epoch, &item.partition.membership);
                        cache.insert(item.key, item.partition);
                    }
                }
                Some(store)
            }
        };

        // Single choke point for partition publications: every cache
        // insert — detect jobs, incremental refreshes, nothing else —
        // feeds both the delta ring and (when durable) the WAL. The
        // partition record is written AFTER the cache publish and is
        // best-effort: partitions are derived state, recomputable from
        // the durable graph.
        {
            let delta = Arc::clone(&delta);
            let durability = durability.clone();
            cache.set_listener(move |key, partition| {
                delta.record(&key.graph, key.epoch, &partition.membership);
                if let Some(store) = &durability {
                    if let Err(e) = store.append_partition(key, partition) {
                        eprintln!(
                            "gve-serve: partition WAL append failed for '{}': {e}",
                            key.graph
                        );
                    }
                }
            });
        }

        let state = Arc::new(Self {
            registry,
            cache,
            jobs,
            ingest,
            delta,
            durability,
            updates,
            metrics,
            started: Instant::now(),
        });
        state.ingest.start_drainers(&state);
        Ok(state)
    }
}

/// Which connection front end a [`Server`] runs.
enum FrontEnd {
    /// Classic thread-per-connection acceptor (`http::HttpServer`).
    Threaded(http::HttpServer),
    /// `gve-net` readiness reactor (epoll/poll) with a handler pool.
    #[cfg(unix)]
    EventLoop(gve_net::EventLoopServer),
}

/// A running service: HTTP front end plus worker pool.
pub struct Server {
    front: FrontEnd,
    state: Arc<ServerState>,
    /// `join` parks on this pair; `stop` flips the flag and notifies,
    /// so shutdown is immediate instead of waiting out a sleep.
    stopping: Arc<(Mutex<bool>, Condvar)>,
}

impl Server {
    /// Binds and starts serving.
    pub fn start(config: &ServeConfig) -> std::io::Result<Server> {
        let state = ServerState::with_config(config)?;
        let handler_state = Arc::clone(&state);
        let handler = move |request| handlers::handle(&handler_state, &request);
        // Routes whose handlers are strictly non-blocking and
        // microsecond-scale run inline on the reactor thread (no
        // worker-pool round trip). Everything that computes or does IO
        // — graph registration, update batches with incremental
        // refresh, large membership/community dumps — goes to workers.
        // The locks these inline routes do take are all short-hold by
        // construction: update batches serialize on the registry cell's
        // update gate and touch the entry mutex only to snapshot and to
        // publish, so a snapshot on the reactor thread never waits out
        // a refresh. Oversized bodies are parsed on workers too — JSON
        // parsing is linear in the body and the body cap is 64 MiB.
        #[cfg(unix)]
        let inline: gve_net::InlinePredicate = Arc::new(|request: &gve_net::http::Request| {
            if request.body.len() > MAX_INLINE_BODY_BYTES {
                return false;
            }
            match request.method.as_str() {
                "GET" => {
                    !request.path.contains("/membership") && !request.path.contains("/communities")
                }
                // Detect submits only queue a job (or hit the cache);
                // cancel flips a record state.
                "POST" => request.path.contains("/detect") || request.path.contains("/cancel"),
                _ => false,
            }
        });
        #[cfg(unix)]
        let front = if config.event_loop {
            FrontEnd::EventLoop(gve_net::EventLoopServer::start(
                config.addr.as_str(),
                gve_net::NetOptions {
                    max_connections: config.max_connections,
                    force_portable_poll: config.force_portable_poll,
                    inline: Some(inline),
                    metrics: Some(state.metrics.clone()),
                    ..gve_net::NetOptions::default()
                },
                handler,
            )?)
        } else {
            FrontEnd::Threaded(http::HttpServer::start_with(
                config.addr.as_str(),
                http::ServerOptions {
                    max_connections: config.max_connections,
                    metrics: Some(state.metrics.clone()),
                    ..http::ServerOptions::default()
                },
                handler,
            )?)
        };
        #[cfg(not(unix))]
        let front = FrontEnd::Threaded(http::HttpServer::start_with(
            config.addr.as_str(),
            http::ServerOptions {
                max_connections: config.max_connections,
                metrics: Some(state.metrics.clone()),
                ..http::ServerOptions::default()
            },
            handler,
        )?);
        Ok(Server {
            front,
            state,
            stopping: Arc::new((Mutex::new(false), Condvar::new())),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        match &self.front {
            FrontEnd::Threaded(http) => http.port(),
            #[cfg(unix)]
            FrontEnd::EventLoop(server) => server.port(),
        }
    }

    /// Which front end is serving: `"threaded"`, `"epoll"`, or `"poll"`.
    pub fn backend(&self) -> &'static str {
        match &self.front {
            FrontEnd::Threaded(_) => "threaded",
            #[cfg(unix)]
            FrontEnd::EventLoop(server) => server.backend(),
        }
    }

    /// The shared state (tests inspect counters directly).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Blocks the calling thread until [`Server::stop`] runs (the
    /// accept loop and workers run on their own threads). Used by
    /// `gve serve`. Returns promptly on stop — no polling sleep.
    pub fn join(&self) {
        let (flag, signal) = &*self.stopping;
        let mut stopped = flag.lock().expect("stop flag poisoned");
        while !*stopped {
            stopped = signal.wait(stopped).expect("stop flag poisoned");
        }
    }

    /// Stops the HTTP front end and the worker pool, releasing any
    /// thread parked in [`Server::join`]. Idempotent.
    pub fn stop(&self) {
        {
            let (flag, signal) = &*self.stopping;
            let mut stopped = flag.lock().expect("stop flag poisoned");
            *stopped = true;
            signal.notify_all();
        }
        match &self.front {
            FrontEnd::Threaded(http) => http.stop(),
            #[cfg(unix)]
            FrontEnd::EventLoop(server) => server.stop(),
        }
        // Drain deferred batches before the job engine goes away so
        // acked (202) work is applied — and WAL-logged — on shutdown.
        self.state.ingest.stop();
        self.state.jobs.stop();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_boots_on_ephemeral_port_and_answers_health() {
        let server = Server::start(&ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let (status, body) = client_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""), "{body}");
        let (status, _) = client_request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        server.stop();
    }

    /// Regression test for the old `join()` that slept in one-hour
    /// slices: a joined thread must unpark as soon as `stop` runs.
    #[test]
    fn join_returns_promptly_after_stop() {
        let server = Arc::new(
            Server::start(&ServeConfig {
                addr: "127.0.0.1:0".into(),
                workers: 1,
                ..ServeConfig::default()
            })
            .unwrap(),
        );
        let joiner = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.join())
        };
        // Give the joiner time to park.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let started = Instant::now();
        server.stop();
        joiner.join().expect("joiner panicked");
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "join did not unpark promptly after stop"
        );
    }
}
