//! Bounded ring of per-epoch membership diffs.
//!
//! Clients polling a partition after every update batch should not pay
//! O(|V|) per poll when only a frontier moved. Each time a partition is
//! published (detect job or incremental refresh), the ring records the
//! vertices whose community changed since the previous publication;
//! `GET /graphs/{name}/delta?since=E` then merges the deltas newer than
//! `E` — O(changes), not O(|V|). The ring is bounded: when `E` has
//! fallen off the back, the endpoint answers `resync: true` and the
//! client fetches the full membership once.
//!
//! Deltas form a chain — each entry's `base_epoch` is the epoch of the
//! previous publication — so coverage of `(since, last]` reduces to
//! "the oldest retained delta starts at or before `since`".

use gve_graph::VertexId;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// One publication's diff against the previous one.
#[derive(Debug)]
struct EpochDelta {
    /// Epoch of the previous publication this diff applies on top of.
    base_epoch: u64,
    /// Epoch this diff advances to.
    epoch: u64,
    /// `(vertex, new community)` for every vertex that changed.
    changes: Vec<(VertexId, VertexId)>,
}

/// Per-graph delta state.
#[derive(Debug)]
struct GraphDeltas {
    /// Epoch of the newest recorded publication.
    last_epoch: u64,
    /// Its full membership (the diff base for the next publication).
    last_membership: Arc<Vec<VertexId>>,
    ring: VecDeque<EpochDelta>,
}

/// Answer to a `since=E` query.
#[derive(Debug, PartialEq)]
pub enum DeltaAnswer {
    /// `E` is the current epoch — nothing changed.
    UpToDate {
        /// The current epoch.
        epoch: u64,
    },
    /// Merged changes covering `(E, epoch]`, later publications winning.
    Changes {
        /// The current epoch.
        epoch: u64,
        /// `(vertex, new community)` pairs, sorted by vertex.
        changes: Vec<(VertexId, VertexId)>,
    },
    /// `E` fell off the ring (or is ahead of us) — fetch the full
    /// membership and start over.
    Resync {
        /// The current epoch.
        epoch: u64,
    },
    /// No partition has ever been published for this graph.
    NoPartition,
}

/// The shared ring. One brief-hold mutex: every operation is a map
/// lookup plus O(changes) work, never computation or IO.
#[derive(Debug)]
pub struct DeltaRing {
    inner: Mutex<HashMap<String, GraphDeltas>>,
    capacity: usize,
}

impl DeltaRing {
    /// A ring retaining up to `capacity` deltas per graph (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
        }
    }

    /// Records a published partition. The first publication for a graph
    /// seeds the chain without producing a delta; later ones append the
    /// diff against the previous membership. Publications at an older
    /// epoch than the newest recorded one are ignored (stale).
    pub fn record(&self, graph: &str, epoch: u64, membership: &Arc<Vec<VertexId>>) {
        let mut inner = self.inner.lock().expect("delta ring poisoned");
        match inner.get_mut(graph) {
            None => {
                inner.insert(
                    graph.to_string(),
                    GraphDeltas {
                        last_epoch: epoch,
                        last_membership: Arc::clone(membership),
                        ring: VecDeque::new(),
                    },
                );
            }
            Some(state) => {
                if epoch < state.last_epoch {
                    return;
                }
                let old = &state.last_membership;
                let mut changes: Vec<(VertexId, VertexId)> = Vec::new();
                for (v, &community) in membership.iter().enumerate() {
                    if old.get(v) != Some(&community) {
                        changes.push((v as VertexId, community));
                    }
                }
                // Re-publication at the same epoch with an identical
                // membership (e.g. a cache re-seed) is a no-op.
                if changes.is_empty() && epoch == state.last_epoch {
                    return;
                }
                state.ring.push_back(EpochDelta {
                    base_epoch: state.last_epoch,
                    epoch,
                    changes,
                });
                if state.ring.len() > self.capacity {
                    state.ring.pop_front();
                }
                state.last_epoch = epoch;
                state.last_membership = Arc::clone(membership);
            }
        }
    }

    /// Answers `?since=E` for `graph`.
    pub fn since(&self, graph: &str, since: u64) -> DeltaAnswer {
        let inner = self.inner.lock().expect("delta ring poisoned");
        let Some(state) = inner.get(graph) else {
            return DeltaAnswer::NoPartition;
        };
        if since == state.last_epoch {
            return DeltaAnswer::UpToDate {
                epoch: state.last_epoch,
            };
        }
        if since > state.last_epoch {
            return DeltaAnswer::Resync {
                epoch: state.last_epoch,
            };
        }
        // Coverage check: the chain must reach back to `since`.
        let oldest_base = state
            .ring
            .front()
            .map(|delta| delta.base_epoch)
            .unwrap_or(state.last_epoch);
        if oldest_base > since {
            return DeltaAnswer::Resync {
                epoch: state.last_epoch,
            };
        }
        let mut merged: HashMap<VertexId, VertexId> = HashMap::new();
        for delta in &state.ring {
            if delta.epoch > since {
                for &(v, community) in &delta.changes {
                    merged.insert(v, community);
                }
            }
        }
        let mut changes: Vec<(VertexId, VertexId)> = merged.into_iter().collect();
        changes.sort_unstable_by_key(|&(v, _)| v);
        DeltaAnswer::Changes {
            epoch: state.last_epoch,
            changes,
        }
    }

    /// Drops all state for `graph` (deregistered).
    pub fn forget(&self, graph: &str) {
        self.inner
            .lock()
            .expect("delta ring poisoned")
            .remove(graph);
    }
}

impl Default for DeltaRing {
    /// Default capacity: 32 deltas per graph.
    fn default() -> Self {
        Self::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn membership(values: &[VertexId]) -> Arc<Vec<VertexId>> {
        Arc::new(values.to_vec())
    }

    #[test]
    fn first_publication_seeds_without_a_delta() {
        let ring = DeltaRing::new(4);
        assert_eq!(ring.since("g", 0), DeltaAnswer::NoPartition);
        ring.record("g", 0, &membership(&[0, 0, 1, 1]));
        assert_eq!(ring.since("g", 0), DeltaAnswer::UpToDate { epoch: 0 });
        // Before the seed there is no history to serve.
        assert_eq!(ring.since("g", 5), DeltaAnswer::Resync { epoch: 0 });
    }

    #[test]
    fn changes_merge_with_later_publications_winning() {
        let ring = DeltaRing::new(4);
        ring.record("g", 0, &membership(&[0, 0, 1, 1]));
        ring.record("g", 1, &membership(&[0, 1, 1, 1])); // v1 moved
        ring.record("g", 2, &membership(&[2, 1, 1, 1])); // v0 moved
        ring.record("g", 3, &membership(&[2, 3, 1, 1])); // v1 moved again
        match ring.since("g", 0) {
            DeltaAnswer::Changes { epoch, changes } => {
                assert_eq!(epoch, 3);
                assert_eq!(changes, vec![(0, 2), (1, 3)]);
            }
            other => panic!("expected changes, got {other:?}"),
        }
        match ring.since("g", 2) {
            DeltaAnswer::Changes { epoch, changes } => {
                assert_eq!(epoch, 3);
                assert_eq!(changes, vec![(1, 3)]);
            }
            other => panic!("expected changes, got {other:?}"),
        }
        assert_eq!(ring.since("g", 3), DeltaAnswer::UpToDate { epoch: 3 });
    }

    #[test]
    fn appended_vertices_count_as_changed() {
        let ring = DeltaRing::new(4);
        ring.record("g", 0, &membership(&[0, 1]));
        ring.record("g", 1, &membership(&[0, 1, 2, 2]));
        match ring.since("g", 0) {
            DeltaAnswer::Changes { changes, .. } => {
                assert_eq!(changes, vec![(2, 2), (3, 2)]);
            }
            other => panic!("expected changes, got {other:?}"),
        }
    }

    #[test]
    fn bounded_ring_forces_resync_when_since_falls_off() {
        let ring = DeltaRing::new(2);
        ring.record("g", 0, &membership(&[0, 0]));
        for epoch in 1..=4u64 {
            ring.record("g", epoch, &membership(&[epoch as VertexId, 0]));
        }
        // Ring holds deltas 3→4 and 2→3 only; since=0 fell off.
        assert_eq!(ring.since("g", 0), DeltaAnswer::Resync { epoch: 4 });
        assert!(matches!(
            ring.since("g", 2),
            DeltaAnswer::Changes { epoch: 4, .. }
        ));
    }

    #[test]
    fn stale_and_identical_publications_are_ignored() {
        let ring = DeltaRing::new(4);
        ring.record("g", 5, &membership(&[0, 1]));
        ring.record("g", 3, &membership(&[9, 9])); // stale: ignored
        assert_eq!(ring.since("g", 5), DeltaAnswer::UpToDate { epoch: 5 });
        ring.record("g", 5, &membership(&[0, 1])); // identical re-seed
        assert_eq!(ring.since("g", 5), DeltaAnswer::UpToDate { epoch: 5 });
        ring.forget("g");
        assert_eq!(ring.since("g", 5), DeltaAnswer::NoPartition);
    }
}
