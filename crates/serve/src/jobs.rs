//! Asynchronous detection jobs.
//!
//! Detect requests do not block the HTTP connection: the handler
//! submits a job, the client gets an id back immediately and polls
//! `GET /jobs/{id}` until the state reaches `done` (or `failed`). A
//! small pool of worker threads drains the queue; each worker runs
//! static GVE-Leiden on the graph's current snapshot and publishes the
//! partition into the [`PartitionCache`](crate::cache::PartitionCache),
//! so an identical request against the same graph epoch is a cache hit
//! and never reaches the queue.

use crate::cache::{CachedPartition, PartitionCache, PartitionKey, PartitionOrigin};
use crate::json::Json;
use crate::registry::GraphRegistry;
use gve_leiden::{EdgeLayout, KernelVersion, Leiden, LeidenConfig, Objective, VertexOrdering};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A parsed, validated detect request — the unit the cache fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectRequest {
    /// `"modularity"` or `"cpm"`.
    pub objective: String,
    /// Resolution parameter γ.
    pub resolution: f64,
    /// RNG seed for randomized refinement.
    pub seed: u64,
    /// Cap on passes (default: library default).
    pub max_passes: usize,
    /// Dynamic-scheduling chunk size.
    pub chunk_size: usize,
    /// Scan kernel: two-pass `v1` or fused degree-aware `v2`. Part of
    /// the cache fingerprint so v1 and v2 partitions never alias.
    pub kernel: KernelVersion,
    /// Cache-aware vertex relabeling applied before detection.
    pub ordering: VertexOrdering,
    /// CSR edge layout (`split` arrays or `interleaved` pairs).
    pub layout: EdgeLayout,
}

impl Default for DetectRequest {
    fn default() -> Self {
        let defaults = LeidenConfig::default();
        Self {
            objective: "modularity".to_string(),
            resolution: 1.0,
            seed: defaults.seed,
            max_passes: defaults.max_passes,
            chunk_size: defaults.chunk_size,
            kernel: defaults.kernel,
            ordering: defaults.ordering,
            layout: defaults.layout,
        }
    }
}

impl DetectRequest {
    /// Parses the JSON body of `POST /graphs/{name}/detect`. Absent
    /// fields keep their defaults; unknown objectives are rejected.
    pub fn from_json(body: &Json) -> Result<Self, String> {
        let mut request = DetectRequest::default();
        if let Some(objective) = body.get("objective").and_then(Json::as_str) {
            match objective {
                "modularity" | "cpm" => request.objective = objective.to_string(),
                other => return Err(format!("unknown objective '{other}' (modularity|cpm)")),
            }
        }
        if let Some(resolution) = body.get("resolution").and_then(Json::as_f64) {
            request.resolution = resolution;
        }
        if let Some(seed) = body.get("seed").and_then(Json::as_u64) {
            request.seed = seed;
        }
        if let Some(max_passes) = body.get("max_passes").and_then(Json::as_u64) {
            request.max_passes = max_passes as usize;
        }
        if let Some(chunk_size) = body.get("chunk_size").and_then(Json::as_u64) {
            request.chunk_size = chunk_size as usize;
        }
        if let Some(kernel) = body.get("kernel").and_then(Json::as_str) {
            request.kernel = KernelVersion::parse(kernel)?;
        }
        if let Some(ordering) = body.get("ordering").and_then(Json::as_str) {
            request.ordering = VertexOrdering::parse(ordering)?;
        }
        if let Some(layout) = body.get("layout").and_then(Json::as_str) {
            request.layout = EdgeLayout::parse(layout)?;
        }
        request.to_config()?; // surface invalid configs at submit time
        Ok(request)
    }

    /// The equivalent `LeidenConfig`.
    pub fn to_config(&self) -> Result<LeidenConfig, String> {
        let objective = match self.objective.as_str() {
            "modularity" => Objective::Modularity {
                resolution: self.resolution,
            },
            "cpm" => Objective::Cpm {
                resolution: self.resolution,
            },
            other => return Err(format!("unknown objective '{other}'")),
        };
        let mut config = LeidenConfig::default()
            .objective(objective)
            .seed(self.seed)
            .chunk_size(self.chunk_size)
            .kernel(self.kernel)
            .ordering(self.ordering)
            .layout(self.layout);
        config.max_passes = self.max_passes;
        config.validate()?;
        Ok(config)
    }

    /// Stable fingerprint for cache keying (FNV-1a over the canonical
    /// textual form, so semantically equal requests collide on purpose).
    pub fn fingerprint(&self) -> u64 {
        let canonical = format!(
            "objective={};resolution={};seed={};max_passes={};chunk_size={};kernel={};ordering={};layout={}",
            self.objective,
            self.resolution,
            self.seed,
            self.max_passes,
            self.chunk_size,
            self.kernel.label(),
            self.ordering.label(),
            self.layout.label(),
        );
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in canonical.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// JSON echo of the request (reported in job records).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("objective", Json::from(self.objective.as_str())),
            ("resolution", Json::from(self.resolution)),
            ("seed", Json::from(self.seed)),
            ("max_passes", Json::from(self.max_passes)),
            ("chunk_size", Json::from(self.chunk_size)),
            ("kernel", Json::from(self.kernel.label())),
            ("ordering", Json::from(self.ordering.label())),
            ("layout", Json::from(self.layout.label())),
        ])
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is computing.
    Running,
    /// Finished; the partition is in the cache.
    Done,
    /// The computation errored.
    Failed,
    /// Cancelled while still queued.
    Cancelled,
}

impl JobState {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One detect job, as reported by `GET /jobs/{id}`.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Target graph.
    pub graph: String,
    /// The request that created the job.
    pub request: DetectRequest,
    /// Current state.
    pub state: JobState,
    /// Whether the answer came straight from the cache.
    pub cached: bool,
    /// Cache key of the resulting partition (set once known).
    pub key: Option<PartitionKey>,
    /// Error message for failed jobs.
    pub error: Option<String>,
    /// Compute seconds for completed jobs.
    pub seconds: Option<f64>,
}

impl JobRecord {
    /// JSON form for the API (includes partition summary when done).
    pub fn to_json(&self, cache: &PartitionCache) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::from(self.id)),
            ("graph".to_string(), Json::from(self.graph.as_str())),
            ("state".to_string(), Json::from(self.state.label())),
            ("cached".to_string(), Json::from(self.cached)),
            ("request".to_string(), self.request.to_json()),
        ];
        if let Some(error) = &self.error {
            fields.push(("error".to_string(), Json::from(error.as_str())));
        }
        if let Some(seconds) = self.seconds {
            fields.push(("seconds".to_string(), Json::from(seconds)));
        }
        if let (JobState::Done, Some(key)) = (self.state, &self.key) {
            if let Some(partition) = cache.peek(key) {
                fields.push(("epoch".to_string(), Json::from(key.epoch)));
                fields.push((
                    "num_communities".to_string(),
                    Json::from(partition.num_communities),
                ));
                fields.push(("modularity".to_string(), Json::from(partition.modularity)));
                fields.push(("origin".to_string(), Json::from(partition.origin.label())));
            }
        }
        Json::Obj(fields)
    }
}

/// Counters exported through `/stats`.
#[derive(Debug, Default)]
pub struct JobStats {
    /// Jobs accepted (including instant cache hits).
    pub submitted: AtomicU64,
    /// Jobs that finished successfully (cache hits count).
    pub completed: AtomicU64,
    /// Jobs that failed.
    pub failed: AtomicU64,
    /// Full static detections actually executed by workers.
    pub full_detections: AtomicU64,
}

/// The background worker pool plus the job table.
pub struct JobEngine {
    registry: Arc<GraphRegistry>,
    cache: Arc<PartitionCache>,
    records: Arc<Mutex<HashMap<u64, JobRecord>>>,
    sender: crossbeam::channel::Sender<u64>,
    next_id: AtomicU64,
    shutdown: Arc<AtomicBool>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Counter block (public for `/stats` reporting).
    pub stats: Arc<JobStats>,
}

impl JobEngine {
    /// Starts `worker_count` worker threads (minimum 1).
    pub fn start(
        registry: Arc<GraphRegistry>,
        cache: Arc<PartitionCache>,
        worker_count: usize,
    ) -> Self {
        let (sender, receiver) = crossbeam::channel::unbounded::<u64>();
        let records = Arc::new(Mutex::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(JobStats::default());
        let mut workers = Vec::new();
        for worker in 0..worker_count.max(1) {
            let receiver = receiver.clone();
            let registry = Arc::clone(&registry);
            let cache = Arc::clone(&cache);
            let records = Arc::clone(&records);
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gve-serve-worker-{worker}"))
                    .spawn(move || {
                        worker_loop(&receiver, &registry, &cache, &records, &shutdown, &stats)
                    })
                    .expect("spawn worker thread"),
            );
        }
        Self {
            registry,
            cache,
            records,
            sender,
            next_id: AtomicU64::new(1),
            shutdown,
            workers: Mutex::new(workers),
            stats,
        }
    }

    /// Submits a detect request against `graph`. Returns the job record:
    /// already `Done` (with `cached = true`) on a cache hit, otherwise
    /// `Queued` for the worker pool.
    pub fn submit(&self, graph: &str, request: DetectRequest) -> Result<JobRecord, String> {
        let entry = self.registry.snapshot(graph).map_err(|e| e.to_string())?;
        let key = PartitionKey {
            graph: graph.to_string(),
            epoch: entry.epoch,
            fingerprint: request.fingerprint(),
        };
        // Relaxed: `submitted` is a reporting-only counter; `next_id`
        // needs only uniqueness, which fetch_add provides on its own —
        // the record itself is published via the mutex below.
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let hit = self.cache.get(&key).is_some();
        let record = JobRecord {
            id,
            graph: graph.to_string(),
            request,
            state: if hit {
                JobState::Done
            } else {
                JobState::Queued
            },
            cached: hit,
            key: Some(key),
            error: None,
            seconds: if hit { Some(0.0) } else { None },
        };
        self.records
            .lock()
            .expect("job table poisoned")
            .insert(id, record.clone());
        if hit {
            // Relaxed: reporting-only counter.
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.sender
                .send(id)
                .map_err(|_| "job queue closed".to_string())?;
        }
        Ok(record)
    }

    /// Looks up a job record.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        self.records
            .lock()
            .expect("job table poisoned")
            .get(&id)
            .cloned()
    }

    /// Cancels a job if it is still queued. Returns the new state, or
    /// `None` for unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut records = self.records.lock().expect("job table poisoned");
        let record = records.get_mut(&id)?;
        if record.state == JobState::Queued {
            record.state = JobState::Cancelled;
        }
        Some(record.state)
    }

    /// Number of job records retained.
    pub fn len(&self) -> usize {
        self.records.lock().expect("job table poisoned").len()
    }

    /// True when no job has been submitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until `id` leaves the queued/running states or `timeout`
    /// elapses. Test/CLI convenience — the HTTP API itself only polls.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobRecord> {
        let deadline = Instant::now() + timeout;
        loop {
            let record = self.job(id)?;
            match record.state {
                JobState::Queued | JobState::Running => {
                    if Instant::now() >= deadline {
                        return Some(record);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                _ => return Some(record),
            }
        }
    }

    /// Stops the worker pool (idempotent).
    pub fn stop(&self) {
        // Release suffices (audit publish rule): workers' Acquire loads
        // observe everything written before the signal; no total order
        // across unrelated atomics is needed, so SeqCst was overkill.
        self.shutdown.store(true, Ordering::Release);
        for handle in self
            .workers
            .lock()
            .expect("worker table poisoned")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

impl Drop for JobEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(
    receiver: &crossbeam::channel::Receiver<u64>,
    registry: &GraphRegistry,
    cache: &PartitionCache,
    records: &Mutex<HashMap<u64, JobRecord>>,
    shutdown: &AtomicBool,
    stats: &JobStats,
) {
    loop {
        // Acquire pairs with the Release store in `stop`.
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let id = match receiver.recv_timeout(Duration::from_millis(20)) {
            Ok(id) => id,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        };
        let (graph_name, request) = {
            let mut table = records.lock().expect("job table poisoned");
            let Some(record) = table.get_mut(&id) else {
                continue;
            };
            if record.state != JobState::Queued {
                continue; // cancelled while waiting
            }
            record.state = JobState::Running;
            (record.graph.clone(), record.request.clone())
        };
        let outcome = run_detection(registry, cache, &graph_name, &request, stats);
        let mut table = records.lock().expect("job table poisoned");
        let Some(record) = table.get_mut(&id) else {
            continue;
        };
        match outcome {
            // Relaxed counters: reporting-only; the job-state transition
            // itself is published by the records mutex.
            Ok((key, seconds)) => {
                record.state = JobState::Done;
                record.key = Some(key);
                record.seconds = Some(seconds);
                stats.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(message) => {
                record.state = JobState::Failed;
                record.error = Some(message);
                // Relaxed: reporting-only counter, as above.
                stats.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Runs one full static detection and publishes it into the cache.
/// Re-snapshots the graph so the partition is keyed to the epoch it was
/// actually computed against (the graph may have advanced since submit).
fn run_detection(
    registry: &GraphRegistry,
    cache: &PartitionCache,
    graph_name: &str,
    request: &DetectRequest,
    stats: &JobStats,
) -> Result<(PartitionKey, f64), String> {
    let entry = registry.snapshot(graph_name).map_err(|e| e.to_string())?;
    let key = PartitionKey {
        graph: graph_name.to_string(),
        epoch: entry.epoch,
        fingerprint: request.fingerprint(),
    };
    // Another worker may have raced us to the same key.
    if cache.peek(&key).is_some() {
        return Ok((key, 0.0));
    }
    let config = request.to_config()?;
    let graph = Arc::clone(&entry.graph);
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| Leiden::new(config).run(&graph)))
        .map_err(|_| "detection panicked".to_string())?;
    let seconds = started.elapsed().as_secs_f64();
    // Relaxed: reporting-only counter.
    stats.full_detections.fetch_add(1, Ordering::Relaxed);
    let modularity = gve_quality::modularity(&graph, &result.membership);
    cache.insert(
        key.clone(),
        CachedPartition {
            membership: Arc::new(result.membership),
            num_communities: result.num_communities,
            modularity,
            seconds,
            origin: PartitionOrigin::Detection,
            request: request.clone(),
        },
    );
    Ok((key, seconds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::GraphSource;
    use gve_generate::PlantedPartition;

    fn engine_with_graph(name: &str) -> (JobEngine, Arc<PartitionCache>) {
        let registry = Arc::new(GraphRegistry::new());
        let cache = Arc::new(PartitionCache::new());
        let planted = PlantedPartition::new(300, 6, 10.0, 0.5).seed(11).generate();
        registry
            .register(name, planted.graph, GraphSource::Generated("sbm".into()))
            .unwrap();
        (
            JobEngine::start(Arc::clone(&registry), Arc::clone(&cache), 2),
            cache,
        )
    }

    #[test]
    fn detect_request_parsing_and_fingerprint() {
        let body = crate::json::parse(r#"{"objective":"cpm","resolution":0.05,"seed":7}"#).unwrap();
        let request = DetectRequest::from_json(&body).unwrap();
        assert_eq!(request.objective, "cpm");
        assert_eq!(request.seed, 7);
        assert_eq!(request.fingerprint(), request.clone().fingerprint());
        assert_ne!(
            request.fingerprint(),
            DetectRequest::default().fingerprint()
        );
        let bad = crate::json::parse(r#"{"objective":"louvain"}"#).unwrap();
        assert!(DetectRequest::from_json(&bad).is_err());
    }

    /// Kernel/ordering/layout/chunk-size are part of the fingerprint, so
    /// the partition cache never serves a v1 result for a v2 request (or
    /// vice versa), and bad tokens are rejected at parse time.
    #[test]
    fn kernel_knobs_fingerprint_and_validate() {
        let body = crate::json::parse(
            r#"{"kernel":"v1","ordering":"degree","layout":"interleaved","chunk_size":512}"#,
        )
        .unwrap();
        let request = DetectRequest::from_json(&body).unwrap();
        assert_eq!(request.kernel, KernelVersion::V1);
        assert_eq!(request.ordering, VertexOrdering::DegreeDesc);
        assert_eq!(request.layout, EdgeLayout::Interleaved);
        assert_eq!(request.chunk_size, 512);

        let defaults = DetectRequest::default();
        for other in [
            DetectRequest {
                kernel: KernelVersion::V1,
                ..defaults.clone()
            },
            DetectRequest {
                ordering: VertexOrdering::Bfs,
                ..defaults.clone()
            },
            DetectRequest {
                layout: EdgeLayout::Interleaved,
                ..defaults.clone()
            },
            DetectRequest {
                chunk_size: defaults.chunk_size + 1,
                ..defaults.clone()
            },
        ] {
            assert_ne!(other.fingerprint(), defaults.fingerprint());
        }

        for bad in [
            r#"{"kernel":"v3"}"#,
            r#"{"ordering":"random"}"#,
            r#"{"layout":"columnar"}"#,
            r#"{"chunk_size":0}"#,
        ] {
            let body = crate::json::parse(bad).unwrap();
            assert!(DetectRequest::from_json(&body).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn job_runs_to_done_and_second_submit_hits_cache() {
        let (engine, cache) = engine_with_graph("sbm");
        let first = engine.submit("sbm", DetectRequest::default()).unwrap();
        assert!(!first.cached);
        let record = engine.wait(first.id, Duration::from_secs(30)).unwrap();
        assert_eq!(record.state, JobState::Done, "error: {:?}", record.error);
        let partition = cache.peek(record.key.as_ref().unwrap()).unwrap();
        assert!(partition.num_communities > 1);
        assert!(partition.modularity > 0.2);

        let second = engine.submit("sbm", DetectRequest::default()).unwrap();
        assert!(second.cached);
        assert_eq!(second.state, JobState::Done);
        assert_eq!(engine.stats.full_detections.load(Ordering::Relaxed), 1);

        // Different config → different fingerprint → real work again.
        let other = DetectRequest {
            seed: 99,
            ..DetectRequest::default()
        };
        let third = engine.submit("sbm", other).unwrap();
        assert!(!third.cached);
        let third = engine.wait(third.id, Duration::from_secs(30)).unwrap();
        assert_eq!(third.state, JobState::Done);
        engine.stop();
    }

    #[test]
    fn unknown_graph_fails_at_submit_and_cancel_works_on_queued() {
        let (engine, _cache) = engine_with_graph("sbm");
        assert!(engine.submit("nope", DetectRequest::default()).is_err());
        assert!(engine.cancel(424242).is_none());
        engine.stop();
        assert!(engine.is_empty());
    }
}
