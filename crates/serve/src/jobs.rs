//! Asynchronous detection jobs.
//!
//! Detect requests do not block the HTTP connection: the handler
//! submits a job, the client gets an id back immediately and polls
//! `GET /jobs/{id}` until the state reaches `done` (or `failed`). A
//! small pool of worker threads drains the queue; each worker runs
//! static GVE-Leiden on the graph's current snapshot and publishes the
//! partition into the [`PartitionCache`](crate::cache::PartitionCache),
//! so an identical request against the same graph epoch is a cache hit
//! and never reaches the queue.

use crate::cache::{CachedPartition, PartitionCache, PartitionKey, PartitionOrigin};
use crate::json::Json;
use crate::pool::WorkspacePool;
use crate::registry::GraphRegistry;
use gve_leiden::{
    ChunkScheduling, CoreMetrics, EdgeLayout, KernelVersion, Leiden, LeidenConfig, Objective,
    RunObserver, Scheduling, VertexOrdering,
};
use gve_obs::{Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_LATENCY_BUCKETS};
use gve_prim::alloc_count;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A parsed, validated detect request — the unit the cache fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectRequest {
    /// `"modularity"` or `"cpm"`.
    pub objective: String,
    /// Resolution parameter γ.
    pub resolution: f64,
    /// RNG seed for randomized refinement.
    pub seed: u64,
    /// Cap on passes (default: library default).
    pub max_passes: usize,
    /// Dynamic-scheduling chunk size.
    pub chunk_size: usize,
    /// Scan kernel: two-pass `v1` or fused degree-aware `v2`. Part of
    /// the cache fingerprint so v1 and v2 partitions never alias.
    pub kernel: KernelVersion,
    /// Cache-aware vertex relabeling applied before detection.
    pub ordering: VertexOrdering,
    /// CSR edge layout (`split` arrays or `interleaved` pairs).
    pub layout: EdgeLayout,
    /// Phase scheduling: fast `async` (default) or reproducible
    /// `color-sync`.
    pub scheduling: Scheduling,
    /// Chunk scheduling of the async phases: `static`, `guided`, or
    /// work-`stealing`.
    pub chunking: ChunkScheduling,
}

impl Default for DetectRequest {
    fn default() -> Self {
        let defaults = LeidenConfig::default();
        Self {
            objective: "modularity".to_string(),
            resolution: 1.0,
            seed: defaults.seed,
            max_passes: defaults.max_passes,
            chunk_size: defaults.chunk_size,
            kernel: defaults.kernel,
            ordering: defaults.ordering,
            layout: defaults.layout,
            scheduling: defaults.scheduling,
            chunking: defaults.chunking,
        }
    }
}

impl DetectRequest {
    /// Parses the JSON body of `POST /graphs/{name}/detect`. Absent
    /// fields keep their defaults; unknown objectives are rejected.
    pub fn from_json(body: &Json) -> Result<Self, String> {
        let mut request = DetectRequest::default();
        if let Some(objective) = body.get("objective").and_then(Json::as_str) {
            match objective {
                "modularity" | "cpm" => request.objective = objective.to_string(),
                other => return Err(format!("unknown objective '{other}' (modularity|cpm)")),
            }
        }
        if let Some(resolution) = body.get("resolution").and_then(Json::as_f64) {
            request.resolution = resolution;
        }
        if let Some(seed) = body.get("seed").and_then(Json::as_u64) {
            request.seed = seed;
        }
        if let Some(max_passes) = body.get("max_passes").and_then(Json::as_u64) {
            request.max_passes = max_passes as usize;
        }
        if let Some(chunk_size) = body.get("chunk_size").and_then(Json::as_u64) {
            request.chunk_size = chunk_size as usize;
        }
        if let Some(kernel) = body.get("kernel").and_then(Json::as_str) {
            request.kernel = KernelVersion::parse(kernel)?;
        }
        if let Some(ordering) = body.get("ordering").and_then(Json::as_str) {
            request.ordering = VertexOrdering::parse(ordering)?;
        }
        if let Some(layout) = body.get("layout").and_then(Json::as_str) {
            request.layout = EdgeLayout::parse(layout)?;
        }
        if let Some(scheduling) = body.get("scheduling").and_then(Json::as_str) {
            request.scheduling = Scheduling::parse(scheduling)?;
        }
        if let Some(chunking) = body.get("chunking").and_then(Json::as_str) {
            request.chunking = ChunkScheduling::parse(chunking)?;
        }
        request.to_config()?; // surface invalid configs at submit time
        Ok(request)
    }

    /// The equivalent `LeidenConfig`.
    pub fn to_config(&self) -> Result<LeidenConfig, String> {
        let objective = match self.objective.as_str() {
            "modularity" => Objective::Modularity {
                resolution: self.resolution,
            },
            "cpm" => Objective::Cpm {
                resolution: self.resolution,
            },
            other => return Err(format!("unknown objective '{other}'")),
        };
        let mut config = LeidenConfig::default()
            .objective(objective)
            .seed(self.seed)
            .chunk_size(self.chunk_size)
            .kernel(self.kernel)
            .ordering(self.ordering)
            .layout(self.layout)
            .scheduling(self.scheduling)
            .chunking(self.chunking);
        config.max_passes = self.max_passes;
        config.validate()?;
        Ok(config)
    }

    /// Stable fingerprint for cache keying (FNV-1a over the canonical
    /// textual form, so semantically equal requests collide on purpose).
    pub fn fingerprint(&self) -> u64 {
        let canonical = format!(
            "objective={};resolution={};seed={};max_passes={};chunk_size={};kernel={};ordering={};layout={};scheduling={};chunking={}",
            self.objective,
            self.resolution,
            self.seed,
            self.max_passes,
            self.chunk_size,
            self.kernel.label(),
            self.ordering.label(),
            self.layout.label(),
            self.scheduling.label(),
            self.chunking.label(),
        );
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in canonical.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// JSON echo of the request (reported in job records).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("objective", Json::from(self.objective.as_str())),
            ("resolution", Json::from(self.resolution)),
            ("seed", Json::from(self.seed)),
            ("max_passes", Json::from(self.max_passes)),
            ("chunk_size", Json::from(self.chunk_size)),
            ("kernel", Json::from(self.kernel.label())),
            ("ordering", Json::from(self.ordering.label())),
            ("layout", Json::from(self.layout.label())),
            ("scheduling", Json::from(self.scheduling.label())),
            ("chunking", Json::from(self.chunking.label())),
        ])
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is computing.
    Running,
    /// Finished; the partition is in the cache.
    Done,
    /// The computation errored.
    Failed,
    /// Cancelled while still queued.
    Cancelled,
}

impl JobState {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One detect job, as reported by `GET /jobs/{id}`.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Target graph.
    pub graph: String,
    /// The request that created the job.
    pub request: DetectRequest,
    /// Current state.
    pub state: JobState,
    /// Whether the answer came straight from the cache.
    pub cached: bool,
    /// Whether this job attached as a waiter to an identical job that
    /// was already queued/running (in-flight coalescing).
    pub coalesced: bool,
    /// Cache key of the resulting partition (set once known).
    pub key: Option<PartitionKey>,
    /// Error message for failed jobs.
    pub error: Option<String>,
    /// Compute seconds for completed jobs.
    pub seconds: Option<f64>,
    /// Submission instant, for the queue-wait histogram.
    pub queued_at: Instant,
}

impl JobRecord {
    /// JSON form for the API (includes partition summary when done).
    pub fn to_json(&self, cache: &PartitionCache) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::from(self.id)),
            ("graph".to_string(), Json::from(self.graph.as_str())),
            ("state".to_string(), Json::from(self.state.label())),
            ("cached".to_string(), Json::from(self.cached)),
            ("coalesced".to_string(), Json::from(self.coalesced)),
            ("request".to_string(), self.request.to_json()),
        ];
        if let Some(error) = &self.error {
            fields.push(("error".to_string(), Json::from(error.as_str())));
        }
        if let Some(seconds) = self.seconds {
            fields.push(("seconds".to_string(), Json::from(seconds)));
        }
        if let (JobState::Done, Some(key)) = (self.state, &self.key) {
            if let Some(partition) = cache.peek(key) {
                fields.push(("epoch".to_string(), Json::from(key.epoch)));
                fields.push((
                    "num_communities".to_string(),
                    Json::from(partition.num_communities),
                ));
                fields.push(("modularity".to_string(), Json::from(partition.modularity)));
                fields.push(("origin".to_string(), Json::from(partition.origin.label())));
            }
        }
        Json::Obj(fields)
    }
}

/// Counters and queue metrics exported through `/stats` and `/metrics`.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Jobs accepted (including instant cache hits).
    pub submitted: Counter,
    /// Jobs that finished successfully (cache hits count).
    pub completed: Counter,
    /// Jobs that failed.
    pub failed: Counter,
    /// Full static detections actually executed by workers.
    pub full_detections: Counter,
    /// Jobs that attached as waiters to an identical in-flight job
    /// instead of executing their own detection.
    pub coalesced: Counter,
    /// Jobs currently queued (sent but not yet claimed by a worker).
    pub queue_depth: Gauge,
    /// Times a worker returned from its blocking receive. Stays flat
    /// while the pool is idle — the regression signal for the old
    /// 20 ms busy-poll loop.
    pub worker_wakeups: Counter,
    /// Seconds jobs spent queued before a worker claimed them.
    pub queue_wait_seconds: Histogram,
    /// Seconds full detections took to compute.
    pub run_seconds: Histogram,
    /// Heap allocations performed inside Leiden hot-path runs (full
    /// detections and incremental refreshes). Reads zero unless the
    /// binary installed [`alloc_count::CountingAllocator`] as the
    /// global allocator; flat-lining after warm-up is the observable
    /// proof that the workspace pool reached zero steady-state
    /// allocation.
    pub core_allocs: Counter,
}

impl Default for JobStats {
    fn default() -> Self {
        Self {
            submitted: Counter::new(),
            completed: Counter::new(),
            failed: Counter::new(),
            full_detections: Counter::new(),
            coalesced: Counter::new(),
            queue_depth: Gauge::new(),
            worker_wakeups: Counter::new(),
            queue_wait_seconds: Histogram::with_buckets(DEFAULT_LATENCY_BUCKETS),
            run_seconds: Histogram::with_buckets(DEFAULT_LATENCY_BUCKETS),
            core_allocs: Counter::new(),
        }
    }
}

impl JobStats {
    /// Registers the handles with `registry` under `gve_jobs_*` names.
    pub fn attach_to(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "gve_jobs_submitted_total",
            "Detect jobs accepted, including instant cache hits.",
            &[],
            &self.submitted,
        );
        registry.register_counter(
            "gve_jobs_completed_total",
            "Detect jobs that finished successfully.",
            &[],
            &self.completed,
        );
        registry.register_counter(
            "gve_jobs_failed_total",
            "Detect jobs that failed.",
            &[],
            &self.failed,
        );
        registry.register_counter(
            "gve_jobs_full_detections_total",
            "Full static detections executed by workers.",
            &[],
            &self.full_detections,
        );
        registry.register_counter(
            "gve_jobs_coalesced_total",
            "Detect jobs coalesced onto an identical in-flight job.",
            &[],
            &self.coalesced,
        );
        registry.register_gauge(
            "gve_jobs_queue_depth",
            "Jobs sent to the worker queue and not yet claimed.",
            &[],
            &self.queue_depth,
        );
        registry.register_counter(
            "gve_jobs_worker_wakeups_total",
            "Worker returns from the blocking queue receive.",
            &[],
            &self.worker_wakeups,
        );
        registry.register_histogram(
            "gve_jobs_queue_wait_seconds",
            "Seconds jobs spent queued before a worker claimed them.",
            &[],
            &self.queue_wait_seconds,
        );
        registry.register_histogram(
            "gve_jobs_run_seconds",
            "Seconds full detections took to compute.",
            &[],
            &self.run_seconds,
        );
        registry.register_counter(
            "gve_core_allocs_total",
            "Heap allocations inside Leiden hot-path runs (zero unless \
             the binary installs the counting global allocator).",
            &[],
            &self.core_allocs,
        );
    }
}

/// Message on a shard's worker queue: a job to run, or a shutdown
/// sentinel (one per worker) so `stop` can wake blocked receivers
/// without a poll timeout.
enum JobMsg {
    Run(u64),
    Shutdown,
}

/// One in-flight detection: the job actually computing (`primary`) plus
/// every identical job that attached as a waiter while it was
/// queued/running. Keyed by the **submit-time** [`PartitionKey`] in
/// [`JobTable::inflight`].
struct Inflight {
    primary: u64,
    waiters: Vec<u64>,
}

/// Job records plus the in-flight coalescing table, under ONE mutex.
///
/// Keeping both maps behind a single lock is what makes the coalescing
/// protocol race-free: a submitter checks the cache and the in-flight
/// table in one critical section, and a finishing worker publishes to
/// the cache *before* it removes the in-flight entry — so there is no
/// interleaving in which a submitter misses the cache, misses the
/// in-flight entry, and starts a duplicate run.
#[derive(Default)]
struct JobTable {
    records: HashMap<u64, JobRecord>,
    inflight: HashMap<PartitionKey, Inflight>,
}

/// One job-engine shard: its own queue, worker threads, and workspace
/// pool. Graphs route to shards by [`crate::registry::shard_hash`], so
/// detections on different graphs never contend on one queue or share
/// workspace arenas across NUMA-unfriendly thread sets.
struct JobShard {
    sender: crossbeam::channel::Sender<JobMsg>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    workspaces: Arc<WorkspacePool>,
    /// Jobs queued on this shard and not yet claimed (exported as
    /// `gve_jobs_shard_queue_depth{shard="i"}`).
    queue_depth: Gauge,
}

/// The sharded background worker pools plus the job table.
pub struct JobEngine {
    registry: Arc<GraphRegistry>,
    cache: Arc<PartitionCache>,
    table: Arc<Mutex<JobTable>>,
    shards: Vec<Arc<JobShard>>,
    next_id: AtomicU64,
    shutdown: Arc<AtomicBool>,
    core_metrics: Arc<CoreMetrics>,
    /// Counter block (public for `/stats` reporting).
    pub stats: Arc<JobStats>,
}

/// Panic-free lock that recovers the data from a poisoned mutex. Job
/// state is a map of plain records — a panicking peer cannot leave it
/// logically torn in a way a reader could misinterpret.
fn lock_table(table: &Mutex<JobTable>) -> std::sync::MutexGuard<'_, JobTable> {
    match table.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl JobEngine {
    /// Starts a single-shard engine with `worker_count` worker threads
    /// (minimum 1). Convenience for tests and embedded use; the serving
    /// tier calls [`JobEngine::start_sharded`].
    pub fn start(
        registry: Arc<GraphRegistry>,
        cache: Arc<PartitionCache>,
        worker_count: usize,
    ) -> Self {
        Self::start_sharded(registry, cache, 1, worker_count)
    }

    /// Starts `shard_count` independent worker pools (minimum 1 shard)
    /// of `workers_per_shard` threads each (minimum 1). Each shard owns
    /// its own queue and [`WorkspacePool`]; graph names route to shards
    /// by the same stable hash the [`GraphRegistry`] uses.
    pub fn start_sharded(
        registry: Arc<GraphRegistry>,
        cache: Arc<PartitionCache>,
        shard_count: usize,
        workers_per_shard: usize,
    ) -> Self {
        let table = Arc::new(Mutex::new(JobTable::default()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(JobStats::default());
        let core_metrics = Arc::new(CoreMetrics::default());
        let mut shards = Vec::new();
        for shard_index in 0..shard_count.max(1) {
            let (sender, receiver) = crossbeam::channel::unbounded::<JobMsg>();
            let shard = Arc::new(JobShard {
                sender,
                workers: Mutex::new(Vec::new()),
                workspaces: Arc::new(WorkspacePool::new()),
                queue_depth: Gauge::new(),
            });
            let mut workers = Vec::new();
            for worker in 0..workers_per_shard.max(1) {
                let receiver = receiver.clone();
                let registry = Arc::clone(&registry);
                let cache = Arc::clone(&cache);
                let table = Arc::clone(&table);
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                let core_metrics = Arc::clone(&core_metrics);
                let shard = Arc::clone(&shard);
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("gve-serve-worker-{shard_index}-{worker}"))
                        .spawn(move || {
                            worker_loop(
                                &receiver,
                                &registry,
                                &cache,
                                &table,
                                &shutdown,
                                &stats,
                                &core_metrics,
                                &shard,
                            )
                        })
                        .expect("spawn worker thread"),
                );
            }
            match shard.workers.lock() {
                Ok(mut slot) => *slot = workers,
                Err(poisoned) => *poisoned.into_inner() = workers,
            }
            shards.push(shard);
        }
        Self {
            registry,
            cache,
            table,
            shards,
            next_id: AtomicU64::new(1),
            shutdown,
            core_metrics,
            stats,
        }
    }

    /// Registers the job counters, queue metrics, per-shard gauges, and
    /// the algorithm core's metrics (fed by every worker detection)
    /// with `registry`.
    pub fn attach_to(&self, registry: &MetricsRegistry) {
        self.stats.attach_to(registry);
        self.core_metrics.attach_to(registry);
        for (index, shard) in self.shards.iter().enumerate() {
            let label = index.to_string();
            registry.register_gauge(
                "gve_jobs_shard_queue_depth",
                "Jobs queued on one engine shard and not yet claimed.",
                &[("shard", label.as_str())],
                &shard.queue_depth,
            );
            shard
                .workspaces
                .attach_with_labels(registry, &[("shard", label.as_str())]);
        }
    }

    /// Number of job-engine shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The engine shard index `graph` routes to.
    pub fn shard_of(&self, graph: &str) -> usize {
        (crate::registry::shard_hash(graph) % self.shards.len() as u64) as usize
    }

    /// The workspace pool of the shard `graph` routes to — everything
    /// that runs Leiden against `graph` (workers, the incremental
    /// update path) should checkout from here so arenas stay warm per
    /// shard.
    pub fn workspaces_for(&self, graph: &str) -> &Arc<WorkspacePool> {
        &self.shards[self.shard_of(graph)].workspaces
    }

    /// Total pooled idle workspaces across all shards (test/stats aid).
    pub fn idle_workspaces(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.workspaces.idle_len())
            .sum()
    }

    /// Submits a detect request against `graph`. Returns the job record:
    /// already `Done` (with `cached = true`) on a cache hit; `coalesced`
    /// (attached to an identical queued/running job) when one is in
    /// flight; otherwise `Queued` for the shard's worker pool.
    pub fn submit(&self, graph: &str, request: DetectRequest) -> Result<JobRecord, String> {
        let entry = self.registry.snapshot(graph).map_err(|e| e.to_string())?;
        let key = PartitionKey {
            graph: graph.to_string(),
            epoch: entry.epoch,
            fingerprint: request.fingerprint(),
        };
        self.stats.submitted.inc();
        // Relaxed: `next_id` needs only uniqueness, which fetch_add
        // provides on its own — the record itself is published via the
        // table mutex below.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut table = lock_table(&self.table);
        // (a) Completed-work dedup: the cache already has this key.
        // Checked under the table lock so a concurrent completion
        // (cache insert → inflight removal, in that order) can never
        // slip between this check and the in-flight check below.
        if self.cache.get(&key).is_some() {
            let record = JobRecord {
                id,
                graph: graph.to_string(),
                request,
                state: JobState::Done,
                cached: true,
                coalesced: false,
                key: Some(key),
                error: None,
                seconds: Some(0.0),
                queued_at: Instant::now(),
            };
            table.records.insert(id, record.clone());
            self.stats.completed.inc();
            return Ok(record);
        }
        // (b) Running-work dedup: an identical job is queued or running
        // — attach as a waiter instead of queueing a duplicate run.
        if let Some(primary) = table.inflight.get(&key).map(|inflight| inflight.primary) {
            let state = match table.records.get(&primary).map(|record| record.state) {
                Some(JobState::Running) => JobState::Running,
                _ => JobState::Queued,
            };
            let record = JobRecord {
                id,
                graph: graph.to_string(),
                request,
                state,
                cached: false,
                coalesced: true,
                key: Some(key.clone()),
                error: None,
                seconds: None,
                queued_at: Instant::now(),
            };
            table.records.insert(id, record.clone());
            if let Some(inflight) = table.inflight.get_mut(&key) {
                inflight.waiters.push(id);
            }
            self.stats.coalesced.inc();
            return Ok(record);
        }
        // (c) Fresh work: become the primary and enqueue on the shard.
        let record = JobRecord {
            id,
            graph: graph.to_string(),
            request,
            state: JobState::Queued,
            cached: false,
            coalesced: false,
            key: Some(key.clone()),
            error: None,
            seconds: None,
            queued_at: Instant::now(),
        };
        table.records.insert(id, record.clone());
        table.inflight.insert(
            key.clone(),
            Inflight {
                primary: id,
                waiters: Vec::new(),
            },
        );
        let shard = &self.shards[self.shard_of(graph)];
        self.stats.queue_depth.inc();
        shard.queue_depth.inc();
        if shard.sender.send(JobMsg::Run(id)).is_err() {
            self.stats.queue_depth.dec();
            shard.queue_depth.dec();
            table.inflight.remove(&key);
            if let Some(record) = table.records.get_mut(&id) {
                record.state = JobState::Failed;
                record.error = Some("job queue closed".to_string());
            }
            return Err("job queue closed".to_string());
        }
        Ok(record)
    }

    /// Looks up a job record.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        lock_table(&self.table).records.get(&id).cloned()
    }

    /// Cancels a job if it is still queued. Returns the new state, or
    /// `None` for unknown ids. A queued **waiter** detaches from its
    /// primary; a queued **primary with waiters** refuses to cancel
    /// (other jobs depend on its run) and stays queued.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut table = lock_table(&self.table);
        let (state, key) = {
            let record = table.records.get(&id)?;
            (record.state, record.key.clone())
        };
        if state != JobState::Queued {
            return Some(state);
        }
        if let Some(key) = key {
            if let Some(inflight) = table.inflight.get_mut(&key) {
                if inflight.primary == id {
                    if !inflight.waiters.is_empty() {
                        // Coalesced jobs ride on this run; cancelling it
                        // would strand them. Keep it queued.
                        return Some(JobState::Queued);
                    }
                    // Sole occupant: drop the in-flight entry so a later
                    // identical submit starts fresh. The worker that
                    // eventually dequeues this id sees `Cancelled` and
                    // skips it.
                    table.inflight.remove(&key);
                } else {
                    inflight.waiters.retain(|&waiter| waiter != id);
                }
            }
        }
        if let Some(record) = table.records.get_mut(&id) {
            record.state = JobState::Cancelled;
        }
        Some(JobState::Cancelled)
    }

    /// Number of job records retained.
    pub fn len(&self) -> usize {
        lock_table(&self.table).records.len()
    }

    /// True when no job has been submitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until `id` leaves the queued/running states or `timeout`
    /// elapses. Test/CLI convenience — the HTTP API itself only polls.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobRecord> {
        let deadline = Instant::now() + timeout;
        loop {
            let record = self.job(id)?;
            match record.state {
                JobState::Queued | JobState::Running => {
                    if Instant::now() >= deadline {
                        return Some(record);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                _ => return Some(record),
            }
        }
    }

    /// Stops all shard worker pools (idempotent).
    pub fn stop(&self) {
        // Release suffices (audit publish rule): workers' Acquire loads
        // observe everything written before the signal; no total order
        // across unrelated atomics is needed, so SeqCst was overkill.
        self.shutdown.store(true, Ordering::Release);
        for shard in &self.shards {
            // Take the handles out under the lock, then send sentinels
            // and join with it released: joining (or touching the shard
            // channel) while holding `workers` would hold the mutex for
            // the whole drain and nest it under the channel send.
            let handles = {
                let mut workers = match shard.workers.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                std::mem::take(&mut *workers)
            };
            // One sentinel per worker unblocks each parked receive in
            // turn; workers that wake on a stale Run message exit at the
            // shutdown check instead.
            for _ in 0..handles.len() {
                let _ = shard.sender.send(JobMsg::Shutdown);
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for JobEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    receiver: &crossbeam::channel::Receiver<JobMsg>,
    registry: &GraphRegistry,
    cache: &PartitionCache,
    table: &Mutex<JobTable>,
    shutdown: &AtomicBool,
    stats: &JobStats,
    core_metrics: &CoreMetrics,
    shard: &JobShard,
) {
    loop {
        // Blocking receive: an idle worker parks inside the channel —
        // no timeout, no spurious wakeups, no CPU burn. `stop` wakes it
        // with a Shutdown sentinel. (The previous 20 ms `recv_timeout`
        // loop woke every idle worker 50 times a second forever.)
        let msg = match receiver.recv() {
            Ok(msg) => msg,
            Err(_) => return, // queue closed: engine dropped
        };
        stats.worker_wakeups.inc();
        // Acquire pairs with the Release store in `stop`.
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let id = match msg {
            JobMsg::Run(id) => id,
            JobMsg::Shutdown => return,
        };
        stats.queue_depth.dec();
        shard.queue_depth.dec();
        // Claim the primary: mark it (and every already-attached
        // waiter) Running. The submit-time key is kept so the in-flight
        // entry can be resolved on completion even though the run may
        // land on a newer epoch.
        let (graph_name, request, queued_at, submit_key) = {
            let mut guard = lock_table(table);
            let Some(record) = guard.records.get_mut(&id) else {
                continue;
            };
            if record.state != JobState::Queued {
                continue; // cancelled while waiting (in-flight entry already popped)
            }
            record.state = JobState::Running;
            let info = (
                record.graph.clone(),
                record.request.clone(),
                record.queued_at,
                record.key.clone(),
            );
            if let Some(key) = &info.3 {
                let waiters = guard
                    .inflight
                    .get(key)
                    .map(|inflight| inflight.waiters.clone())
                    .unwrap_or_default();
                for waiter in waiters {
                    if let Some(waiting) = guard.records.get_mut(&waiter) {
                        waiting.state = JobState::Running;
                    }
                }
            }
            info
        };
        stats
            .queue_wait_seconds
            .observe_duration(queued_at.elapsed());
        let outcome = run_detection(
            registry,
            cache,
            &graph_name,
            &request,
            stats,
            core_metrics,
            &shard.workspaces,
        );
        // Completion: the partition is already in the cache (inserted by
        // `run_detection` BEFORE this lock is taken), so the moment the
        // in-flight entry disappears, any concurrent submitter hits the
        // cache instead. Resolve the primary and every waiter together.
        let mut guard = lock_table(table);
        let waiters = submit_key
            .as_ref()
            .and_then(|key| guard.inflight.remove(key))
            .map(|inflight| inflight.waiters)
            .unwrap_or_default();
        for job_id in std::iter::once(id).chain(waiters) {
            let Some(record) = guard.records.get_mut(&job_id) else {
                continue;
            };
            match &outcome {
                Ok((key, seconds)) => {
                    record.state = JobState::Done;
                    record.key = Some(key.clone());
                    record.seconds = Some(*seconds);
                    stats.completed.inc();
                }
                Err(message) => {
                    record.state = JobState::Failed;
                    record.error = Some(message.clone());
                    stats.failed.inc();
                }
            }
        }
    }
}

/// Runs one full static detection and publishes it into the cache.
/// Re-snapshots the graph so the partition is keyed to the epoch it was
/// actually computed against (the graph may have advanced since submit).
/// The detection runs inside a pooled [`PassWorkspace`], so steady-state
/// requests reuse the arenas grown by earlier jobs instead of
/// reallocating them.
#[allow(clippy::too_many_arguments)]
fn run_detection(
    registry: &GraphRegistry,
    cache: &PartitionCache,
    graph_name: &str,
    request: &DetectRequest,
    stats: &JobStats,
    core_metrics: &CoreMetrics,
    workspaces: &Arc<WorkspacePool>,
) -> Result<(PartitionKey, f64), String> {
    let entry = registry.snapshot(graph_name).map_err(|e| e.to_string())?;
    let key = PartitionKey {
        graph: graph_name.to_string(),
        epoch: entry.epoch,
        fingerprint: request.fingerprint(),
    };
    // Another worker may have raced us to the same key.
    if cache.peek(&key).is_some() {
        return Ok((key, 0.0));
    }
    let config = request.to_config()?;
    let graph = Arc::clone(&entry.graph);
    let observer = RunObserver::with_metrics(core_metrics);
    let mut workspace = workspaces.checkout();
    let started = Instant::now();
    let alloc_before = alloc_count::snapshot();
    // A panicking run may leave the arena partially written; that is
    // fine to return to the pool (hence AssertUnwindSafe) because every
    // run reinitializes the prefixes it reads before using them.
    let result = catch_unwind(AssertUnwindSafe(|| {
        Leiden::new(config).run_observed_in(&graph, &mut workspace, &observer)
    }))
    .map_err(|_| "detection panicked".to_string())?;
    stats
        .core_allocs
        .add(alloc_count::snapshot().allocs_since(&alloc_before));
    drop(workspace); // park the arena for the next job
    let seconds = started.elapsed().as_secs_f64();
    stats.full_detections.inc();
    stats.run_seconds.observe(seconds);
    let modularity = gve_quality::modularity(&graph, &result.membership);
    cache.insert(
        key.clone(),
        CachedPartition {
            membership: Arc::new(result.membership),
            num_communities: result.num_communities,
            modularity,
            seconds,
            origin: PartitionOrigin::Detection,
            request: request.clone(),
        },
    );
    Ok((key, seconds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::GraphSource;
    use gve_generate::PlantedPartition;

    fn engine_with_graph(name: &str) -> (JobEngine, Arc<PartitionCache>) {
        let registry = Arc::new(GraphRegistry::new());
        let cache = Arc::new(PartitionCache::new());
        let planted = PlantedPartition::new(300, 6, 10.0, 0.5).seed(11).generate();
        registry
            .register(name, planted.graph, GraphSource::Generated("sbm".into()))
            .unwrap();
        (
            JobEngine::start(Arc::clone(&registry), Arc::clone(&cache), 2),
            cache,
        )
    }

    #[test]
    fn detect_request_parsing_and_fingerprint() {
        let body = crate::json::parse(r#"{"objective":"cpm","resolution":0.05,"seed":7}"#).unwrap();
        let request = DetectRequest::from_json(&body).unwrap();
        assert_eq!(request.objective, "cpm");
        assert_eq!(request.seed, 7);
        assert_eq!(request.fingerprint(), request.clone().fingerprint());
        assert_ne!(
            request.fingerprint(),
            DetectRequest::default().fingerprint()
        );
        let bad = crate::json::parse(r#"{"objective":"louvain"}"#).unwrap();
        assert!(DetectRequest::from_json(&bad).is_err());
    }

    /// Kernel/ordering/layout/chunk-size are part of the fingerprint, so
    /// the partition cache never serves a v1 result for a v2 request (or
    /// vice versa), and bad tokens are rejected at parse time.
    #[test]
    fn kernel_knobs_fingerprint_and_validate() {
        let body = crate::json::parse(
            r#"{"kernel":"v3","ordering":"degree","layout":"interleaved","chunk_size":512,"scheduling":"color-sync","chunking":"guided"}"#,
        )
        .unwrap();
        let request = DetectRequest::from_json(&body).unwrap();
        assert_eq!(request.kernel, KernelVersion::V3);
        assert_eq!(request.ordering, VertexOrdering::DegreeDesc);
        assert_eq!(request.layout, EdgeLayout::Interleaved);
        assert_eq!(request.chunk_size, 512);
        assert_eq!(request.scheduling, Scheduling::ColorSynchronous);
        assert_eq!(request.chunking, ChunkScheduling::Guided);

        let defaults = DetectRequest::default();
        for other in [
            DetectRequest {
                kernel: KernelVersion::V1,
                ..defaults.clone()
            },
            DetectRequest {
                ordering: VertexOrdering::Bfs,
                ..defaults.clone()
            },
            DetectRequest {
                layout: EdgeLayout::Interleaved,
                ..defaults.clone()
            },
            DetectRequest {
                chunk_size: defaults.chunk_size + 1,
                ..defaults.clone()
            },
            DetectRequest {
                scheduling: Scheduling::ColorSynchronous,
                ..defaults.clone()
            },
            DetectRequest {
                chunking: ChunkScheduling::Stealing,
                ..defaults.clone()
            },
        ] {
            assert_ne!(other.fingerprint(), defaults.fingerprint());
        }

        for bad in [
            r#"{"kernel":"v9"}"#,
            r#"{"ordering":"random"}"#,
            r#"{"layout":"columnar"}"#,
            r#"{"chunk_size":0}"#,
            r#"{"scheduling":"chaotic"}"#,
            r#"{"chunking":"chaotic"}"#,
        ] {
            let body = crate::json::parse(bad).unwrap();
            assert!(DetectRequest::from_json(&body).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn job_runs_to_done_and_second_submit_hits_cache() {
        let (engine, cache) = engine_with_graph("sbm");
        let first = engine.submit("sbm", DetectRequest::default()).unwrap();
        assert!(!first.cached);
        let record = engine.wait(first.id, Duration::from_secs(30)).unwrap();
        assert_eq!(record.state, JobState::Done, "error: {:?}", record.error);
        let partition = cache.peek(record.key.as_ref().unwrap()).unwrap();
        assert!(partition.num_communities > 1);
        assert!(partition.modularity > 0.2);

        let second = engine.submit("sbm", DetectRequest::default()).unwrap();
        assert!(second.cached);
        assert_eq!(second.state, JobState::Done);
        assert_eq!(engine.stats.full_detections.get(), 1);
        assert_eq!(engine.stats.run_seconds.count(), 1);
        assert!(engine.stats.queue_wait_seconds.count() >= 1);

        // Different config → different fingerprint → real work again.
        let other = DetectRequest {
            seed: 99,
            ..DetectRequest::default()
        };
        let third = engine.submit("sbm", other).unwrap();
        assert!(!third.cached);
        let third = engine.wait(third.id, Duration::from_secs(30)).unwrap();
        assert_eq!(third.state, JobState::Done);
        engine.stop();
    }

    #[test]
    fn unknown_graph_fails_at_submit_and_cancel_works_on_queued() {
        let (engine, _cache) = engine_with_graph("sbm");
        assert!(engine.submit("nope", DetectRequest::default()).is_err());
        assert!(engine.cancel(424242).is_none());
        engine.stop();
        assert!(engine.is_empty());
    }

    /// Regression test for the busy-poll worker loop: workers used to
    /// spin on `recv_timeout(20ms)`, waking ~50×/s each while idle. Now
    /// they block in `recv`, so the wakeup counter must stay flat over
    /// an idle window, and the queue must drain to depth zero.
    #[test]
    fn idle_workers_have_no_wakeups() {
        let (engine, _cache) = engine_with_graph("sbm");
        let job = engine.submit("sbm", DetectRequest::default()).unwrap();
        let record = engine.wait(job.id, Duration::from_secs(30)).unwrap();
        assert_eq!(record.state, JobState::Done);
        assert_eq!(engine.stats.queue_depth.get(), 0.0);

        let wakeups = engine.stats.worker_wakeups.get();
        assert!(wakeups >= 1, "the job itself must have woken a worker");
        // An idle window several times the old poll interval: the old
        // loop would log ~15 wakeups here, a blocking receive logs none.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(
            engine.stats.worker_wakeups.get(),
            wakeups,
            "idle workers woke up"
        );
        engine.stop();
    }

    /// Acceptance: N identical concurrent detects execute exactly ONE
    /// Leiden run. Threads race the submit across the whole
    /// queued → running → done window; every outcome must be either a
    /// cache hit (submitted after completion) or a coalesced waiter —
    /// never a duplicate detection — and all jobs resolve to the same
    /// partition key.
    #[test]
    fn concurrent_identical_submits_run_exactly_once() {
        let registry = Arc::new(GraphRegistry::new());
        let cache = Arc::new(PartitionCache::new());
        let planted = PlantedPartition::new(2000, 8, 10.0, 0.8).seed(7).generate();
        registry
            .register("sbm", planted.graph, GraphSource::Generated("sbm".into()))
            .unwrap();
        let engine = Arc::new(JobEngine::start_sharded(
            Arc::clone(&registry),
            Arc::clone(&cache),
            2,
            2,
        ));
        const CLIENTS: usize = 16;
        let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
        let records: Vec<JobRecord> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        let submitted = engine.submit("sbm", DetectRequest::default()).unwrap();
                        engine
                            .wait(submitted.id, Duration::from_secs(60))
                            .expect("job record")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        assert_eq!(
            engine.stats.full_detections.get(),
            1,
            "exactly one Leiden run for {CLIENTS} identical submits"
        );
        let first_key = records[0].key.clone().unwrap();
        let mut cached = 0u64;
        for record in &records {
            assert_eq!(record.state, JobState::Done, "error: {:?}", record.error);
            assert_eq!(record.key.as_ref(), Some(&first_key), "keys diverged");
            if record.cached {
                cached += 1;
                assert!(!record.coalesced);
            }
        }
        assert_eq!(
            engine.stats.coalesced.get() + cached,
            (CLIENTS - 1) as u64,
            "every non-primary submit must be a cache hit or a waiter"
        );
        assert_eq!(engine.stats.submitted.get(), CLIENTS as u64);
        assert_eq!(engine.stats.completed.get(), CLIENTS as u64);
        // One partition in the cache serves everyone.
        assert!(cache.peek(&first_key).is_some());
        engine.stop();
    }

    /// Cancel semantics under coalescing: a queued waiter detaches; a
    /// queued primary with waiters refuses to cancel; once all waiters
    /// are gone the primary cancels and pops the in-flight entry so the
    /// next identical submit starts fresh.
    #[test]
    fn cancel_respects_coalesced_waiters() {
        let registry = Arc::new(GraphRegistry::new());
        let cache = Arc::new(PartitionCache::new());
        let blocker = PlantedPartition::new(4000, 8, 10.0, 0.8).seed(3).generate();
        let small = PlantedPartition::new(300, 6, 10.0, 0.5).seed(11).generate();
        registry
            .register(
                "blocker",
                blocker.graph,
                GraphSource::Generated("sbm".into()),
            )
            .unwrap();
        registry
            .register("small", small.graph, GraphSource::Generated("sbm".into()))
            .unwrap();
        // One shard, one worker: everything funnels through one queue.
        let engine = JobEngine::start_sharded(Arc::clone(&registry), Arc::clone(&cache), 1, 1);
        // Keep the sole worker busy long enough to exercise queued-state
        // cancels deterministically: several distinct detections ahead.
        for seed in 0..3 {
            let request = DetectRequest {
                seed: 1000 + seed,
                ..DetectRequest::default()
            };
            engine.submit("blocker", request).unwrap();
        }
        let primary = engine.submit("small", DetectRequest::default()).unwrap();
        assert_eq!(primary.state, JobState::Queued);
        let waiter = engine.submit("small", DetectRequest::default()).unwrap();
        assert!(waiter.coalesced, "identical queued submit must coalesce");

        // Waiter cancels cleanly.
        assert_eq!(engine.cancel(waiter.id), Some(JobState::Cancelled));
        // New identical submit re-attaches to the still-queued primary.
        let waiter2 = engine.submit("small", DetectRequest::default()).unwrap();
        assert!(waiter2.coalesced);
        // Primary with a live waiter refuses to cancel.
        assert_eq!(engine.cancel(primary.id), Some(JobState::Queued));
        // Detach the waiter, then the primary cancels.
        assert_eq!(engine.cancel(waiter2.id), Some(JobState::Cancelled));
        assert_eq!(engine.cancel(primary.id), Some(JobState::Cancelled));
        // In-flight entry is gone: the next identical submit is a fresh
        // primary, not a waiter on a cancelled job.
        let fresh = engine.submit("small", DetectRequest::default()).unwrap();
        assert!(!fresh.coalesced, "cancelled run must not accrete waiters");
        let fresh = engine.wait(fresh.id, Duration::from_secs(60)).unwrap();
        assert_eq!(fresh.state, JobState::Done, "error: {:?}", fresh.error);
        assert_eq!(engine.stats.coalesced.get(), 2);
        engine.stop();
        // The cancelled jobs stayed cancelled.
        assert_eq!(engine.job(waiter.id).unwrap().state, JobState::Cancelled);
        assert_eq!(engine.job(primary.id).unwrap().state, JobState::Cancelled);
    }

    /// Sharded engines route each graph to a stable shard with its own
    /// workspace pool, and export per-shard queue gauges.
    #[test]
    fn sharded_engine_routes_and_exports_per_shard_metrics() {
        let registry = Arc::new(GraphRegistry::new());
        let cache = Arc::new(PartitionCache::new());
        let planted = PlantedPartition::new(300, 6, 10.0, 0.5).seed(11).generate();
        registry
            .register("sbm", planted.graph, GraphSource::Generated("sbm".into()))
            .unwrap();
        let engine = JobEngine::start_sharded(Arc::clone(&registry), Arc::clone(&cache), 4, 1);
        assert_eq!(engine.num_shards(), 4);
        assert_eq!(engine.shard_of("sbm"), engine.shard_of("sbm"));
        let metrics = MetricsRegistry::new();
        engine.attach_to(&metrics);
        let job = engine.submit("sbm", DetectRequest::default()).unwrap();
        let record = engine.wait(job.id, Duration::from_secs(60)).unwrap();
        assert_eq!(record.state, JobState::Done, "error: {:?}", record.error);
        // The workspace landed back in the pool of the routed shard.
        assert_eq!(engine.workspaces_for("sbm").idle_len(), 1);
        assert_eq!(engine.idle_workspaces(), 1);
        let text = metrics.render();
        for shard in 0..4 {
            assert!(
                text.contains(&format!(
                    "gve_jobs_shard_queue_depth{{shard=\"{shard}\"}} 0"
                )),
                "missing shard {shard} gauge in:\n{text}"
            );
        }
        let routed = engine.shard_of("sbm");
        assert!(
            text.contains(&format!(
                "gve_workspace_checkouts_total{{shard=\"{routed}\"}} 1"
            )),
            "missing per-shard workspace counter in:\n{text}"
        );
        engine.stop();
    }

    #[test]
    fn attach_to_exports_job_and_core_metrics() {
        let (engine, _cache) = engine_with_graph("sbm");
        let registry = MetricsRegistry::new();
        engine.attach_to(&registry);
        let job = engine.submit("sbm", DetectRequest::default()).unwrap();
        engine.wait(job.id, Duration::from_secs(30)).unwrap();
        engine.stop();
        let text = registry.render();
        for name in [
            "gve_jobs_submitted_total 1",
            "gve_jobs_full_detections_total 1",
            "gve_jobs_queue_depth 0",
            "gve_jobs_queue_wait_seconds_count 1",
            "gve_jobs_run_seconds_count 1",
            "gve_leiden_runs_total 1",
            "gve_leiden_phase_seconds_total{phase=\"local_move\"}",
            // Zero here: the test binary does not install the counting
            // global allocator, so the counter must exist but stay flat.
            "gve_core_allocs_total 0",
        ] {
            assert!(text.contains(name), "missing `{name}` in:\n{text}");
        }
    }
}
