//! Asynchronous detection jobs.
//!
//! Detect requests do not block the HTTP connection: the handler
//! submits a job, the client gets an id back immediately and polls
//! `GET /jobs/{id}` until the state reaches `done` (or `failed`). A
//! small pool of worker threads drains the queue; each worker runs
//! static GVE-Leiden on the graph's current snapshot and publishes the
//! partition into the [`PartitionCache`](crate::cache::PartitionCache),
//! so an identical request against the same graph epoch is a cache hit
//! and never reaches the queue.

use crate::cache::{CachedPartition, PartitionCache, PartitionKey, PartitionOrigin};
use crate::json::Json;
use crate::pool::WorkspacePool;
use crate::registry::GraphRegistry;
use gve_leiden::{
    CoreMetrics, EdgeLayout, KernelVersion, Leiden, LeidenConfig, Objective, RunObserver,
    Scheduling, VertexOrdering,
};
use gve_obs::{Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_LATENCY_BUCKETS};
use gve_prim::alloc_count;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A parsed, validated detect request — the unit the cache fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectRequest {
    /// `"modularity"` or `"cpm"`.
    pub objective: String,
    /// Resolution parameter γ.
    pub resolution: f64,
    /// RNG seed for randomized refinement.
    pub seed: u64,
    /// Cap on passes (default: library default).
    pub max_passes: usize,
    /// Dynamic-scheduling chunk size.
    pub chunk_size: usize,
    /// Scan kernel: two-pass `v1` or fused degree-aware `v2`. Part of
    /// the cache fingerprint so v1 and v2 partitions never alias.
    pub kernel: KernelVersion,
    /// Cache-aware vertex relabeling applied before detection.
    pub ordering: VertexOrdering,
    /// CSR edge layout (`split` arrays or `interleaved` pairs).
    pub layout: EdgeLayout,
    /// Phase scheduling: fast `async` (default) or reproducible
    /// `color-sync`.
    pub scheduling: Scheduling,
}

impl Default for DetectRequest {
    fn default() -> Self {
        let defaults = LeidenConfig::default();
        Self {
            objective: "modularity".to_string(),
            resolution: 1.0,
            seed: defaults.seed,
            max_passes: defaults.max_passes,
            chunk_size: defaults.chunk_size,
            kernel: defaults.kernel,
            ordering: defaults.ordering,
            layout: defaults.layout,
            scheduling: defaults.scheduling,
        }
    }
}

impl DetectRequest {
    /// Parses the JSON body of `POST /graphs/{name}/detect`. Absent
    /// fields keep their defaults; unknown objectives are rejected.
    pub fn from_json(body: &Json) -> Result<Self, String> {
        let mut request = DetectRequest::default();
        if let Some(objective) = body.get("objective").and_then(Json::as_str) {
            match objective {
                "modularity" | "cpm" => request.objective = objective.to_string(),
                other => return Err(format!("unknown objective '{other}' (modularity|cpm)")),
            }
        }
        if let Some(resolution) = body.get("resolution").and_then(Json::as_f64) {
            request.resolution = resolution;
        }
        if let Some(seed) = body.get("seed").and_then(Json::as_u64) {
            request.seed = seed;
        }
        if let Some(max_passes) = body.get("max_passes").and_then(Json::as_u64) {
            request.max_passes = max_passes as usize;
        }
        if let Some(chunk_size) = body.get("chunk_size").and_then(Json::as_u64) {
            request.chunk_size = chunk_size as usize;
        }
        if let Some(kernel) = body.get("kernel").and_then(Json::as_str) {
            request.kernel = KernelVersion::parse(kernel)?;
        }
        if let Some(ordering) = body.get("ordering").and_then(Json::as_str) {
            request.ordering = VertexOrdering::parse(ordering)?;
        }
        if let Some(layout) = body.get("layout").and_then(Json::as_str) {
            request.layout = EdgeLayout::parse(layout)?;
        }
        if let Some(scheduling) = body.get("scheduling").and_then(Json::as_str) {
            request.scheduling = Scheduling::parse(scheduling)?;
        }
        request.to_config()?; // surface invalid configs at submit time
        Ok(request)
    }

    /// The equivalent `LeidenConfig`.
    pub fn to_config(&self) -> Result<LeidenConfig, String> {
        let objective = match self.objective.as_str() {
            "modularity" => Objective::Modularity {
                resolution: self.resolution,
            },
            "cpm" => Objective::Cpm {
                resolution: self.resolution,
            },
            other => return Err(format!("unknown objective '{other}'")),
        };
        let mut config = LeidenConfig::default()
            .objective(objective)
            .seed(self.seed)
            .chunk_size(self.chunk_size)
            .kernel(self.kernel)
            .ordering(self.ordering)
            .layout(self.layout)
            .scheduling(self.scheduling);
        config.max_passes = self.max_passes;
        config.validate()?;
        Ok(config)
    }

    /// Stable fingerprint for cache keying (FNV-1a over the canonical
    /// textual form, so semantically equal requests collide on purpose).
    pub fn fingerprint(&self) -> u64 {
        let canonical = format!(
            "objective={};resolution={};seed={};max_passes={};chunk_size={};kernel={};ordering={};layout={};scheduling={}",
            self.objective,
            self.resolution,
            self.seed,
            self.max_passes,
            self.chunk_size,
            self.kernel.label(),
            self.ordering.label(),
            self.layout.label(),
            self.scheduling.label(),
        );
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in canonical.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// JSON echo of the request (reported in job records).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("objective", Json::from(self.objective.as_str())),
            ("resolution", Json::from(self.resolution)),
            ("seed", Json::from(self.seed)),
            ("max_passes", Json::from(self.max_passes)),
            ("chunk_size", Json::from(self.chunk_size)),
            ("kernel", Json::from(self.kernel.label())),
            ("ordering", Json::from(self.ordering.label())),
            ("layout", Json::from(self.layout.label())),
            ("scheduling", Json::from(self.scheduling.label())),
        ])
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is computing.
    Running,
    /// Finished; the partition is in the cache.
    Done,
    /// The computation errored.
    Failed,
    /// Cancelled while still queued.
    Cancelled,
}

impl JobState {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One detect job, as reported by `GET /jobs/{id}`.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Target graph.
    pub graph: String,
    /// The request that created the job.
    pub request: DetectRequest,
    /// Current state.
    pub state: JobState,
    /// Whether the answer came straight from the cache.
    pub cached: bool,
    /// Cache key of the resulting partition (set once known).
    pub key: Option<PartitionKey>,
    /// Error message for failed jobs.
    pub error: Option<String>,
    /// Compute seconds for completed jobs.
    pub seconds: Option<f64>,
    /// Submission instant, for the queue-wait histogram.
    pub queued_at: Instant,
}

impl JobRecord {
    /// JSON form for the API (includes partition summary when done).
    pub fn to_json(&self, cache: &PartitionCache) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::from(self.id)),
            ("graph".to_string(), Json::from(self.graph.as_str())),
            ("state".to_string(), Json::from(self.state.label())),
            ("cached".to_string(), Json::from(self.cached)),
            ("request".to_string(), self.request.to_json()),
        ];
        if let Some(error) = &self.error {
            fields.push(("error".to_string(), Json::from(error.as_str())));
        }
        if let Some(seconds) = self.seconds {
            fields.push(("seconds".to_string(), Json::from(seconds)));
        }
        if let (JobState::Done, Some(key)) = (self.state, &self.key) {
            if let Some(partition) = cache.peek(key) {
                fields.push(("epoch".to_string(), Json::from(key.epoch)));
                fields.push((
                    "num_communities".to_string(),
                    Json::from(partition.num_communities),
                ));
                fields.push(("modularity".to_string(), Json::from(partition.modularity)));
                fields.push(("origin".to_string(), Json::from(partition.origin.label())));
            }
        }
        Json::Obj(fields)
    }
}

/// Counters and queue metrics exported through `/stats` and `/metrics`.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Jobs accepted (including instant cache hits).
    pub submitted: Counter,
    /// Jobs that finished successfully (cache hits count).
    pub completed: Counter,
    /// Jobs that failed.
    pub failed: Counter,
    /// Full static detections actually executed by workers.
    pub full_detections: Counter,
    /// Jobs currently queued (sent but not yet claimed by a worker).
    pub queue_depth: Gauge,
    /// Times a worker returned from its blocking receive. Stays flat
    /// while the pool is idle — the regression signal for the old
    /// 20 ms busy-poll loop.
    pub worker_wakeups: Counter,
    /// Seconds jobs spent queued before a worker claimed them.
    pub queue_wait_seconds: Histogram,
    /// Seconds full detections took to compute.
    pub run_seconds: Histogram,
    /// Heap allocations performed inside Leiden hot-path runs (full
    /// detections and incremental refreshes). Reads zero unless the
    /// binary installed [`alloc_count::CountingAllocator`] as the
    /// global allocator; flat-lining after warm-up is the observable
    /// proof that the workspace pool reached zero steady-state
    /// allocation.
    pub core_allocs: Counter,
}

impl Default for JobStats {
    fn default() -> Self {
        Self {
            submitted: Counter::new(),
            completed: Counter::new(),
            failed: Counter::new(),
            full_detections: Counter::new(),
            queue_depth: Gauge::new(),
            worker_wakeups: Counter::new(),
            queue_wait_seconds: Histogram::with_buckets(DEFAULT_LATENCY_BUCKETS),
            run_seconds: Histogram::with_buckets(DEFAULT_LATENCY_BUCKETS),
            core_allocs: Counter::new(),
        }
    }
}

impl JobStats {
    /// Registers the handles with `registry` under `gve_jobs_*` names.
    pub fn attach_to(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "gve_jobs_submitted_total",
            "Detect jobs accepted, including instant cache hits.",
            &[],
            &self.submitted,
        );
        registry.register_counter(
            "gve_jobs_completed_total",
            "Detect jobs that finished successfully.",
            &[],
            &self.completed,
        );
        registry.register_counter(
            "gve_jobs_failed_total",
            "Detect jobs that failed.",
            &[],
            &self.failed,
        );
        registry.register_counter(
            "gve_jobs_full_detections_total",
            "Full static detections executed by workers.",
            &[],
            &self.full_detections,
        );
        registry.register_gauge(
            "gve_jobs_queue_depth",
            "Jobs sent to the worker queue and not yet claimed.",
            &[],
            &self.queue_depth,
        );
        registry.register_counter(
            "gve_jobs_worker_wakeups_total",
            "Worker returns from the blocking queue receive.",
            &[],
            &self.worker_wakeups,
        );
        registry.register_histogram(
            "gve_jobs_queue_wait_seconds",
            "Seconds jobs spent queued before a worker claimed them.",
            &[],
            &self.queue_wait_seconds,
        );
        registry.register_histogram(
            "gve_jobs_run_seconds",
            "Seconds full detections took to compute.",
            &[],
            &self.run_seconds,
        );
        registry.register_counter(
            "gve_core_allocs_total",
            "Heap allocations inside Leiden hot-path runs (zero unless \
             the binary installs the counting global allocator).",
            &[],
            &self.core_allocs,
        );
    }
}

/// Message on the worker queue: a job to run, or a shutdown sentinel
/// (one per worker) so `stop` can wake blocked receivers without a
/// poll timeout.
enum JobMsg {
    Run(u64),
    Shutdown,
}

/// The background worker pool plus the job table.
pub struct JobEngine {
    registry: Arc<GraphRegistry>,
    cache: Arc<PartitionCache>,
    records: Arc<Mutex<HashMap<u64, JobRecord>>>,
    sender: crossbeam::channel::Sender<JobMsg>,
    next_id: AtomicU64,
    shutdown: Arc<AtomicBool>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    core_metrics: Arc<CoreMetrics>,
    /// Counter block (public for `/stats` reporting).
    pub stats: Arc<JobStats>,
    /// Pass-resident workspace arenas shared by the workers (public so
    /// tests and `/stats` can inspect reuse).
    pub workspaces: Arc<WorkspacePool>,
}

impl JobEngine {
    /// Starts `worker_count` worker threads (minimum 1).
    pub fn start(
        registry: Arc<GraphRegistry>,
        cache: Arc<PartitionCache>,
        worker_count: usize,
    ) -> Self {
        let (sender, receiver) = crossbeam::channel::unbounded::<JobMsg>();
        let records = Arc::new(Mutex::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(JobStats::default());
        let core_metrics = Arc::new(CoreMetrics::default());
        let workspaces = Arc::new(WorkspacePool::new());
        let mut workers = Vec::new();
        for worker in 0..worker_count.max(1) {
            let receiver = receiver.clone();
            let registry = Arc::clone(&registry);
            let cache = Arc::clone(&cache);
            let records = Arc::clone(&records);
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let core_metrics = Arc::clone(&core_metrics);
            let workspaces = Arc::clone(&workspaces);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gve-serve-worker-{worker}"))
                    .spawn(move || {
                        worker_loop(
                            &receiver,
                            &registry,
                            &cache,
                            &records,
                            &shutdown,
                            &stats,
                            &core_metrics,
                            &workspaces,
                        )
                    })
                    .expect("spawn worker thread"),
            );
        }
        Self {
            registry,
            cache,
            records,
            sender,
            next_id: AtomicU64::new(1),
            shutdown,
            workers: Mutex::new(workers),
            core_metrics,
            stats,
            workspaces,
        }
    }

    /// Registers the job counters, queue metrics, and the algorithm
    /// core's metrics (fed by every worker detection) with `registry`.
    pub fn attach_to(&self, registry: &MetricsRegistry) {
        self.stats.attach_to(registry);
        self.core_metrics.attach_to(registry);
        self.workspaces.attach_to(registry);
    }

    /// Submits a detect request against `graph`. Returns the job record:
    /// already `Done` (with `cached = true`) on a cache hit, otherwise
    /// `Queued` for the worker pool.
    pub fn submit(&self, graph: &str, request: DetectRequest) -> Result<JobRecord, String> {
        let entry = self.registry.snapshot(graph).map_err(|e| e.to_string())?;
        let key = PartitionKey {
            graph: graph.to_string(),
            epoch: entry.epoch,
            fingerprint: request.fingerprint(),
        };
        self.stats.submitted.inc();
        // Relaxed: `next_id` needs only uniqueness, which fetch_add
        // provides on its own — the record itself is published via the
        // mutex below.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let hit = self.cache.get(&key).is_some();
        let record = JobRecord {
            id,
            graph: graph.to_string(),
            request,
            state: if hit {
                JobState::Done
            } else {
                JobState::Queued
            },
            cached: hit,
            key: Some(key),
            error: None,
            seconds: if hit { Some(0.0) } else { None },
            queued_at: Instant::now(),
        };
        self.records
            .lock()
            .expect("job table poisoned")
            .insert(id, record.clone());
        if hit {
            self.stats.completed.inc();
        } else {
            self.stats.queue_depth.inc();
            if self.sender.send(JobMsg::Run(id)).is_err() {
                self.stats.queue_depth.dec();
                return Err("job queue closed".to_string());
            }
        }
        Ok(record)
    }

    /// Looks up a job record.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        self.records
            .lock()
            .expect("job table poisoned")
            .get(&id)
            .cloned()
    }

    /// Cancels a job if it is still queued. Returns the new state, or
    /// `None` for unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut records = self.records.lock().expect("job table poisoned");
        let record = records.get_mut(&id)?;
        if record.state == JobState::Queued {
            record.state = JobState::Cancelled;
        }
        Some(record.state)
    }

    /// Number of job records retained.
    pub fn len(&self) -> usize {
        self.records.lock().expect("job table poisoned").len()
    }

    /// True when no job has been submitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until `id` leaves the queued/running states or `timeout`
    /// elapses. Test/CLI convenience — the HTTP API itself only polls.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobRecord> {
        let deadline = Instant::now() + timeout;
        loop {
            let record = self.job(id)?;
            match record.state {
                JobState::Queued | JobState::Running => {
                    if Instant::now() >= deadline {
                        return Some(record);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                _ => return Some(record),
            }
        }
    }

    /// Stops the worker pool (idempotent).
    pub fn stop(&self) {
        // Release suffices (audit publish rule): workers' Acquire loads
        // observe everything written before the signal; no total order
        // across unrelated atomics is needed, so SeqCst was overkill.
        self.shutdown.store(true, Ordering::Release);
        let mut workers = self.workers.lock().expect("worker table poisoned");
        // One sentinel per worker unblocks each parked receive in turn;
        // workers that wake on a stale Run message exit at the shutdown
        // check instead.
        for _ in 0..workers.len() {
            let _ = self.sender.send(JobMsg::Shutdown);
        }
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for JobEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    receiver: &crossbeam::channel::Receiver<JobMsg>,
    registry: &GraphRegistry,
    cache: &PartitionCache,
    records: &Mutex<HashMap<u64, JobRecord>>,
    shutdown: &AtomicBool,
    stats: &JobStats,
    core_metrics: &CoreMetrics,
    workspaces: &Arc<WorkspacePool>,
) {
    loop {
        // Blocking receive: an idle worker parks inside the channel —
        // no timeout, no spurious wakeups, no CPU burn. `stop` wakes it
        // with a Shutdown sentinel. (The previous 20 ms `recv_timeout`
        // loop woke every idle worker 50 times a second forever.)
        let msg = match receiver.recv() {
            Ok(msg) => msg,
            Err(_) => return, // queue closed: engine dropped
        };
        stats.worker_wakeups.inc();
        // Acquire pairs with the Release store in `stop`.
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let id = match msg {
            JobMsg::Run(id) => id,
            JobMsg::Shutdown => return,
        };
        stats.queue_depth.dec();
        let (graph_name, request, queued_at) = {
            let mut table = records.lock().expect("job table poisoned");
            let Some(record) = table.get_mut(&id) else {
                continue;
            };
            if record.state != JobState::Queued {
                continue; // cancelled while waiting
            }
            record.state = JobState::Running;
            (
                record.graph.clone(),
                record.request.clone(),
                record.queued_at,
            )
        };
        stats
            .queue_wait_seconds
            .observe_duration(queued_at.elapsed());
        let outcome = run_detection(
            registry,
            cache,
            &graph_name,
            &request,
            stats,
            core_metrics,
            workspaces,
        );
        let mut table = records.lock().expect("job table poisoned");
        let Some(record) = table.get_mut(&id) else {
            continue;
        };
        match outcome {
            Ok((key, seconds)) => {
                record.state = JobState::Done;
                record.key = Some(key);
                record.seconds = Some(seconds);
                stats.completed.inc();
            }
            Err(message) => {
                record.state = JobState::Failed;
                record.error = Some(message);
                stats.failed.inc();
            }
        }
    }
}

/// Runs one full static detection and publishes it into the cache.
/// Re-snapshots the graph so the partition is keyed to the epoch it was
/// actually computed against (the graph may have advanced since submit).
/// The detection runs inside a pooled [`PassWorkspace`], so steady-state
/// requests reuse the arenas grown by earlier jobs instead of
/// reallocating them.
#[allow(clippy::too_many_arguments)]
fn run_detection(
    registry: &GraphRegistry,
    cache: &PartitionCache,
    graph_name: &str,
    request: &DetectRequest,
    stats: &JobStats,
    core_metrics: &CoreMetrics,
    workspaces: &Arc<WorkspacePool>,
) -> Result<(PartitionKey, f64), String> {
    let entry = registry.snapshot(graph_name).map_err(|e| e.to_string())?;
    let key = PartitionKey {
        graph: graph_name.to_string(),
        epoch: entry.epoch,
        fingerprint: request.fingerprint(),
    };
    // Another worker may have raced us to the same key.
    if cache.peek(&key).is_some() {
        return Ok((key, 0.0));
    }
    let config = request.to_config()?;
    let graph = Arc::clone(&entry.graph);
    let observer = RunObserver::with_metrics(core_metrics);
    let mut workspace = workspaces.checkout();
    let started = Instant::now();
    let alloc_before = alloc_count::snapshot();
    // A panicking run may leave the arena partially written; that is
    // fine to return to the pool (hence AssertUnwindSafe) because every
    // run reinitializes the prefixes it reads before using them.
    let result = catch_unwind(AssertUnwindSafe(|| {
        Leiden::new(config).run_observed_in(&graph, &mut workspace, &observer)
    }))
    .map_err(|_| "detection panicked".to_string())?;
    stats
        .core_allocs
        .add(alloc_count::snapshot().allocs_since(&alloc_before));
    drop(workspace); // park the arena for the next job
    let seconds = started.elapsed().as_secs_f64();
    stats.full_detections.inc();
    stats.run_seconds.observe(seconds);
    let modularity = gve_quality::modularity(&graph, &result.membership);
    cache.insert(
        key.clone(),
        CachedPartition {
            membership: Arc::new(result.membership),
            num_communities: result.num_communities,
            modularity,
            seconds,
            origin: PartitionOrigin::Detection,
            request: request.clone(),
        },
    );
    Ok((key, seconds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::GraphSource;
    use gve_generate::PlantedPartition;

    fn engine_with_graph(name: &str) -> (JobEngine, Arc<PartitionCache>) {
        let registry = Arc::new(GraphRegistry::new());
        let cache = Arc::new(PartitionCache::new());
        let planted = PlantedPartition::new(300, 6, 10.0, 0.5).seed(11).generate();
        registry
            .register(name, planted.graph, GraphSource::Generated("sbm".into()))
            .unwrap();
        (
            JobEngine::start(Arc::clone(&registry), Arc::clone(&cache), 2),
            cache,
        )
    }

    #[test]
    fn detect_request_parsing_and_fingerprint() {
        let body = crate::json::parse(r#"{"objective":"cpm","resolution":0.05,"seed":7}"#).unwrap();
        let request = DetectRequest::from_json(&body).unwrap();
        assert_eq!(request.objective, "cpm");
        assert_eq!(request.seed, 7);
        assert_eq!(request.fingerprint(), request.clone().fingerprint());
        assert_ne!(
            request.fingerprint(),
            DetectRequest::default().fingerprint()
        );
        let bad = crate::json::parse(r#"{"objective":"louvain"}"#).unwrap();
        assert!(DetectRequest::from_json(&bad).is_err());
    }

    /// Kernel/ordering/layout/chunk-size are part of the fingerprint, so
    /// the partition cache never serves a v1 result for a v2 request (or
    /// vice versa), and bad tokens are rejected at parse time.
    #[test]
    fn kernel_knobs_fingerprint_and_validate() {
        let body = crate::json::parse(
            r#"{"kernel":"v1","ordering":"degree","layout":"interleaved","chunk_size":512,"scheduling":"color-sync"}"#,
        )
        .unwrap();
        let request = DetectRequest::from_json(&body).unwrap();
        assert_eq!(request.kernel, KernelVersion::V1);
        assert_eq!(request.ordering, VertexOrdering::DegreeDesc);
        assert_eq!(request.layout, EdgeLayout::Interleaved);
        assert_eq!(request.chunk_size, 512);
        assert_eq!(request.scheduling, Scheduling::ColorSynchronous);

        let defaults = DetectRequest::default();
        for other in [
            DetectRequest {
                kernel: KernelVersion::V1,
                ..defaults.clone()
            },
            DetectRequest {
                ordering: VertexOrdering::Bfs,
                ..defaults.clone()
            },
            DetectRequest {
                layout: EdgeLayout::Interleaved,
                ..defaults.clone()
            },
            DetectRequest {
                chunk_size: defaults.chunk_size + 1,
                ..defaults.clone()
            },
            DetectRequest {
                scheduling: Scheduling::ColorSynchronous,
                ..defaults.clone()
            },
        ] {
            assert_ne!(other.fingerprint(), defaults.fingerprint());
        }

        for bad in [
            r#"{"kernel":"v3"}"#,
            r#"{"ordering":"random"}"#,
            r#"{"layout":"columnar"}"#,
            r#"{"chunk_size":0}"#,
            r#"{"scheduling":"chaotic"}"#,
        ] {
            let body = crate::json::parse(bad).unwrap();
            assert!(DetectRequest::from_json(&body).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn job_runs_to_done_and_second_submit_hits_cache() {
        let (engine, cache) = engine_with_graph("sbm");
        let first = engine.submit("sbm", DetectRequest::default()).unwrap();
        assert!(!first.cached);
        let record = engine.wait(first.id, Duration::from_secs(30)).unwrap();
        assert_eq!(record.state, JobState::Done, "error: {:?}", record.error);
        let partition = cache.peek(record.key.as_ref().unwrap()).unwrap();
        assert!(partition.num_communities > 1);
        assert!(partition.modularity > 0.2);

        let second = engine.submit("sbm", DetectRequest::default()).unwrap();
        assert!(second.cached);
        assert_eq!(second.state, JobState::Done);
        assert_eq!(engine.stats.full_detections.get(), 1);
        assert_eq!(engine.stats.run_seconds.count(), 1);
        assert!(engine.stats.queue_wait_seconds.count() >= 1);

        // Different config → different fingerprint → real work again.
        let other = DetectRequest {
            seed: 99,
            ..DetectRequest::default()
        };
        let third = engine.submit("sbm", other).unwrap();
        assert!(!third.cached);
        let third = engine.wait(third.id, Duration::from_secs(30)).unwrap();
        assert_eq!(third.state, JobState::Done);
        engine.stop();
    }

    #[test]
    fn unknown_graph_fails_at_submit_and_cancel_works_on_queued() {
        let (engine, _cache) = engine_with_graph("sbm");
        assert!(engine.submit("nope", DetectRequest::default()).is_err());
        assert!(engine.cancel(424242).is_none());
        engine.stop();
        assert!(engine.is_empty());
    }

    /// Regression test for the busy-poll worker loop: workers used to
    /// spin on `recv_timeout(20ms)`, waking ~50×/s each while idle. Now
    /// they block in `recv`, so the wakeup counter must stay flat over
    /// an idle window, and the queue must drain to depth zero.
    #[test]
    fn idle_workers_have_no_wakeups() {
        let (engine, _cache) = engine_with_graph("sbm");
        let job = engine.submit("sbm", DetectRequest::default()).unwrap();
        let record = engine.wait(job.id, Duration::from_secs(30)).unwrap();
        assert_eq!(record.state, JobState::Done);
        assert_eq!(engine.stats.queue_depth.get(), 0.0);

        let wakeups = engine.stats.worker_wakeups.get();
        assert!(wakeups >= 1, "the job itself must have woken a worker");
        // An idle window several times the old poll interval: the old
        // loop would log ~15 wakeups here, a blocking receive logs none.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(
            engine.stats.worker_wakeups.get(),
            wakeups,
            "idle workers woke up"
        );
        engine.stop();
    }

    #[test]
    fn attach_to_exports_job_and_core_metrics() {
        let (engine, _cache) = engine_with_graph("sbm");
        let registry = MetricsRegistry::new();
        engine.attach_to(&registry);
        let job = engine.submit("sbm", DetectRequest::default()).unwrap();
        engine.wait(job.id, Duration::from_secs(30)).unwrap();
        engine.stop();
        let text = registry.render();
        for name in [
            "gve_jobs_submitted_total 1",
            "gve_jobs_full_detections_total 1",
            "gve_jobs_queue_depth 0",
            "gve_jobs_queue_wait_seconds_count 1",
            "gve_jobs_run_seconds_count 1",
            "gve_leiden_runs_total 1",
            "gve_leiden_phase_seconds_total{phase=\"local_move\"}",
            // Zero here: the test binary does not install the counting
            // global allocator, so the counter must exist but stay flat.
            "gve_core_allocs_total 0",
        ] {
            assert!(text.contains(name), "missing `{name}` in:\n{text}");
        }
    }
}
