//! Bounded, coalescing ingest queue in front of the update path.
//!
//! One POST at a time per graph is the update gate's invariant; under
//! sustained ingest that would make every client wait out the refresh
//! ahead of it. The queue changes the contract: when a graph's gate is
//! free and nothing is queued, the batch applies inline and the client
//! gets the classic synchronous 200. When the graph is busy, the batch
//! is **deferred** (202 + queue depth) into a per-shard queue where all
//! queued batches for the same graph coalesce into one merged batch via
//! [`BatchUpdate::merge`] — insertions concatenate, deletions cancel
//! queued insertions of the same pair. Coalescing is what makes the
//! queue rate-adaptive: the longer an apply takes, the more batches
//! fold into the single pending entry behind it, so the refresh rate
//! degrades gracefully instead of the queue growing without bound.
//! A hard cap on queued edits ([`IngestConfig::max_queued_edits`])
//! still backstops it: past the cap, clients get 429 and retry later.
//!
//! One drainer thread per registry shard applies deferred batches in
//! FIFO order per shard. Drainers hold only a `Weak<ServerState>` so
//! they never keep a stopped server alive.

use crate::handlers::{apply_update, ApiError};
use crate::json::Json;
use crate::registry::shard_hash;
use crate::ServerState;
use gve_dynamic::{BatchUpdate, DynamicStrategy};
use gve_obs::{Counter, Gauge, MetricsRegistry};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;

/// Ingest tuning, carried from `ServeConfig`.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Cap on edits (insertions + deletions) queued per shard; batches
    /// that would cross it are rejected with 429.
    pub max_queued_edits: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            max_queued_edits: 1 << 20,
        }
    }
}

/// Counters and gauges exported under `gve_ingest_*`.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Deferred batches currently queued (post-coalescing: one entry
    /// per busy graph).
    pub queue_depth: Gauge,
    /// Deferred batches folded into an already-queued batch.
    pub coalesced: Counter,
    /// Batches accepted as deferred (202).
    pub deferred: Counter,
    /// Batches rejected because the queue was full (429).
    pub rejected: Counter,
    /// Deferred batches applied by drainer threads.
    pub drained: Counter,
    /// Deferred batches whose apply failed (graph removed, WAL error).
    pub failed: Counter,
}

impl IngestStats {
    /// Registers the handles with `registry`.
    pub fn attach_to(&self, registry: &MetricsRegistry) {
        registry.register_gauge(
            "gve_ingest_queue_depth",
            "Deferred update batches queued (one per busy graph after coalescing).",
            &[],
            &self.queue_depth,
        );
        registry.register_counter(
            "gve_ingest_coalesced_total",
            "Deferred batches folded into an already-queued batch.",
            &[],
            &self.coalesced,
        );
        registry.register_counter(
            "gve_ingest_deferred_total",
            "Update batches accepted as deferred (202).",
            &[],
            &self.deferred,
        );
        registry.register_counter(
            "gve_ingest_rejected_total",
            "Update batches rejected because the ingest queue was full (429).",
            &[],
            &self.rejected,
        );
        registry.register_counter(
            "gve_ingest_drained_total",
            "Deferred batches applied by drainer threads.",
            &[],
            &self.drained,
        );
        registry.register_counter(
            "gve_ingest_failures_total",
            "Deferred batches whose apply failed.",
            &[],
            &self.failed,
        );
    }
}

/// What happened to a submitted batch.
pub enum IngestOutcome {
    /// Applied synchronously; the 200 response body.
    Applied(Json),
    /// Queued behind a busy graph.
    Deferred {
        /// Pending batches on this shard after the enqueue.
        queue_depth: usize,
        /// Edits queued on this shard after the enqueue.
        queued_edits: usize,
        /// Whether this batch merged into an already-queued one.
        coalesced: bool,
    },
    /// The shard's edit cap was reached.
    Rejected {
        /// Edits queued on the shard at rejection time.
        queued_edits: usize,
    },
}

/// A graph's merged pending batch.
struct PendingBatch {
    batch: BatchUpdate,
    strategy: DynamicStrategy,
}

#[derive(Default)]
struct ShardInner {
    /// Pending batch per graph (coalescing target).
    pending: HashMap<String, PendingBatch>,
    /// FIFO of graph names with a pending batch.
    order: VecDeque<String>,
    /// Total edits across `pending`.
    queued_edits: usize,
    stopping: bool,
}

struct IngestShard {
    inner: Mutex<ShardInner>,
    /// Signals the shard's drainer that work (or a stop) arrived.
    work: Condvar,
}

fn lock_shard(shard: &IngestShard) -> MutexGuard<'_, ShardInner> {
    match shard.inner.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The sharded ingest queue plus its drainer threads.
pub struct IngestQueue {
    config: IngestConfig,
    shards: Vec<Arc<IngestShard>>,
    drainers: Mutex<Vec<JoinHandle<()>>>,
    /// Counter block (public for `/stats` reporting).
    pub stats: IngestStats,
}

impl IngestQueue {
    /// Builds the queue with `shards` shards (min 1). Drainers start
    /// separately via [`IngestQueue::start_drainers`], once the owning
    /// `ServerState` exists.
    pub fn new(shards: usize, config: IngestConfig) -> Self {
        Self {
            config,
            shards: (0..shards.max(1))
                .map(|_| {
                    Arc::new(IngestShard {
                        inner: Mutex::new(ShardInner::default()),
                        work: Condvar::new(),
                    })
                })
                .collect(),
            drainers: Mutex::new(Vec::new()),
            stats: IngestStats::default(),
        }
    }

    /// Spawns one drainer thread per shard. Drainers hold a `Weak`
    /// reference so the queue never keeps a dropped server alive.
    pub fn start_drainers(&self, state: &Arc<ServerState>) {
        let mut drainers = self.drainers.lock().expect("drainer list poisoned");
        for (index, shard) in self.shards.iter().enumerate() {
            let shard = Arc::clone(shard);
            let state: Weak<ServerState> = Arc::downgrade(state);
            let stats = self.stats.clone();
            drainers.push(
                std::thread::Builder::new()
                    .name(format!("gve-serve-ingest-{index}"))
                    .spawn(move || drain_loop(&shard, &state, &stats))
                    .expect("spawn ingest drainer"),
            );
        }
    }

    fn shard(&self, name: &str) -> &Arc<IngestShard> {
        &self.shards[(shard_hash(name) % self.shards.len() as u64) as usize]
    }

    /// Routes one update batch: inline apply when the graph is idle and
    /// nothing is queued ahead of it, otherwise defer (or reject at the
    /// edit cap). FIFO per graph: a batch never jumps ahead of edits
    /// already queued for the same graph.
    pub(crate) fn submit(
        &self,
        state: &ServerState,
        name: &str,
        batch: BatchUpdate,
        strategy: DynamicStrategy,
    ) -> Result<IngestOutcome, ApiError> {
        let cell = state.registry.entry(name)?;
        let shard = self.shard(name);
        // Fast path: graph idle and nothing queued for it. The gate is
        // claimed with a try-lock BEFORE the shard lock (lock order:
        // update_gate before ingest shard) and the pending check happens
        // under the shard lock, so a queued batch can never be overtaken
        // by this inline apply.
        if let Some(gate) = cell.try_begin_update() {
            let queued_behind = {
                let inner = lock_shard(shard);
                inner.pending.contains_key(name)
            };
            if !queued_behind {
                let body = apply_update(state, name, &cell, &gate, &batch, strategy)?;
                return Ok(IngestOutcome::Applied(body));
            }
            // Something is queued ahead; fall through and join it.
            drop(gate);
        }
        let mut inner = lock_shard(shard);
        if inner.queued_edits.saturating_add(batch.len()) > self.config.max_queued_edits {
            let queued_edits = inner.queued_edits;
            drop(inner);
            self.stats.rejected.inc();
            return Ok(IngestOutcome::Rejected { queued_edits });
        }
        inner.queued_edits += batch.len();
        let coalesced = match inner.pending.get_mut(name) {
            Some(pending) => {
                let before = pending.batch.len();
                pending.batch.merge(&batch);
                pending.strategy = strategy;
                // Deletions cancelling queued insertions can shrink the
                // merged batch; keep the edit accounting exact.
                inner.queued_edits -= (before + batch.len()) - pending.batch.len();
                true
            }
            None => {
                inner
                    .pending
                    .insert(name.to_string(), PendingBatch { batch, strategy });
                inner.order.push_back(name.to_string());
                self.stats.queue_depth.inc();
                false
            }
        };
        let depth = inner.pending.len();
        let queued_edits = inner.queued_edits;
        drop(inner);
        shard.work.notify_one();
        self.stats.deferred.inc();
        if coalesced {
            self.stats.coalesced.inc();
        }
        Ok(IngestOutcome::Deferred {
            queue_depth: depth,
            queued_edits,
            coalesced,
        })
    }

    /// Edits currently queued on the shard `name` routes to.
    pub fn queued_edits(&self, name: &str) -> usize {
        lock_shard(self.shard(name)).queued_edits
    }

    /// True when no shard has a pending batch (brief per-shard locks).
    fn all_idle(&self) -> bool {
        self.shards
            .iter()
            .all(|shard| lock_shard(shard).pending.is_empty())
    }

    /// Blocks until every shard's queue is empty (test aid; drainers
    /// may still be mid-apply on the final batch's gate).
    pub fn wait_idle(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.all_idle() {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Stops and joins the drainers after letting them drain whatever
    /// is already queued. Idempotent.
    pub fn stop(&self) {
        for shard in &self.shards {
            lock_shard(shard).stopping = true;
            shard.work.notify_all();
        }
        let handles = {
            let mut drainers = match self.drainers.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::take(&mut *drainers)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for IngestQueue {
    fn drop(&mut self) {
        self.stop();
    }
}

fn drain_loop(shard: &IngestShard, state: &Weak<ServerState>, stats: &IngestStats) {
    loop {
        let name = {
            let mut inner = lock_shard(shard);
            loop {
                if let Some(name) = inner.order.pop_front() {
                    break name;
                }
                if inner.stopping {
                    return;
                }
                inner = match shard.work.wait(inner) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        // A dead upgrade means the server is shutting down and nothing
        // can observe the result anyway.
        let Some(state) = state.upgrade() else { return };
        // The pending batch stays in the map — still coalescing late
        // arrivals — until this drainer actually holds the graph's
        // update gate. Lock order matches the inline path: update_gate
        // BEFORE ingest shard.
        let cell = match state.registry.entry(&name) {
            Ok(cell) => cell,
            Err(e) => {
                // Graph deregistered while its batch was queued: drop
                // the pending entry, keeping the accounting exact.
                let mut inner = lock_shard(shard);
                if let Some(pending) = inner.pending.remove(&name) {
                    inner.queued_edits -= pending.batch.len();
                    stats.queue_depth.dec();
                }
                drop(inner);
                stats.failed.inc();
                eprintln!("gve-serve: deferred batch for '{name}' dropped: {e}");
                continue;
            }
        };
        let gate = cell.begin_update();
        let pending = {
            let mut inner = lock_shard(shard);
            let pending = inner.pending.remove(&name);
            if let Some(pending) = &pending {
                inner.queued_edits -= pending.batch.len();
            }
            pending
        };
        // Raced with a removal that cleared it — nothing to do.
        let Some(pending) = pending else { continue };
        stats.queue_depth.dec();
        match apply_update(
            &state,
            &name,
            &cell,
            &gate,
            &pending.batch,
            pending.strategy,
        ) {
            Ok(_) => stats.drained.inc(),
            Err(e) => {
                stats.failed.inc();
                eprintln!(
                    "gve-serve: deferred batch for '{name}' failed: {}",
                    e.message
                );
            }
        }
    }
}
