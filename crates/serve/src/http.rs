//! Hand-rolled HTTP/1.1 server and client over `std::net`.
//!
//! Deliberately minimal — no TLS, no chunked transfer, no keep-alive —
//! because the service's job mix is a few small JSON requests per
//! second, not bulk transfer. One thread per connection, bounded by the
//! accept loop; `Connection: close` on every response keeps lifecycle
//! management trivial and curl-friendly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on accepted request bodies (64 MiB) — a registry POST
/// carrying an explicit edge list is the largest legitimate payload.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string, e.g. `/graphs/web-1`.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lower-cased header names and their values.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path split into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Body interpreted as UTF-8.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad_request("body is not UTF-8"))
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Content type; the service always answers JSON.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Error while reading or parsing a request.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// Status code the error maps to.
    pub status: u16,
    /// Description sent back to the client.
    pub message: String,
}

impl HttpError {
    /// 400 with a message.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http {}: {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok());
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Reads one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| HttpError::bad_request(format!("cannot read request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("missing request target"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(format!(
            "unsupported version {version}"
        )));
    }

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header_line = String::new();
        reader
            .read_line(&mut header_line)
            .map_err(|e| HttpError::bad_request(format!("cannot read header: {e}")))?;
        let trimmed = header_line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::bad_request("bad Content-Length"))?;
            }
            headers.push((name, value));
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: "body too large".into(),
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| HttpError::bad_request(format!("truncated body: {e}")))?;
    }

    Ok(Request {
        method,
        path: percent_decode(path_raw),
        query: parse_query(query_raw),
        headers,
        body,
    })
}

/// A running HTTP server; dropping the handle stops the accept loop.
pub struct HttpServer {
    port: u16,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and serves every
    /// connection on its own thread with `handler`.
    pub fn start<F>(addr: impl ToSocketAddrs, handler: F) -> std::io::Result<HttpServer>
    where
        F: Fn(Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let handler = Arc::new(handler);

        let accept_thread = std::thread::Builder::new()
            .name("gve-serve-accept".into())
            .spawn(move || {
                // Acquire pairs with the Release store in `stop` (audit
                // publish rule): the loop must observe state written
                // before the signal.
                while !shutdown_flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((mut stream, _peer)) => {
                            let handler = Arc::clone(&handler);
                            let _ = std::thread::Builder::new()
                                .name("gve-serve-conn".into())
                                .spawn(move || {
                                    let _ = stream.set_nodelay(true);
                                    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                                    let response = match read_request(&mut stream) {
                                        Ok(request) => handler(request),
                                        Err(e) => Response::json(
                                            e.status,
                                            format!("{{\"error\":{:?}}}", e.message),
                                        ),
                                    };
                                    let _ = response.write_to(&mut stream);
                                });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })?;

        Ok(HttpServer {
            port,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Signals the accept loop to stop and waits for it.
    pub fn stop(&mut self) {
        // Release: publish everything preceding the signal to the
        // accept loop's Acquire load.
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Minimal blocking HTTP client: sends one request, reads the full
/// response. Shared by `gve client` and the integration tests.
pub fn client_request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> Result<(u16, String), std::io::Error> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body_bytes = body.map(str::as_bytes).unwrap_or(&[]);
    write!(
        stream,
        "{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body_bytes.len()
    )?;
    stream.write_all(body_bytes)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line {status_line:?}")))?;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_roundtrips_a_request() {
        let mut server = HttpServer::start("127.0.0.1:0", |req| {
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo path");
            assert_eq!(req.query_param("x"), Some("1 2"));
            Response::json(200, format!("{{\"len\":{}}}", req.body.len()))
        })
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let (status, body) =
            client_request(&addr, "POST", "/echo%20path?x=1+2", Some("hello")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"len\":5}");
        server.stop();
    }

    #[test]
    fn segments_split_paths() {
        let req = Request {
            method: "GET".into(),
            path: "/graphs/web-1/communities/3".into(),
            query: vec![],
            headers: vec![],
            body: vec![],
        };
        assert_eq!(req.segments(), vec!["graphs", "web-1", "communities", "3"]);
    }

    #[test]
    fn malformed_requests_are_rejected_not_crashing() {
        let mut server = HttpServer::start("127.0.0.1:0", |_| Response::json(200, "{}")).unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        // The server survives and keeps answering.
        let (status, _) = client_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.stop();
    }
}
