//! Hand-rolled HTTP/1.1 server and client over `std::net`.
//!
//! Deliberately minimal — no TLS, no chunked transfer, no keep-alive —
//! because the service's job mix is a few small JSON requests per
//! second, not bulk transfer. One thread per connection, **capped** at
//! [`ServerOptions::max_connections`] in-flight handlers (excess
//! connections get an immediate 503 instead of an unbounded thread
//! spawn); `Connection: close` on every response keeps lifecycle
//! management trivial and curl-friendly.

use crate::json::Json;
use gve_obs::{Counter, MetricsRegistry};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on accepted request bodies (64 MiB) — a registry POST
/// carrying an explicit edge list is the largest legitimate payload.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Default cap on concurrently handled connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string, e.g. `/graphs/web-1`.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lower-cased header names and their values.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path split into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Body interpreted as UTF-8.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad_request("body is not UTF-8"))
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Content type; the service always answers JSON.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Error while reading or parsing a request.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// Status code the error maps to.
    pub status: u16,
    /// Description sent back to the client.
    pub message: String,
}

impl HttpError {
    /// 400 with a message.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http {}: {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Renders an error as a JSON response, routing the message through the
/// JSON string escaper. (It used to go through `format!("{:?}")`, whose
/// Rust `Debug` escapes — `\u{1f}` and friends — are not valid JSON.)
fn error_response(error: &HttpError) -> Response {
    let body = Json::obj([("error", Json::from(error.message.as_str()))]).render();
    Response::json(error.status, body)
}

fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok());
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Reads one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| HttpError::bad_request(format!("cannot read request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("missing request target"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(format!(
            "unsupported version {version}"
        )));
    }

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header_line = String::new();
        reader
            .read_line(&mut header_line)
            .map_err(|e| HttpError::bad_request(format!("cannot read header: {e}")))?;
        let trimmed = header_line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::bad_request("bad Content-Length"))?;
            }
            headers.push((name, value));
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: "body too large".into(),
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| HttpError::bad_request(format!("truncated body: {e}")))?;
    }

    Ok(Request {
        method,
        path: percent_decode(path_raw),
        query: parse_query(query_raw),
        headers,
        body,
    })
}

/// Tuning knobs for [`HttpServer::start_with`].
pub struct ServerOptions {
    /// Cap on concurrently handled connections; further accepts are
    /// answered 503 on the accept thread without spawning.
    pub max_connections: usize,
    /// Registry to export `gve_http_*` connection counters into.
    pub metrics: Option<MetricsRegistry>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            max_connections: DEFAULT_MAX_CONNECTIONS,
            metrics: None,
        }
    }
}

/// A guard that releases one connection slot on drop, so a handler
/// thread that panics still frees its slot.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        // Relaxed: the slot count is a saturation heuristic, not a
        // synchronization point; no data is published through it.
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A running HTTP server; dropping the handle stops the accept loop.
pub struct HttpServer {
    port: u16,
    shutdown: Arc<AtomicBool>,
    accept_thread: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl HttpServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and serves every
    /// connection on its own thread with `handler`, using default
    /// [`ServerOptions`].
    pub fn start<F>(addr: impl ToSocketAddrs, handler: F) -> std::io::Result<HttpServer>
    where
        F: Fn(Request) -> Response + Send + Sync + 'static,
    {
        Self::start_with(addr, ServerOptions::default(), handler)
    }

    /// Binds `addr` and serves connections with `handler`, capping
    /// in-flight handler threads at `options.max_connections`.
    pub fn start_with<F>(
        addr: impl ToSocketAddrs,
        options: ServerOptions,
        handler: F,
    ) -> std::io::Result<HttpServer>
    where
        F: Fn(Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let handler = Arc::new(handler);
        let max_connections = options.max_connections.max(1);
        let active = Arc::new(AtomicUsize::new(0));
        let accepted = Counter::new();
        let rejected = Counter::new();
        if let Some(registry) = &options.metrics {
            registry.register_counter(
                "gve_http_connections_total",
                "Connections accepted and dispatched to a handler thread.",
                &[],
                &accepted,
            );
            registry.register_counter(
                "gve_http_rejected_connections_total",
                "Connections answered 503 because the concurrency cap was reached.",
                &[],
                &rejected,
            );
        }

        let accept_thread = std::thread::Builder::new()
            .name("gve-serve-accept".into())
            .spawn(move || {
                // Acquire pairs with the Release store in `stop` (audit
                // publish rule): the loop must observe state written
                // before the signal.
                while !shutdown_flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((mut stream, _peer)) => {
                            // Relaxed: saturation heuristic only (see
                            // SlotGuard); a transient overshoot answers
                            // one extra 503, nothing worse.
                            if active.load(Ordering::Relaxed) >= max_connections {
                                rejected.inc();
                                let _ = stream.set_nodelay(true);
                                let _ = error_response(&HttpError {
                                    status: 503,
                                    message: "connection limit reached, retry later".into(),
                                })
                                .write_to(&mut stream);
                                continue;
                            }
                            // Relaxed: as above — the guard's decrement
                            // keeps the count eventually accurate.
                            active.fetch_add(1, Ordering::Relaxed);
                            let guard = SlotGuard(Arc::clone(&active));
                            accepted.inc();
                            let handler = Arc::clone(&handler);
                            // The guard travels into the handler thread;
                            // if the spawn itself fails the closure (and
                            // guard) is dropped, releasing the slot.
                            let _ = std::thread::Builder::new()
                                .name("gve-serve-conn".into())
                                .spawn(move || {
                                    let _guard = guard;
                                    let _ = stream.set_nodelay(true);
                                    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                                    let response = match read_request(&mut stream) {
                                        Ok(request) => handler(request),
                                        Err(e) => error_response(&e),
                                    };
                                    let _ = response.write_to(&mut stream);
                                });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })?;

        Ok(HttpServer {
            port,
            shutdown,
            accept_thread: std::sync::Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Signals the accept loop to stop and waits for it. Idempotent.
    pub fn stop(&self) {
        // Release: publish everything preceding the signal to the
        // accept loop's Acquire load.
        self.shutdown.store(true, Ordering::Release);
        let handle = match self.accept_thread.lock() {
            Ok(mut guard) => guard.take(),
            // A poisoned lock means another stop() panicked mid-take;
            // the handle it left behind is still ours to join.
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Minimal blocking HTTP client: sends one request, reads the full
/// response. Shared by `gve client` and the integration tests.
pub fn client_request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> Result<(u16, String), std::io::Error> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body_bytes = body.map(str::as_bytes).unwrap_or(&[]);
    write!(
        stream,
        "{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body_bytes.len()
    )?;
    stream.write_all(body_bytes)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line {status_line:?}")))?;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_roundtrips_a_request() {
        let server = HttpServer::start("127.0.0.1:0", |req| {
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo path");
            assert_eq!(req.query_param("x"), Some("1 2"));
            Response::json(200, format!("{{\"len\":{}}}", req.body.len()))
        })
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let (status, body) =
            client_request(&addr, "POST", "/echo%20path?x=1+2", Some("hello")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"len\":5}");
        server.stop();
    }

    #[test]
    fn segments_split_paths() {
        let req = Request {
            method: "GET".into(),
            path: "/graphs/web-1/communities/3".into(),
            query: vec![],
            headers: vec![],
            body: vec![],
        };
        assert_eq!(req.segments(), vec!["graphs", "web-1", "communities", "3"]);
    }

    #[test]
    fn malformed_requests_are_rejected_not_crashing() {
        let server = HttpServer::start("127.0.0.1:0", |_| Response::json(200, "{}")).unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        // The server survives and keeps answering.
        let (status, _) = client_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.stop();
    }

    /// Regression test: error bodies used to be built with
    /// `format!("{:?}")`, whose Rust `Debug` escapes (`\u{1f}`) are not
    /// valid JSON. The body must round-trip through our own parser with
    /// control and non-ASCII characters intact.
    #[test]
    fn error_bodies_are_valid_json_for_control_and_non_ascii() {
        let message = "ctrl \u{1f} bell \u{7} tab \t quote \" path λ→é";
        let response = error_response(&HttpError::bad_request(message));
        let body = String::from_utf8(response.body).unwrap();
        let parsed = crate::json::parse(&body).expect("error body must be valid JSON");
        assert_eq!(parsed.get("error").and_then(Json::as_str), Some(message));
    }

    /// Same bug end-to-end: a request line whose HTTP version token
    /// carries control and non-ASCII bytes lands verbatim in the error
    /// message, and the wire body must still parse as JSON.
    #[test]
    fn error_bodies_parse_end_to_end() {
        let server = HttpServer::start("127.0.0.1:0", |_| Response::json(200, "{}")).unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all("GET /x BAD\u{1f}λ/9\r\n\r\n".as_bytes())
            .unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        let body = out.split("\r\n\r\n").nth(1).expect("response has a body");
        let parsed = crate::json::parse(body).expect("wire error body must be valid JSON");
        let message = parsed.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains("BAD\u{1f}λ/9"), "{message:?}");
        server.stop();
    }

    /// Regression test for unbounded per-connection threads: with the
    /// single slot occupied by a gated handler, the next connection is
    /// answered 503 on the accept thread, the rejection is counted, and
    /// the gated request still completes once released.
    #[test]
    fn saturated_server_answers_503() {
        let registry = MetricsRegistry::new();
        let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let handler_gate = Arc::clone(&gate);
        let server = HttpServer::start_with(
            "127.0.0.1:0",
            ServerOptions {
                max_connections: 1,
                metrics: Some(registry.clone()),
            },
            move |_| {
                let (lock, signal) = &*handler_gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = signal.wait(open).unwrap();
                }
                Response::json(200, "{\"gated\":true}")
            },
        )
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());

        // Occupy the only slot with a request parked in the handler.
        let first = {
            let addr = addr.clone();
            std::thread::spawn(move || client_request(&addr, "GET", "/slow", None).unwrap())
        };
        // Wait until the accept loop has actually dispatched it.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !registry.render().contains("gve_http_connections_total 1") {
            assert!(
                std::time::Instant::now() < deadline,
                "first connection never dispatched"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        let (status, body) = client_request(&addr, "GET", "/rejected", None).unwrap();
        assert_eq!(status, 503, "{body}");
        crate::json::parse(&body).expect("503 body must be valid JSON");
        assert!(
            registry
                .render()
                .contains("gve_http_rejected_connections_total 1"),
            "{}",
            registry.render()
        );

        // Release the gate; the parked request must complete normally.
        {
            let (lock, signal) = &*gate;
            *lock.lock().unwrap() = true;
            signal.notify_all();
        }
        let (status, body) = first.join().expect("first request thread panicked");
        assert_eq!(status, 200, "{body}");
        server.stop();
    }
}
