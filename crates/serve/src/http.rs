//! Thread-per-connection HTTP/1.1 baseline server.
//!
//! The wire format (request/response types, parser, client) lives in
//! [`gve_net::http`] and is shared with the event-loop tier; this
//! module keeps the deliberately simple **baseline** front end: one
//! thread per connection, `Connection: close` on every response,
//! capped at [`ServerOptions::max_connections`] in-flight handlers
//! (excess connections get an immediate 503).
//!
//! Two operational hardenings over the original loop:
//! * every connection read runs against a deadline
//!   ([`ServerOptions::header_timeout`]) — a stalled client gets a 408
//!   and frees its thread instead of pinning it forever, counted in
//!   `gve_http_timeouts_total`;
//! * [`HttpServer::stop`] is a **bounded drain**: connections still
//!   waiting for a request are shut down immediately, handlers already
//!   running get up to [`ServerOptions::drain_timeout`] to finish their
//!   response, then their sockets are shut down too.

use crate::json::Json;
use gve_obs::{Counter, MetricsRegistry};
use std::collections::HashMap;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use gve_net::http::{
    client_request, read_request, ClientConn, HttpError, HttpLimits, Request, Response,
    MAX_BODY_BYTES, MAX_HEADER_BYTES,
};

/// Default cap on concurrently handled connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// Renders an error as a JSON response, routing the message through the
/// JSON string escaper. (It used to go through `format!("{:?}")`, whose
/// Rust `Debug` escapes — `\u{1f}` and friends — are not valid JSON.)
fn error_response(error: &HttpError) -> Response {
    let body = Json::obj([("error", Json::from(error.message.as_str()))]).render();
    Response::json(error.status, body)
}

/// Tuning knobs for [`HttpServer::start_with`].
pub struct ServerOptions {
    /// Cap on concurrently handled connections; further accepts are
    /// answered 503 on the accept thread without spawning.
    pub max_connections: usize,
    /// Deadline for a client to deliver its complete request; a stall
    /// is answered 408 and counted in `gve_http_timeouts_total`.
    pub header_timeout: Duration,
    /// Max time `stop` waits for in-flight handlers to finish.
    pub drain_timeout: Duration,
    /// Request parsing size caps.
    pub limits: HttpLimits,
    /// Registry to export `gve_http_*` connection counters into.
    pub metrics: Option<MetricsRegistry>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            max_connections: DEFAULT_MAX_CONNECTIONS,
            header_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            limits: HttpLimits::default(),
            metrics: None,
        }
    }
}

/// A guard that releases one connection slot on drop, so a handler
/// thread that panics still frees its slot.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        // Relaxed: the slot count is a saturation heuristic, not a
        // synchronization point; no data is published through it.
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One tracked live connection.
struct ConnSlot {
    /// A clone of the connection's stream, so `stop` can shut the
    /// socket down from outside the handler thread.
    stream: TcpStream,
    /// False while still reading the request (safe to cut immediately
    /// on stop), true once a handler is producing the response.
    in_flight: bool,
}

/// Registry of live connections, shared between handler threads and
/// `stop`. The condvar signals every unregistration so a draining
/// `stop` can wait for the map to empty.
#[derive(Default)]
struct ConnTracker {
    conns: Mutex<HashMap<u64, ConnSlot>>,
    drained: Condvar,
}

/// Locks a mutex, recovering the data from a poisoned lock: the
/// tracked map stays consistent across a panicking handler (inserts
/// and removes are atomic under the lock).
fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ConnTracker {
    fn register(&self, id: u64, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            lock_clean(&self.conns).insert(
                id,
                ConnSlot {
                    stream: clone,
                    in_flight: false,
                },
            );
        }
    }

    fn mark_in_flight(&self, id: u64) {
        if let Some(slot) = lock_clean(&self.conns).get_mut(&id) {
            slot.in_flight = true;
        }
    }

    fn unregister(&self, id: u64) {
        lock_clean(&self.conns).remove(&id);
        self.drained.notify_all();
    }

    /// Cuts connections still waiting on a request, then waits up to
    /// `drain_timeout` for in-flight handlers to finish; stragglers
    /// get their sockets shut down as well.
    fn drain(&self, drain_timeout: Duration) {
        {
            let conns = lock_clean(&self.conns);
            for slot in conns.values().filter(|s| !s.in_flight) {
                let _ = slot.stream.shutdown(Shutdown::Both);
            }
        }
        let deadline = Instant::now() + drain_timeout;
        let mut conns = lock_clean(&self.conns);
        while !conns.is_empty() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            conns = match self.drained.wait_timeout(conns, remaining) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        for slot in conns.values() {
            let _ = slot.stream.shutdown(Shutdown::Both);
        }
    }
}

/// A guard that unregisters the connection on drop, so a panicking
/// handler still leaves the tracker clean.
struct TrackGuard {
    tracker: Arc<ConnTracker>,
    id: u64,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        self.tracker.unregister(self.id);
    }
}

/// A running HTTP server; dropping the handle stops the accept loop.
pub struct HttpServer {
    port: u16,
    shutdown: Arc<AtomicBool>,
    tracker: Arc<ConnTracker>,
    drain_timeout: Duration,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl HttpServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and serves every
    /// connection on its own thread with `handler`, using default
    /// [`ServerOptions`].
    pub fn start<F>(addr: impl ToSocketAddrs, handler: F) -> std::io::Result<HttpServer>
    where
        F: Fn(Request) -> Response + Send + Sync + 'static,
    {
        Self::start_with(addr, ServerOptions::default(), handler)
    }

    /// Binds `addr` and serves connections with `handler`, capping
    /// in-flight handler threads at `options.max_connections`.
    pub fn start_with<F>(
        addr: impl ToSocketAddrs,
        options: ServerOptions,
        handler: F,
    ) -> std::io::Result<HttpServer>
    where
        F: Fn(Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let handler = Arc::new(handler);
        let max_connections = options.max_connections.max(1);
        let header_timeout = options.header_timeout;
        let limits = options.limits;
        let active = Arc::new(AtomicUsize::new(0));
        let tracker = Arc::new(ConnTracker::default());
        let tracker_accept = Arc::clone(&tracker);
        let accepted = Counter::new();
        let rejected = Counter::new();
        let timeouts = Counter::new();
        if let Some(registry) = &options.metrics {
            registry.register_counter(
                "gve_http_connections_total",
                "Connections accepted and dispatched to a handler thread.",
                &[],
                &accepted,
            );
            registry.register_counter(
                "gve_http_rejected_connections_total",
                "Connections answered 503 because the concurrency cap was reached.",
                &[],
                &rejected,
            );
            registry.register_counter(
                "gve_http_timeouts_total",
                "Connections closed for exceeding a read/write deadline.",
                &[],
                &timeouts,
            );
        }

        let accept_thread = std::thread::Builder::new()
            .name("gve-serve-accept".into())
            .spawn(move || {
                let mut next_id = 0u64;
                // Acquire pairs with the Release store in `stop` (audit
                // publish rule): the loop must observe state written
                // before the signal.
                while !shutdown_flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((mut stream, _peer)) => {
                            // Relaxed: saturation heuristic only (see
                            // SlotGuard); a transient overshoot answers
                            // one extra 503, nothing worse.
                            if active.load(Ordering::Relaxed) >= max_connections {
                                rejected.inc();
                                let _ = stream.set_nodelay(true);
                                let _ = error_response(&HttpError {
                                    status: 503,
                                    message: "connection limit reached, retry later".into(),
                                })
                                .write_to(&mut stream);
                                continue;
                            }
                            // Relaxed: as above — the guard's decrement
                            // keeps the count eventually accurate.
                            active.fetch_add(1, Ordering::Relaxed);
                            let guard = SlotGuard(Arc::clone(&active));
                            accepted.inc();
                            let id = next_id;
                            next_id += 1;
                            let handler = Arc::clone(&handler);
                            let tracker = Arc::clone(&tracker_accept);
                            let timeouts = timeouts.clone();
                            // The guard travels into the handler thread;
                            // if the spawn itself fails the closure (and
                            // guard) is dropped, releasing the slot.
                            let _ = std::thread::Builder::new()
                                .name("gve-serve-conn".into())
                                .spawn(move || {
                                    let _guard = guard;
                                    tracker.register(id, &stream);
                                    let _track = TrackGuard {
                                        tracker: Arc::clone(&tracker),
                                        id,
                                    };
                                    let _ = stream.set_nodelay(true);
                                    let response =
                                        match read_request(&mut stream, &limits, header_timeout) {
                                            Ok(request) => {
                                                tracker.mark_in_flight(id);
                                                handler(request)
                                            }
                                            Err(e) if e.is_closed() => return,
                                            Err(e) => {
                                                if e.status == 408 {
                                                    timeouts.inc();
                                                }
                                                error_response(&e)
                                            }
                                        };
                                    let _ = response.write_to(&mut stream);
                                });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })?;

        Ok(HttpServer {
            port,
            shutdown,
            tracker,
            drain_timeout: options.drain_timeout,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Stops the accept loop, cuts connections still waiting for a
    /// request, and gives in-flight handlers up to `drain_timeout` to
    /// finish their response. Idempotent.
    pub fn stop(&self) {
        // Release: publish everything preceding the signal to the
        // accept loop's Acquire load.
        self.shutdown.store(true, Ordering::Release);
        // Scope the guard so it is released before the (blocking) join.
        let handle = {
            let mut guard = match self.accept_thread.lock() {
                Ok(guard) => guard,
                // A poisoned lock means another stop() panicked mid-take;
                // the handle it left behind is still ours to join.
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        self.tracker.drain(self.drain_timeout);
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn server_roundtrips_a_request() {
        let server = HttpServer::start("127.0.0.1:0", |req| {
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo path");
            assert_eq!(req.query_param("x"), Some("1 2"));
            Response::json(200, format!("{{\"len\":{}}}", req.body.len()))
        })
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let (status, body) =
            client_request(&addr, "POST", "/echo%20path?x=1+2", Some("hello")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"len\":5}");
        server.stop();
    }

    #[test]
    fn segments_split_paths() {
        let req = Request {
            method: "GET".into(),
            path: "/graphs/web-1/communities/3".into(),
            query: vec![],
            headers: vec![],
            body: vec![],
            keep_alive: false,
        };
        assert_eq!(req.segments(), vec!["graphs", "web-1", "communities", "3"]);
    }

    #[test]
    fn malformed_requests_are_rejected_not_crashing() {
        let server = HttpServer::start("127.0.0.1:0", |_| Response::json(200, "{}")).unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        // The server survives and keeps answering.
        let (status, _) = client_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.stop();
    }

    /// Regression test: error bodies used to be built with
    /// `format!("{:?}")`, whose Rust `Debug` escapes (`\u{1f}`) are not
    /// valid JSON. The body must round-trip through our own parser with
    /// control and non-ASCII characters intact.
    #[test]
    fn error_bodies_are_valid_json_for_control_and_non_ascii() {
        let message = "ctrl \u{1f} bell \u{7} tab \t quote \" path λ→é";
        let response = error_response(&HttpError::bad_request(message));
        let body = String::from_utf8(response.body).unwrap();
        let parsed = crate::json::parse(&body).expect("error body must be valid JSON");
        assert_eq!(parsed.get("error").and_then(Json::as_str), Some(message));
    }

    /// Same bug end-to-end: a request line whose HTTP version token
    /// carries control and non-ASCII bytes lands verbatim in the error
    /// message, and the wire body must still parse as JSON.
    #[test]
    fn error_bodies_parse_end_to_end() {
        let server = HttpServer::start("127.0.0.1:0", |_| Response::json(200, "{}")).unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all("GET /x BAD\u{1f}λ/9\r\n\r\n".as_bytes())
            .unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        let body = out.split("\r\n\r\n").nth(1).expect("response has a body");
        let parsed = crate::json::parse(body).expect("wire error body must be valid JSON");
        let message = parsed.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains("BAD\u{1f}λ/9"), "{message:?}");
        server.stop();
    }

    /// A client that opens a connection and drips a partial header must
    /// be answered 408 within the read deadline — not pin its handler
    /// thread forever — and the timeout must be counted.
    #[test]
    fn stalled_client_gets_408_and_is_counted() {
        let registry = MetricsRegistry::new();
        let server = HttpServer::start_with(
            "127.0.0.1:0",
            ServerOptions {
                header_timeout: Duration::from_millis(250),
                metrics: Some(registry.clone()),
                ..ServerOptions::default()
            },
            |_| Response::json(200, "{}"),
        )
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"GET /stall HTTP/1.1\r\nX-Drip: ")
            .unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 408"), "{out:?}");
        assert!(
            registry.render().contains("gve_http_timeouts_total 1"),
            "{}",
            registry.render()
        );
        server.stop();
    }

    /// Regression test for unbounded per-connection threads: with the
    /// single slot occupied by a gated handler, the next connection is
    /// answered 503 on the accept thread, the rejection is counted, and
    /// the gated request still completes once released.
    #[test]
    fn saturated_server_answers_503() {
        let registry = MetricsRegistry::new();
        let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let handler_gate = Arc::clone(&gate);
        let server = HttpServer::start_with(
            "127.0.0.1:0",
            ServerOptions {
                max_connections: 1,
                metrics: Some(registry.clone()),
                ..ServerOptions::default()
            },
            move |_| {
                let (lock, signal) = &*handler_gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = signal.wait(open).unwrap();
                }
                Response::json(200, "{\"gated\":true}")
            },
        )
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());

        // Occupy the only slot with a request parked in the handler.
        let first = {
            let addr = addr.clone();
            std::thread::spawn(move || client_request(&addr, "GET", "/slow", None).unwrap())
        };
        // Wait until the accept loop has actually dispatched it.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !registry.render().contains("gve_http_connections_total 1") {
            assert!(
                std::time::Instant::now() < deadline,
                "first connection never dispatched"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        let (status, body) = client_request(&addr, "GET", "/rejected", None).unwrap();
        assert_eq!(status, 503, "{body}");
        crate::json::parse(&body).expect("503 body must be valid JSON");
        assert!(
            registry
                .render()
                .contains("gve_http_rejected_connections_total 1"),
            "{}",
            registry.render()
        );

        // Release the gate; the parked request must complete normally.
        {
            let (lock, signal) = &*gate;
            *lock.lock().unwrap() = true;
            signal.notify_all();
        }
        let (status, body) = first.join().expect("first request thread panicked");
        assert_eq!(status, 200, "{body}");
        server.stop();
    }
}
