//! Crash-consistency tests for the durable serve tier: a server
//! restarted on the same `--data-dir` must come back with the same
//! graphs, epochs, memberships, and cache keys it had before — and the
//! empty-batch / deferred-ingest / delta endpoints must honor their
//! contracts over real HTTP.

use gve_serve::{client_request, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gve-serve-durability-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(data_dir: Option<&PathBuf>) -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 2,
        data_dir: data_dir.map(|d| d.display().to_string()),
        ..ServeConfig::default()
    })
    .expect("server start")
}

fn register_ring(addr: &str, name: &str) {
    let body = format!(
        "{{\"name\":\"{name}\",\"generate\":{{\"class\":\"ring\",\"cliques\":8,\
         \"clique_size\":6}}}}"
    );
    let (status, response) = client_request(addr, "POST", "/graphs", Some(&body)).unwrap();
    assert_eq!(status, 201, "register failed: {response}");
}

fn json_u64(body: &str, field: &str) -> Option<u64> {
    let key = format!("\"{field}\":");
    let start = body.find(&key)? + key.len();
    let digits: String = body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn wait_job_done(addr: &str, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = client_request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        assert_eq!(status, 200, "{body}");
        if body.contains("\"done\"") || body.contains("\"failed\"") {
            return body;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn detect_and_wait(addr: &str, name: &str) {
    let (status, body) =
        client_request(addr, "POST", &format!("/graphs/{name}/detect"), Some("{}")).unwrap();
    assert!(status == 200 || status == 202, "{status} {body}");
    if status == 202 {
        let id = json_u64(&body, "id").expect("job id");
        let done = wait_job_done(addr, id);
        assert!(done.contains("\"done\""), "{done}");
    }
}

fn membership_body(addr: &str, name: &str) -> String {
    let (status, body) =
        client_request(addr, "GET", &format!("/graphs/{name}/membership"), None).unwrap();
    assert_eq!(status, 200, "{body}");
    body
}

fn apply_update(addr: &str, name: &str, body: &str) -> (u16, String) {
    client_request(addr, "POST", &format!("/graphs/{name}/updates"), Some(body)).unwrap()
}

/// The tentpole acceptance check: register + detect + update batches,
/// drop the server without graceful shutdown of its state dir, restart
/// on the same directory, and observe bit-identical epoch, vertex
/// count, and membership — and the partition cache already warm (the
/// second membership GET needs no new detect job).
#[test]
fn restart_recovers_epoch_membership_and_cache() {
    let dir = temp_dir("restart");
    let (epoch_before, graph_before, membership_before);
    {
        let server = boot(Some(&dir));
        let addr = format!("127.0.0.1:{}", server.port());
        register_ring(&addr, "g");
        detect_and_wait(&addr, "g");

        for i in 0..3u32 {
            let a = 2 * i;
            let body = format!("{{\"insertions\":[[{a},{},2.0]]}}", a + 1);
            let (status, response) = apply_update(&addr, "g", &body);
            assert!(status == 200 || status == 202, "{status} {response}");
        }
        // Let any deferred batch drain before sampling the final state.
        assert!(server.state().ingest.wait_idle(Duration::from_secs(30)));
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (status, body) = client_request(&addr, "GET", "/graphs/g", None).unwrap();
            assert_eq!(status, 200, "{body}");
            if json_u64(&body, "batches_applied") == Some(3) {
                break;
            }
            assert!(Instant::now() < deadline, "batches never drained: {body}");
            std::thread::sleep(Duration::from_millis(10));
        }

        let (status, info) = client_request(&addr, "GET", "/graphs/g", None).unwrap();
        assert_eq!(status, 200, "{info}");
        epoch_before = json_u64(&info, "epoch").expect("epoch");
        graph_before = json_u64(&info, "vertices").expect("vertices");
        assert_eq!(epoch_before, 3, "{info}");
        membership_before = membership_body(&addr, "g");
        // No graceful flush beyond the per-record fsync: stop the HTTP
        // front end and drop everything.
        server.stop();
    }

    let server = boot(Some(&dir));
    let addr = format!("127.0.0.1:{}", server.port());
    let (status, info) = client_request(&addr, "GET", "/graphs/g", None).unwrap();
    assert_eq!(status, 200, "graph did not survive restart: {info}");
    assert_eq!(json_u64(&info, "epoch"), Some(epoch_before), "{info}");
    assert_eq!(json_u64(&info, "vertices"), Some(graph_before), "{info}");

    // The recovered cache must serve the refreshed partition at the
    // current epoch without a new detect job.
    let membership_after = membership_body(&addr, "g");
    assert_eq!(
        membership_before, membership_after,
        "membership changed across restart"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A memory-only server (no --data-dir) keeps the old lifecycle: state
/// dies with the process.
#[test]
fn memory_only_server_forgets_on_restart() {
    let server = boot(None);
    let addr = format!("127.0.0.1:{}", server.port());
    register_ring(&addr, "ephemeral");
    server.stop();
    drop(server);

    let server = boot(None);
    let addr = format!("127.0.0.1:{}", server.port());
    let (status, _) = client_request(&addr, "GET", "/graphs/ephemeral", None).unwrap();
    assert_eq!(status, 404);
    server.stop();
}

/// Satellite regression: an empty update batch must be a no-op 200
/// reporting the current epoch — not a 400, and crucially NOT an epoch
/// bump that would evict a perfectly current cached partition.
#[test]
fn empty_batch_is_a_noop_and_cache_survives() {
    let server = boot(None);
    let addr = format!("127.0.0.1:{}", server.port());
    register_ring(&addr, "g");
    detect_and_wait(&addr, "g");
    let before = membership_body(&addr, "g");

    for body in ["{}", "{\"insertions\":[],\"deletions\":[]}"] {
        let (status, response) = apply_update(&addr, "g", body);
        assert_eq!(status, 200, "{response}");
        assert_eq!(json_u64(&response, "epoch"), Some(0), "{response}");
        assert!(response.contains("\"noop\":true"), "{response}");
        assert!(response.contains("\"refreshed\":false"), "{response}");
    }

    // The cached partition is still served: same epoch, same payload,
    // no "rerun detect" 404.
    let after = membership_body(&addr, "g");
    assert_eq!(before, after);
    server.stop();
}

/// Delta endpoint contract: up-to-date polls return no changes, polls
/// from an older epoch return only changed vertices, and an epoch that
/// fell off the bounded ring (or never existed) forces a resync.
#[test]
fn delta_endpoint_reports_changes_and_resync() {
    let server = boot(None);
    let addr = format!("127.0.0.1:{}", server.port());
    register_ring(&addr, "g");

    // Before any partition exists: 404.
    let (status, body) = client_request(&addr, "GET", "/graphs/g/delta?since=0", None).unwrap();
    assert_eq!(status, 404, "{body}");

    detect_and_wait(&addr, "g");
    let (status, body) = client_request(&addr, "GET", "/graphs/g/delta?since=0", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"resync\":false"), "{body}");
    assert!(body.contains("\"changes\":[]"), "{body}");

    // A refreshing update publishes a new epoch; since=0 now yields the
    // diff (possibly empty if no vertex moved), never a resync.
    let (status, response) = apply_update(&addr, "g", "{\"insertions\":[[0,6,5.0]]}");
    assert!(status == 200 || status == 202, "{status} {response}");
    assert!(server.state().ingest.wait_idle(Duration::from_secs(30)));
    let deadline = Instant::now() + Duration::from_secs(30);
    let body = loop {
        let (status, body) = client_request(&addr, "GET", "/graphs/g/delta?since=0", None).unwrap();
        assert_eq!(status, 200, "{body}");
        if json_u64(&body, "epoch") == Some(1) {
            break body;
        }
        assert!(Instant::now() < deadline, "delta never advanced: {body}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(body.contains("\"resync\":false"), "{body}");

    // Polling from the future (a client that outlived a server wipe)
    // must resync rather than error.
    let (status, body) = client_request(&addr, "GET", "/graphs/g/delta?since=99", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"resync\":true"), "{body}");

    // Missing/garbage since is a client error.
    let (status, _) = client_request(&addr, "GET", "/graphs/g/delta", None).unwrap();
    assert_eq!(status, 400);
    let (status, _) = client_request(&addr, "GET", "/graphs/g/delta?since=xyz", None).unwrap();
    assert_eq!(status, 400);
    server.stop();
}

/// Deferred ingest: while a graph's update gate is held, a POSTed batch
/// is accepted as 202 with queue metadata, a second batch coalesces
/// into the first, and both apply once the gate frees.
#[test]
fn busy_graph_defers_and_coalesces_updates() {
    let server = boot(None);
    let addr = format!("127.0.0.1:{}", server.port());
    register_ring(&addr, "g");

    let cell = server.state().registry.entry("g").expect("cell");
    let gate = cell.begin_update();

    let (status, body) = apply_update(&addr, "g", "{\"insertions\":[[0,6,1.0]]}");
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"deferred\":true"), "{body}");
    assert_eq!(json_u64(&body, "queue_depth"), Some(1), "{body}");
    assert!(body.contains("\"coalesced\":false"), "{body}");

    let (status, body) = apply_update(&addr, "g", "{\"insertions\":[[1,7,1.0]]}");
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"coalesced\":true"), "{body}");
    // Coalesced into the same pending entry: depth stays 1.
    assert_eq!(json_u64(&body, "queue_depth"), Some(1), "{body}");

    drop(gate);
    assert!(server.state().ingest.wait_idle(Duration::from_secs(30)));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, info) = client_request(&addr, "GET", "/graphs/g", None).unwrap();
        assert_eq!(status, 200, "{info}");
        // One merged batch: epoch advances exactly once.
        if json_u64(&info, "epoch") == Some(1) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "deferred batch never applied: {info}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.stop();
}

/// The ingest queue's edit cap turns overload into 429, not unbounded
/// memory growth.
#[test]
fn full_ingest_queue_rejects_with_429() {
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        shards: 1,
        ingest_max_queued_edits: 3,
        ..ServeConfig::default()
    })
    .expect("server start");
    let addr = format!("127.0.0.1:{}", server.port());
    register_ring(&addr, "g");

    let cell = server.state().registry.entry("g").expect("cell");
    let gate = cell.begin_update();

    let (status, body) = apply_update(&addr, "g", "{\"insertions\":[[0,6,1.0],[1,7,1.0]]}");
    assert_eq!(status, 202, "{body}");
    // 2 queued + 2 more would cross the cap of 3.
    let (status, body) = apply_update(&addr, "g", "{\"insertions\":[[2,8,1.0],[3,9,1.0]]}");
    assert_eq!(status, 429, "{body}");

    drop(gate);
    assert!(server.state().ingest.wait_idle(Duration::from_secs(30)));
    server.stop();
}
