//! End-to-end HTTP tests across both front ends: the classic
//! thread-per-connection acceptor and the `gve-net` event-loop reactor
//! (epoll and the portable `poll(2)` fallback).

use gve_serve::{client_request, ServeConfig, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn boot(event_loop: bool, force_portable_poll: bool) -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 2,
        event_loop,
        force_portable_poll,
        ..ServeConfig::default()
    })
    .expect("server start")
}

fn register_sbm(addr: &str, name: &str, vertices: usize) {
    let body = format!(
        "{{\"name\":\"{name}\",\"generate\":{{\"class\":\"sbm\",\"vertices\":{vertices},\
         \"communities\":10,\"intra_degree\":10.0,\"inter_degree\":0.8,\"seed\":42}}}}"
    );
    let (status, response) = client_request(addr, "POST", "/graphs", Some(&body)).unwrap();
    assert_eq!(status, 201, "register failed: {response}");
}

/// Pulls `"field":<integer>` out of a JSON response without a parser.
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let key = format!("\"{field}\":");
    let start = body.find(&key)? + key.len();
    let digits: String = body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn wait_job_done(addr: &str, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = client_request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        assert_eq!(status, 200, "{body}");
        if body.contains("\"done\"") || body.contains("\"failed\"") {
            return body;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn metric_value(addr: &str, name: &str) -> f64 {
    let (status, body) = client_request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    body.lines()
        .find(|line| line.starts_with(name) && !line.starts_with('#'))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|value| value.parse().ok())
        .unwrap_or(0.0)
}

/// The full service flow — register, detect, poll, membership — over
/// the event-loop front end (the default on unix).
#[test]
fn event_loop_detect_flow_end_to_end() {
    let server = boot(true, false);
    assert!(
        server.backend() == "epoll" || server.backend() == "poll",
        "unexpected backend {}",
        server.backend()
    );
    let addr = format!("127.0.0.1:{}", server.port());

    register_sbm(&addr, "flow", 500);
    let (status, body) = client_request(&addr, "POST", "/graphs/flow/detect", Some("{}")).unwrap();
    assert!(status == 200 || status == 202, "{status} {body}");
    let id = json_u64(&body, "id").expect("job id in detect response");

    let done = wait_job_done(&addr, id);
    assert!(done.contains("\"done\""), "{done}");
    assert!(
        json_u64(&done, "num_communities").unwrap_or(0) > 0,
        "{done}"
    );

    let (status, membership) =
        client_request(&addr, "GET", "/graphs/flow/membership", None).unwrap();
    assert_eq!(status, 200);
    assert!(membership.contains("\"membership\""), "{membership}");
    server.stop();
}

/// The same flow must work on the threaded fallback front end.
#[test]
fn threaded_front_end_equivalent_flow() {
    let server = boot(false, false);
    assert_eq!(server.backend(), "threaded");
    let addr = format!("127.0.0.1:{}", server.port());

    register_sbm(&addr, "legacy", 400);
    let (status, body) =
        client_request(&addr, "POST", "/graphs/legacy/detect", Some("{}")).unwrap();
    assert!(status == 200 || status == 202, "{status} {body}");
    let id = json_u64(&body, "id").expect("job id");
    let done = wait_job_done(&addr, id);
    assert!(done.contains("\"done\""), "{done}");
    server.stop();
}

/// The portable `poll(2)` reactor backend answers requests like epoll.
#[test]
fn portable_poll_backend_serves() {
    let server = boot(true, true);
    assert_eq!(server.backend(), "poll");
    let addr = format!("127.0.0.1:{}", server.port());
    let (status, body) = client_request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    server.stop();
}

/// Regression test for `Server::stop` vs in-flight keep-alive
/// connections: an idle persistent connection must not wedge shutdown.
/// Stop drains within its bounded budget and the port stops accepting.
#[test]
fn stop_drains_inflight_keepalive_connections() {
    let server = Arc::new(boot(true, false));
    let addr = format!("127.0.0.1:{}", server.port());

    // Park several idle keep-alive connections on the reactor, with one
    // request served on each so they are fully established.
    let mut parked = Vec::new();
    for _ in 0..4 {
        let mut conn = gve_net::ClientConn::connect(addr.as_str()).unwrap();
        let (status, _) = conn.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        parked.push(conn);
    }

    let started = Instant::now();
    server.stop();
    let stop_elapsed = started.elapsed();
    // Bounded drain: well under the reactor's drain budget plus slack,
    // never a hang on the idle connections.
    assert!(
        stop_elapsed < Duration::from_secs(20),
        "stop took {stop_elapsed:?} with idle keep-alive connections parked"
    );

    // The listener is gone: new connections are refused (or, at worst,
    // accepted by the OS backlog and immediately closed).
    match gve_net::ClientConn::connect(addr.as_str()) {
        Err(_) => {}
        Ok(mut conn) => {
            assert!(
                conn.request("GET", "/healthz", None).is_err(),
                "server answered after stop"
            );
        }
    }

    // Parked connections observe the close rather than hanging forever.
    for conn in parked.iter_mut() {
        assert!(
            conn.request("GET", "/healthz", None).is_err(),
            "drained connection still served a request after stop"
        );
    }
}

/// N identical concurrent detects over HTTP collapse onto one Leiden
/// run: every response carries the same job key, the coalesced counter
/// advances, and exactly one full detection executes.
#[test]
fn identical_concurrent_detects_coalesce_over_http() {
    let server = Arc::new(boot(true, false));
    let addr = format!("127.0.0.1:{}", server.port());
    register_sbm(&addr, "shared", 2500);

    let full_before = metric_value(&addr, "gve_jobs_full_detections_total");

    const CLIENTS: usize = 8;
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let ids: Vec<u64> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let (status, body) = client_request(
                        &addr,
                        "POST",
                        "/graphs/shared/detect",
                        Some("{\"seed\":7}"),
                    )
                    .unwrap();
                    assert!(status == 200 || status == 202, "{status} {body}");
                    json_u64(&body, "id").expect("job id")
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    for &id in &ids {
        let done = wait_job_done(&addr, id);
        assert!(done.contains("\"done\""), "{done}");
    }

    let full_after = metric_value(&addr, "gve_jobs_full_detections_total");
    let coalesced = metric_value(&addr, "gve_jobs_coalesced_total");
    assert_eq!(
        (full_after - full_before) as u64,
        1,
        "identical concurrent detects ran more than one Leiden pass"
    );
    assert!(
        coalesced >= 1.0,
        "expected coalesced jobs, counter = {coalesced}"
    );
    server.stop();
}

/// Regression test for the reactor-stall review finding: inline
/// handlers (graph info, detect submit) snapshot the registry entry on
/// the reactor thread, and an update batch mid-refresh must not block
/// them. Holding the cell's update gate simulates the longest possible
/// refresh; a request that blocked behind it would hang this test.
#[test]
fn inline_requests_answer_while_an_update_holds_the_gate() {
    let server = boot(true, false);
    let addr = format!("127.0.0.1:{}", server.port());
    register_sbm(&addr, "busy", 400);

    let cell = server.state().registry.entry("busy").unwrap();
    let gate = cell.begin_update(); // an update batch is "in flight"

    // Inline GET on the same graph answers immediately off the old
    // snapshot instead of freezing the reactor (and with it every
    // other connection) until the gate drops.
    let (status, body) = client_request(&addr, "GET", "/graphs/busy", None).unwrap();
    assert_eq!(status, 200, "{body}");
    // Inline detect submit also only needs the snapshot.
    let (status, body) = client_request(&addr, "POST", "/graphs/busy/detect", Some("{}")).unwrap();
    assert!(status == 200 || status == 202, "{status} {body}");
    // Unrelated inline routes (served by the same single reactor
    // thread) must be alive too.
    let (status, _) = client_request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);

    drop(gate);
    server.stop();
}

/// Keep-alive reuse over the reactor: many requests on one connection,
/// confirmed by the reuse counter.
#[test]
fn keepalive_connection_serves_many_requests() {
    let server = boot(true, false);
    let addr = format!("127.0.0.1:{}", server.port());
    let mut conn = gve_net::ClientConn::connect(addr.as_str()).unwrap();
    for _ in 0..32 {
        let (status, _) = conn.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
    }
    let reuses = metric_value(&addr, "gve_net_keepalive_reuses_total");
    assert!(reuses >= 31.0, "keep-alive reuses = {reuses}");
    server.stop();
}
