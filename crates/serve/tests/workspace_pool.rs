//! Serve-side workspace pooling, proven with an allocation-counting
//! global allocator: two detect jobs through one [`WorkspacePool`]
//! produce identical partitions, reuse one arena, and the second job's
//! allocator traffic collapses to a small constant share of the first.
//!
//! This binary installs [`CountingAllocator`] process-wide, so every
//! assertion about "allocations" below is measured, not inferred.

use gve_generate::PlantedPartition;
use gve_leiden::Scheduling;
use gve_prim::alloc_count::{self, CountingAllocator};
use gve_serve::cache::PartitionCache;
use gve_serve::jobs::{DetectRequest, JobEngine, JobState};
use gve_serve::registry::{GraphRegistry, GraphSource};
use gve_serve::WorkspacePool;
use std::sync::Arc;
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The allocator counters are process-global; serialize the tests.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn planted() -> gve_graph::CsrGraph {
    PlantedPartition::new(30_000, 25, 12.0, 0.8)
        .seed(17)
        .generate()
        .graph
}

/// Direct measurement of the pool's steady state: after a warm-up run
/// has grown the arena to the graph size, a further run through the
/// same pool performs no Leiden-hot-path allocations — the only heap
/// traffic left is the returned result (membership vector and per-pass
/// stats) plus small constant scheduler overhead.
#[test]
fn pooled_runs_reach_zero_hot_path_allocations() {
    let _guard = LOCK.lock().unwrap();
    let graph = planted();
    let leiden = gve_leiden::Leiden::default();
    let pool = Arc::new(WorkspacePool::new());

    let thread_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    thread_pool.install(|| {
        // Warm-up: grows the arena (and the aggregation recycle stack)
        // to this graph's size.
        let warm = {
            let mut ws = pool.checkout();
            leiden.run_in(&graph, &mut ws)
        };

        let before = alloc_count::snapshot();
        let steady = {
            let mut ws = pool.checkout();
            leiden.run_in(&graph, &mut ws)
        };
        let after = alloc_count::snapshot();

        assert_eq!(warm.membership, steady.membership, "1-thread determinism");
        let allocs = after.allocs_since(&before);
        let bytes = after.bytes_since(&before);
        // The result itself costs a handful of allocations (membership
        // vector, top-level labels, pass stats). Anything past a small
        // constant means a per-pass buffer escaped the arena.
        assert!(
            allocs <= 64,
            "steady-state run performed {allocs} allocations ({bytes} bytes); \
             a pass-resident buffer is leaking out of the workspace arena"
        );
        // Result vectors are O(n) u32s; the arena itself (atomics,
        // scratch, aggregation CSRs) is far larger. A generous 3×n×4
        // byte bound still catches any arena buffer being reallocated.
        let n = graph.num_vertices() as u64;
        assert!(
            bytes <= 3 * n * 4 + (1 << 16),
            "steady-state run allocated {bytes} bytes (n = {n})"
        );
    });
}

/// End-to-end through the job engine: two detect jobs against the same
/// graph registered under two names (so the partition cache cannot
/// short-circuit the second one) share one pooled workspace and yield
/// identical partitions; the second job's allocator traffic is a small
/// fraction of the first's.
#[test]
fn two_detect_jobs_share_one_workspace_and_match() {
    let _guard = LOCK.lock().unwrap();
    let graph = planted();
    let registry = Arc::new(GraphRegistry::new());
    let cache = Arc::new(PartitionCache::new());
    registry
        .register("a", graph.clone(), GraphSource::Generated("sbm".into()))
        .unwrap();
    registry
        .register("b", graph, GraphSource::Generated("sbm".into()))
        .unwrap();
    // One worker: both jobs run on the same thread, through one pool.
    let engine = JobEngine::start(Arc::clone(&registry), Arc::clone(&cache), 1);

    // Color-synchronous scheduling is reproducible across runs and
    // thread counts, so "identical partitions" is exact, not luck.
    let request = DetectRequest {
        scheduling: Scheduling::ColorSynchronous,
        ..DetectRequest::default()
    };

    let before_first = alloc_count::snapshot();
    let first = engine.submit("a", request.clone()).unwrap();
    let first = engine.wait(first.id, Duration::from_secs(120)).unwrap();
    assert_eq!(first.state, JobState::Done, "error: {:?}", first.error);

    let before_second = alloc_count::snapshot();
    let second = engine.submit("b", request).unwrap();
    let second = engine.wait(second.id, Duration::from_secs(120)).unwrap();
    assert_eq!(second.state, JobState::Done, "error: {:?}", second.error);
    let after = alloc_count::snapshot();

    // Identical partitions out of one reused arena.
    let partition_a = cache.peek(first.key.as_ref().unwrap()).unwrap();
    let partition_b = cache.peek(second.key.as_ref().unwrap()).unwrap();
    assert_eq!(
        partition_a.membership, partition_b.membership,
        "reused workspace changed the partition"
    );
    assert!(!second.cached, "second job must be a real detection");

    // This binary *does* install the counting allocator, so the
    // gve_core_allocs_total export must have recorded real traffic.
    assert!(
        engine.stats.core_allocs.get() > 0,
        "core-alloc counter not fed by detections"
    );

    // The pool built exactly one workspace and parked it between jobs
    // (single-shard engine: both graphs share one pool).
    let pool = engine.workspaces_for("a");
    assert_eq!(pool.created.get(), 1, "one arena built");
    assert_eq!(pool.checkouts.get(), 2, "both jobs pooled");
    assert_eq!(pool.idle_len(), 1, "arena parked after use");

    // The second job skips the arena + aggregation-buffer allocations;
    // its heap traffic (result vectors, cache entry, job bookkeeping)
    // must be a small fraction of the cold first job's.
    let fresh_bytes = before_second.bytes_since(&before_first);
    let steady_bytes = after.bytes_since(&before_second);
    assert!(
        steady_bytes * 2 < fresh_bytes,
        "steady job allocated {steady_bytes} bytes vs {fresh_bytes} cold — pool not reused?"
    );
    engine.stop();
}
