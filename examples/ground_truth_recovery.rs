//! Validating detection against planted ground truth.
//!
//! The synthetic suite replaces the paper's real graphs, so this example
//! shows the second leg quality claims stand on: on a stochastic block
//! model the planted partition is *known*, and recovery is measured with
//! NMI/ARI as the mixing ratio degrades toward the detectability limit.
//!
//! ```text
//! cargo run --release --example ground_truth_recovery
//! ```

use gve::generate::PlantedPartition;
use gve::leiden::{Leiden, LeidenConfig, RefinementStrategy};
use gve::quality;

fn main() {
    let n = 4000;
    let k = 16;
    let degree = 16.0;
    println!("planted partition: {n} vertices, {k} blocks, degree {degree}");
    println!("\nmix = fraction of each vertex's edges leaving its block\n");
    println!("mix   NMI(greedy)  ARI(greedy)  NMI(random)  communities");

    for mix_percent in [10, 20, 30, 40, 50] {
        let mix = mix_percent as f64 / 100.0;
        let planted = PlantedPartition::new(n, k, degree * (1.0 - mix), degree * mix)
            .seed(99)
            .generate();

        let greedy = Leiden::new(LeidenConfig::default()).run(&planted.graph);
        let random = Leiden::new(
            LeidenConfig::default()
                .refinement(RefinementStrategy::Random)
                .seed(5),
        )
        .run(&planted.graph);

        let nmi_g = quality::normalized_mutual_information(&greedy.membership, &planted.labels);
        let ari_g = quality::adjusted_rand_index(&greedy.membership, &planted.labels);
        let nmi_r = quality::normalized_mutual_information(&random.membership, &planted.labels);
        println!(
            "{:.2}  {nmi_g:<11.3}  {ari_g:<11.3}  {nmi_r:<11.3}  {}",
            mix, greedy.num_communities
        );
    }

    println!(
        "\nLow mixing → perfect recovery (NMI ≈ 1); past ~40% the planted\n\
         structure stops being the modularity optimum and recovery decays —\n\
         that is a property of the problem, not the solver."
    );
}
