//! Quickstart: build a graph, detect communities, inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gve::graph::GraphBuilder;
use gve::leiden::{Leiden, LeidenConfig};
use gve::quality;

fn main() {
    // A tiny social circle: two tight friend groups sharing one bridge.
    let graph = GraphBuilder::from_edges(
        8,
        &[
            // group A: 0-1-2-3 clique
            (0, 1, 1.0),
            (0, 2, 1.0),
            (0, 3, 1.0),
            (1, 2, 1.0),
            (1, 3, 1.0),
            (2, 3, 1.0),
            // group B: 4-5-6-7 clique
            (4, 5, 1.0),
            (4, 6, 1.0),
            (4, 7, 1.0),
            (5, 6, 1.0),
            (5, 7, 1.0),
            (6, 7, 1.0),
            // the bridge
            (3, 4, 1.0),
        ],
    );

    let result = Leiden::new(LeidenConfig::default()).run(&graph);

    println!("vertices:    {}", graph.num_vertices());
    println!("arcs:        {}", graph.num_arcs());
    println!("communities: {}", result.num_communities);
    println!("passes:      {}", result.passes);
    println!("membership:  {:?}", result.membership);

    let q = quality::modularity(&graph, &result.membership);
    println!("modularity:  {q:.4}");

    let report = quality::disconnected_communities(&graph, &result.membership);
    println!(
        "connectivity guarantee: {} disconnected of {} communities",
        report.disconnected, report.communities
    );

    assert_eq!(result.num_communities, 2);
    assert!(report.all_connected());
    println!("\nThe two cliques were recovered as two connected communities.");
}
