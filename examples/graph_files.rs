//! File-based pipeline: write a graph to Matrix Market and edge-list
//! formats, read it back, and run detection — the way the paper's
//! SuiteSparse datasets would be consumed if present on disk.
//!
//! ```text
//! cargo run --release --example graph_files
//! ```

use gve::generate::rmat::Rmat;
use gve::graph::io;
use gve::quality;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("gve-example-files");
    std::fs::create_dir_all(&dir)?;

    // Produce a graph and persist it in both supported formats.
    let original = Rmat::web(12, 6.0).seed(21).generate();
    let mtx_path = dir.join("crawl.mtx");
    let txt_path = dir.join("crawl.txt");
    io::write_matrix_market(&original, std::fs::File::create(&mtx_path)?)?;
    io::write_edge_list(&original, std::fs::File::create(&txt_path)?)?;
    println!("wrote {} and {}", mtx_path.display(), txt_path.display());

    // Read back through the extension-dispatching loader. Matrix Market
    // carries explicit dimensions and round-trips exactly; a plain edge
    // list has no vertex-count header, so trailing isolated vertices are
    // not representable and only the edge structure is preserved.
    let from_mtx = io::read_path(&mtx_path)?;
    let from_txt = io::read_path(&txt_path)?;
    assert_eq!(from_mtx, original);
    assert_eq!(from_txt.num_arcs(), original.num_arcs());
    assert!(from_txt.num_vertices() <= original.num_vertices());
    println!(
        "round-trip ok: |V| = {}, |E| = {} (edge list kept {} non-trailing vertices)",
        from_mtx.num_vertices(),
        from_mtx.num_arcs(),
        from_txt.num_vertices()
    );

    // Detect on the loaded graph, save the membership next to it.
    let result = gve::leiden::leiden(&from_mtx);
    let q = quality::modularity(&from_mtx, &result.membership);
    println!(
        "detected {} communities, modularity {q:.4}",
        result.num_communities
    );

    let membership_path = dir.join("crawl.communities.txt");
    let mut out = String::new();
    for (v, c) in result.membership.iter().enumerate() {
        out.push_str(&format!("{v} {c}\n"));
    }
    std::fs::write(&membership_path, out)?;
    println!("membership saved to {}", membership_path.display());
    Ok(())
}
