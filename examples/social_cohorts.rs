//! Recommendation cohorts on a social network — and why Leiden, not
//! Louvain: the paper's Figure 6(d) shows Louvain-family methods emit
//! internally-disconnected communities, which are useless as cohorts
//! (members of a "cohort" with no social path between them).
//!
//! Runs GVE-Louvain and GVE-Leiden on the same social graph and compares
//! quality and the disconnected-community count.
//!
//! ```text
//! cargo run --release --example social_cohorts
//! ```

use gve::generate::suite;
use gve::quality;

fn main() {
    let dataset = suite::suite()
        .into_iter()
        .find(|d| d.name == "soc-livejournal")
        .expect("suite entry");
    println!("generating {} (social network class)...", dataset.name);
    let graph = dataset.generate(2.0, 3);
    let stats = gve::graph::props::stats(&graph);
    println!("|V| = {}, |E| = {}", stats.vertices, stats.arcs);

    let louvain = gve::louvain::louvain(&graph);
    let leiden = gve::leiden::leiden(&graph);

    let q_louvain = quality::modularity(&graph, &louvain.membership);
    let q_leiden = quality::modularity(&graph, &leiden.membership);
    let d_louvain = quality::disconnected_communities(&graph, &louvain.membership);
    let d_leiden = quality::disconnected_communities(&graph, &leiden.membership);

    println!("\n                 Louvain      Leiden");
    println!(
        "cohorts          {:<12} {}",
        louvain.num_communities, leiden.num_communities
    );
    println!("modularity       {q_louvain:<12.4} {q_leiden:.4}");
    println!(
        "disconnected     {:<12} {}",
        d_louvain.disconnected, d_leiden.disconnected
    );

    assert!(
        d_leiden.all_connected(),
        "Leiden must guarantee connected cohorts"
    );
    if d_louvain.disconnected > 0 {
        println!(
            "\nLouvain produced {} broken cohort(s); Leiden's refinement phase \
             fixed every one of them (the Figure 6(d) result).",
            d_louvain.disconnected
        );
    } else {
        println!("\nBoth connected on this seed; Leiden is the one that guarantees it.");
    }

    // Cohort similarity between the two methods.
    let nmi = quality::normalized_mutual_information(&louvain.membership, &leiden.membership);
    println!("cohort agreement (NMI): {nmi:.3}");
}
