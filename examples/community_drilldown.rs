//! Multi-resolution drill-down: record the coarsening hierarchy, report
//! per-community structure, and re-detect inside the largest community
//! at a finer resolution — the analysis loop a downstream user runs
//! after the headline detection.
//!
//! ```text
//! cargo run --release --example community_drilldown
//! ```

use gve::graph::subgraph::community_subgraph;
use gve::leiden::{Leiden, LeidenConfig, Objective};
use gve::quality;

fn main() {
    let lfr = gve::generate::Lfr::new(6000, 14.0, 0.25).seed(3).generate();
    let graph = &lfr.graph;
    println!(
        "LFR benchmark: |V| = {}, |E| = {}, {} planted communities",
        graph.num_vertices(),
        graph.num_arcs(),
        lfr.communities
    );

    // Detect with the hierarchy recorded.
    let config = LeidenConfig {
        record_dendrogram: true,
        ..LeidenConfig::default()
    };
    let result = Leiden::new(config).run(graph);
    println!(
        "\ndetected {} communities in {} passes (NMI vs planted: {:.3})",
        result.num_communities,
        result.passes,
        quality::normalized_mutual_information(&result.membership, &lfr.labels)
    );

    // The coarsening hierarchy, level by level.
    println!("\nhierarchy (level: communities, modularity):");
    for level in 0..=result.dendrogram.len() {
        let membership = result.membership_at_level(level);
        let k = quality::community_count(&membership);
        let q = quality::modularity(graph, &membership);
        println!("  level {level}: {k:>6} communities, Q = {q:.4}");
    }

    // Per-community structural report.
    let report = quality::community_report(graph, &result.membership);
    println!("\ntop communities by size:");
    print!("{}", quality::format_report(&report, 8));

    // Drill into the largest community at a finer resolution.
    let largest = report[0].id;
    let sub = community_subgraph(graph, &result.membership, largest);
    println!(
        "\ndrilling into community {largest} ({} vertices, {} arcs):",
        sub.graph.num_vertices(),
        sub.graph.num_arcs()
    );
    let fine =
        Leiden::new(LeidenConfig::default().objective(Objective::Modularity { resolution: 4.0 }))
            .run(&sub.graph);
    println!(
        "  at resolution 4.0 it splits into {} sub-communities (Q = {:.4})",
        fine.num_communities,
        quality::modularity(&sub.graph, &fine.membership)
    );
    // Map a few sub-community members back to original vertex ids.
    let sample: Vec<u32> = (0..sub.graph.num_vertices() as u32)
        .filter(|&v| fine.membership[v as usize] == 0)
        .take(5)
        .map(|v| sub.original_of(v))
        .collect();
    println!("  sample members of sub-community 0 (original ids): {sample:?}");
}
