//! Topic discovery on a web-crawl-like graph — the workload class the
//! paper's introduction motivates (community detection for topic
//! discovery) and the dominant class of its dataset (7 of 13 graphs).
//!
//! Generates a web-class graph from the Table 2 suite, runs GVE-Leiden,
//! and reports the phase split the paper analyses in Figure 7.
//!
//! ```text
//! cargo run --release --example web_crawl_topics
//! ```

use gve::generate::suite;
use gve::leiden::{Leiden, LeidenConfig};
use gve::quality;

fn main() {
    let dataset = suite::suite()
        .into_iter()
        .find(|d| d.name == "web-indochina")
        .expect("suite entry");
    println!("generating {} (web crawl class)...", dataset.name);
    let graph = dataset.generate(1.0, 7);
    let stats = gve::graph::props::stats(&graph);
    println!(
        "|V| = {}, |E| = {}, avg degree {:.1}",
        stats.vertices, stats.arcs, stats.avg_degree
    );

    let result = Leiden::new(LeidenConfig::default()).run(&graph);
    let q = quality::modularity(&graph, &result.membership);
    println!(
        "\nfound {} topics in {} passes, modularity {q:.4}",
        result.num_communities, result.passes
    );

    // Topic size distribution — web crawls give many mid-sized topics.
    let mut sizes = quality::community_sizes(&result.membership);
    sizes.retain(|&s| s > 0);
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest topics: {:?}", &sizes[..sizes.len().min(10)]);
    let median = sizes[sizes.len() / 2];
    println!("median topic size: {median}");

    // Phase split (Figure 7(a)): on web graphs the local-moving phase
    // dominates.
    let (l, r, a, o) = result.timings.fractions();
    println!("\nphase split (Figure 7a):");
    println!("  local-moving {:5.1}%", 100.0 * l);
    println!("  refinement   {:5.1}%", 100.0 * r);
    println!("  aggregation  {:5.1}%", 100.0 * a);
    println!("  others       {:5.1}%", 100.0 * o);

    let report = quality::disconnected_communities(&graph, &result.membership);
    assert!(report.all_connected(), "Leiden guarantee violated");
    println!("\nall {} topics internally connected ✓", report.communities);
}
