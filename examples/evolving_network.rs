//! Community tracking on an evolving network — the dynamic-Leiden
//! extension the paper flags as future work (§4.1: the refine-based
//! variant "may be more suitable for the design of dynamic Leiden").
//!
//! Simulates a stream of edge batches over a social-style graph and
//! compares the Dynamic Frontier strategy against full static reruns:
//! same quality, a fraction of the processing.
//!
//! ```text
//! cargo run --release --example evolving_network
//! ```

use gve::dynamic::{apply_batch, BatchUpdate, DynamicLeiden, DynamicStrategy};
use gve::generate::PlantedPartition;
use gve::leiden::{Leiden, LeidenConfig};
use gve::prim::Xorshift32;
use gve::quality;
use std::time::Instant;

fn main() {
    let planted = PlantedPartition::new(8000, 20, 14.0, 1.0)
        .seed(1)
        .generate();
    println!(
        "initial graph: |V| = {}, |E| = {}",
        planted.graph.num_vertices(),
        planted.graph.num_arcs()
    );

    let mut detector = DynamicLeiden::new(
        planted.graph.clone(),
        LeidenConfig::default(),
        DynamicStrategy::DynamicFrontier,
    );
    let static_runner = Leiden::default();
    let mut rng = Xorshift32::new(7);
    let mut reference = planted.graph.clone();

    println!("\nstep  batch  Q(frontier)  Q(static)  t(frontier)  t(static)");
    for step in 0..6 {
        // A batch of churn: random new friendships + dropped ones.
        let mut batch = BatchUpdate::new();
        let n = reference.num_vertices() as u32;
        for _ in 0..200 {
            let u = rng.next_bounded(n);
            let v = rng.next_bounded(n);
            if u != v {
                batch.insert(u, v, 1.0);
            }
        }
        for _ in 0..150 {
            let u = rng.next_bounded(n);
            let nb = reference.neighbors(u);
            if !nb.is_empty() {
                let v = nb[rng.next_bounded(nb.len() as u32) as usize];
                if u != v {
                    batch.delete(u, v);
                }
            }
        }

        let t0 = Instant::now();
        detector.apply(&batch);
        let t_frontier = t0.elapsed();

        reference = apply_batch(&reference, &batch);
        let t1 = Instant::now();
        let static_result = static_runner.run(&reference);
        let t_static = t1.elapsed();

        let q_frontier = quality::modularity(&reference, detector.membership());
        let q_static = quality::modularity(&reference, &static_result.membership);
        println!(
            "{step:>4}  {:>5}  {q_frontier:<11.4}  {q_static:<9.4}  {:<11?}  {:?}",
            batch.len(),
            t_frontier,
            t_static,
        );

        let report = quality::disconnected_communities(&reference, detector.membership());
        assert!(report.all_connected(), "connectivity guarantee violated");
    }
    println!(
        "\nDynamic Frontier tracked {} batches with static-level quality while \
         reprocessing only the perturbed region each step.",
        detector.batches_applied()
    );
}
