//! `gve` — the command-line graph processing tool the paper names as the
//! home of GVE-Leiden ("a forthcoming command-line graph processing tool
//! named GVE", §4.2).
//!
//! ```text
//! gve generate --class web --vertices 20000 --out crawl.mtx
//! gve detect crawl.mtx --algorithm leiden --out crawl.membership
//! gve quality crawl.mtx crawl.membership
//! ```

use gve::graph::{io, CsrGraph, VertexId};
use gve::quality;
use std::process::exit;

// Count every heap allocation the process makes. This is what turns
// `gve_core_allocs_total` on the serve path into a real measurement
// (a resident `gve serve` flat-lines it once the workspace pool is
// warm) and feeds the per-iteration alloc report of `detect --repeat`.
// Cost: a few relaxed atomic adds per allocator call — and the whole
// point of the arena work is that the hot path makes none.
#[global_allocator]
static ALLOC: gve::prim::alloc_count::CountingAllocator = gve::prim::alloc_count::CountingAllocator;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         gve generate --class <web|social|road|kmer|er|lfr> --vertices <n> \
         [--degree <f>] [--seed <n>] --out <path>\n  \
         gve detect <graph> [--algorithm <leiden|louvain|seq-leiden|seq-louvain|nk-leiden>] \
         [--objective <modularity|cpm>] [--resolution <f>] [--threads <n>] \
         [--chunk-size <n>] [--kernel <v1|v2|v3>] [--ordering <original|degree|bfs>] \
         [--layout <split|interleaved>] [--scheduling <static|guided|stealing>] \
         [--trace <path>] [--repeat <n>] [--out <path>]\n  \
         gve quality <graph> <membership> [--detail <n>]\n  \
         gve stats <graph>\n  \
         gve convert <input> <output>     (formats by extension: .mtx, .gveg, else edge list)\n  \
         gve serve [--addr <host:port>] [--workers <n>] [--shards <n>] \
         [--max-connections <n>] [--threaded] [--portable-poll] \
         [--data-dir <path>] [--snapshot-every <n>] [--no-fsync] [--load <name>=<path>]...\n  \
         gve client <method> <path> [--addr <host:port>] [--body <json>|--body-file <path>]\n  \
         gve top [--addr <host:port>]    (one-shot metrics summary of a running gve-serve)"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("quality") => cmd_quality(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        _ => usage(),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_generate(args: &[String]) {
    let class = flag_value(args, "--class").unwrap_or_else(|| usage());
    let vertices: usize = flag_value(args, "--vertices")
        .unwrap_or("10000")
        .parse()
        .expect("bad --vertices");
    let degree: f64 = flag_value(args, "--degree")
        .unwrap_or("8")
        .parse()
        .expect("bad --degree");
    let seed: u64 = flag_value(args, "--seed")
        .unwrap_or("0")
        .parse()
        .expect("bad --seed");
    let out = flag_value(args, "--out").unwrap_or_else(|| usage());

    let graph = match class {
        "web" => {
            gve::generate::PlantedPartition::new(
                vertices,
                (vertices / 256).max(4),
                degree * 0.85,
                degree * 0.15,
            )
            .seed(seed)
            .generate()
            .graph
        }
        "social" => {
            gve::generate::PlantedPartition::new(
                vertices,
                (vertices / 512).max(16),
                degree * 0.7,
                degree * 0.3,
            )
            .seed(seed)
            .generate()
            .graph
        }
        "road" => {
            let width = (vertices as f64).sqrt().ceil() as usize;
            gve::generate::grid::road_grid(width, vertices.div_ceil(width), degree, seed)
        }
        "kmer" => gve::generate::kmer::kmer_chains(vertices, 16, 0.05, seed),
        "er" => gve::generate::er::erdos_renyi(
            vertices,
            (vertices as f64 * degree / 2.0) as usize,
            seed,
        ),
        "lfr" => {
            gve::generate::Lfr::new(vertices, degree, 0.3)
                .seed(seed)
                .generate()
                .graph
        }
        other => {
            eprintln!("unknown class {other}");
            usage()
        }
    };
    write_graph(&graph, out);
    let stats = gve::graph::props::stats(&graph);
    eprintln!(
        "wrote {out}: |V| = {}, |E| = {}, avg degree {:.1}",
        stats.vertices, stats.arcs, stats.avg_degree
    );
}

fn write_graph(graph: &CsrGraph, out: &str) {
    let file = std::fs::File::create(out).expect("cannot create output file");
    if out.ends_with(".mtx") {
        io::write_matrix_market(graph, file).expect("write failed");
    } else if out.ends_with(".gveg") {
        io::binary::write_binary(graph, file).expect("write failed");
    } else {
        io::write_edge_list(graph, file).expect("write failed");
    }
}

fn cmd_stats(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let graph = load_graph(path);
    let stats = gve::graph::props::stats(&graph);
    let (_, components) = gve::graph::traversal::connected_components(&graph);
    println!("vertices:     {}", stats.vertices);
    println!("arcs:         {}", stats.arcs);
    println!("avg degree:   {:.2}", stats.avg_degree);
    println!("max degree:   {}", stats.max_degree);
    println!("self loops:   {}", stats.self_loops);
    println!("total weight: {:.2}", stats.total_weight);
    println!("components:   {components}");
}

fn cmd_convert(args: &[String]) {
    let (input, output) = match (args.first(), args.get(1)) {
        (Some(i), Some(o)) => (i, o),
        _ => usage(),
    };
    let graph = load_graph(input);
    write_graph(&graph, output);
    eprintln!(
        "converted {input} -> {output} (|V| = {}, |E| = {})",
        graph.num_vertices(),
        graph.num_arcs()
    );
}

fn load_graph(path: &str) -> CsrGraph {
    io::read_path(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read graph {path}: {e}");
        exit(1);
    })
}

fn cmd_detect(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let algorithm = flag_value(args, "--algorithm").unwrap_or("leiden");
    let graph = load_graph(path);
    eprintln!(
        "loaded {path}: |V| = {}, |E| = {}",
        graph.num_vertices(),
        graph.num_arcs()
    );

    let resolution: f64 = flag_value(args, "--resolution")
        .unwrap_or("1.0")
        .parse()
        .expect("bad --resolution");
    let objective = match flag_value(args, "--objective").unwrap_or("modularity") {
        "modularity" => gve::leiden::Objective::Modularity { resolution },
        "cpm" => gve::leiden::Objective::Cpm { resolution },
        other => {
            eprintln!("unknown objective {other}");
            usage()
        }
    };
    let mut leiden_config = gve::leiden::LeidenConfig::default().objective(objective);
    if let Some(raw) = flag_value(args, "--chunk-size") {
        let chunk_size: usize = raw.parse().unwrap_or_else(|_| {
            eprintln!("error: bad --chunk-size '{raw}' (expected a positive integer)");
            exit(2);
        });
        leiden_config = leiden_config.chunk_size(chunk_size);
    }
    if let Some(token) = flag_value(args, "--kernel") {
        match gve::leiden::KernelVersion::parse(token) {
            Ok(kernel) => leiden_config = leiden_config.kernel(kernel),
            Err(e) => {
                eprintln!("error: {e}");
                exit(2);
            }
        }
    }
    if let Some(token) = flag_value(args, "--ordering") {
        match gve::leiden::VertexOrdering::parse(token) {
            Ok(ordering) => leiden_config = leiden_config.ordering(ordering),
            Err(e) => {
                eprintln!("error: {e}");
                exit(2);
            }
        }
    }
    if let Some(token) = flag_value(args, "--layout") {
        match gve::leiden::EdgeLayout::parse(token) {
            Ok(layout) => leiden_config = leiden_config.layout(layout),
            Err(e) => {
                eprintln!("error: {e}");
                exit(2);
            }
        }
    }
    if let Some(token) = flag_value(args, "--scheduling") {
        match gve::leiden::ChunkScheduling::parse(token) {
            Ok(chunking) => leiden_config = leiden_config.chunking(chunking),
            Err(e) => {
                eprintln!("error: {e}");
                exit(2);
            }
        }
    }
    if let Err(e) = leiden_config.validate() {
        eprintln!("error: {e}");
        exit(1);
    }

    // A trace sink: --trace <path> wins, otherwise GVE_TRACE from the
    // environment. Only the leiden algorithm records pass/phase spans.
    let tracer = match flag_value(args, "--trace") {
        Some(trace_path) => match gve::obs::Tracer::to_path(trace_path) {
            Ok(t) => {
                eprintln!("tracing run to {trace_path}");
                Some(t)
            }
            Err(e) => {
                eprintln!("error: cannot create trace file {trace_path}: {e}");
                exit(1);
            }
        },
        None => gve::obs::Tracer::from_env(),
    };
    if tracer.is_some() && algorithm != "leiden" {
        eprintln!(
            "warning: run tracing only covers --algorithm leiden; \
             the {algorithm} run will not be traced"
        );
    }

    // --repeat N runs the detection N times through ONE pass-resident
    // workspace and reports each iteration's wall time and allocator
    // traffic: iteration 1 pays the arena growth, iterations >= 2 are
    // the steady state a resident service sees.
    let repeat: usize = flag_value(args, "--repeat")
        .unwrap_or("1")
        .parse()
        .expect("bad --repeat");
    if repeat == 0 {
        eprintln!("--repeat must be >= 1");
        exit(2);
    }
    if repeat > 1 && algorithm != "leiden" {
        eprintln!(
            "warning: only --algorithm leiden reuses a workspace across \
             repeats; running {algorithm} once"
        );
    }

    enum DetectOutcome {
        Leiden(Box<gve::leiden::LeidenResult>),
        Plain(Vec<VertexId>),
    }

    let run = || -> DetectOutcome {
        match algorithm {
            "leiden" => {
                let leiden = gve::leiden::Leiden::new(leiden_config);
                let mut workspace = gve::leiden::PassWorkspace::new();
                let mut result = None;
                for iteration in 1..=repeat {
                    let alloc_before = gve::prim::alloc_count::snapshot();
                    let start = std::time::Instant::now();
                    let r = match &tracer {
                        Some(t) => leiden.run_observed_in(
                            &graph,
                            &mut workspace,
                            &gve::leiden::RunObserver::with_tracer(t),
                        ),
                        None => leiden.run_in(&graph, &mut workspace),
                    };
                    if repeat > 1 {
                        let alloc_after = gve::prim::alloc_count::snapshot();
                        eprintln!(
                            "iteration {iteration}/{repeat}: {:.3}s, {} allocations \
                             ({} bytes)",
                            start.elapsed().as_secs_f64(),
                            alloc_after.allocs_since(&alloc_before),
                            alloc_after.bytes_since(&alloc_before),
                        );
                    }
                    result = Some(r);
                }
                DetectOutcome::Leiden(Box::new(result.expect("repeat >= 1")))
            }
            "louvain" => DetectOutcome::Plain(gve::louvain::louvain(&graph).membership),
            "seq-leiden" => {
                DetectOutcome::Plain(gve::baselines::seq::sequential_leiden(&graph).membership)
            }
            "seq-louvain" => DetectOutcome::Plain(
                gve::louvain::seq::sequential_louvain(&graph, 1e-6, 10).membership,
            ),
            "nk-leiden" => DetectOutcome::Plain(gve::baselines::nk::nk_leiden(&graph).membership),
            other => {
                eprintln!("unknown algorithm {other}");
                usage()
            }
        }
    };

    let start = std::time::Instant::now();
    let outcome = match flag_value(args, "--threads") {
        Some(raw) => {
            let threads: usize = raw.parse().expect("bad --threads");
            if threads == 0 {
                eprintln!("--threads must be >= 1");
                exit(2);
            }
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("failed to build thread pool");
            eprintln!("running on {threads} threads");
            pool.install(run)
        }
        None => run(),
    };
    let elapsed = start.elapsed();

    let membership: Vec<VertexId> = match outcome {
        DetectOutcome::Leiden(result) => {
            let t = &result.timings;
            let (f_move, f_refine, f_agg, f_other) = t.fractions();
            eprintln!(
                "phases: local-move {:.3}s ({:.0}%), refinement {:.3}s ({:.0}%), \
                 aggregation {:.3}s ({:.0}%), other {:.3}s ({:.0}%)",
                t.local_move.as_secs_f64(),
                f_move * 100.0,
                t.refinement.as_secs_f64(),
                f_refine * 100.0,
                t.aggregation.as_secs_f64(),
                f_agg * 100.0,
                t.other.as_secs_f64(),
                f_other * 100.0,
            );
            let (processed, skipped) = result
                .pass_stats
                .iter()
                .fold((0u64, 0u64), |(p, s), stats| {
                    (p + stats.pruning_processed, s + stats.pruning_skipped)
                });
            let visits = processed + skipped;
            eprintln!(
                "passes {}, {} local-move iterations, pruning skipped {:.1}% \
                 of {} vertex visits, stop: {}",
                result.passes,
                result.move_iterations,
                if visits > 0 {
                    skipped as f64 / visits as f64 * 100.0
                } else {
                    0.0
                },
                visits,
                result.stop.label(),
            );
            result.membership
        }
        DetectOutcome::Plain(membership) => membership,
    };

    let q = quality::modularity(&graph, &membership);
    eprintln!(
        "{algorithm}: {} communities, modularity {q:.4}, {:.3}s \
         ({:.1}M edges/s)",
        quality::community_count(&membership),
        elapsed.as_secs_f64(),
        graph.num_arcs() as f64 / elapsed.as_secs_f64() / 1e6,
    );

    if let Some(out) = flag_value(args, "--out") {
        let mut text = String::with_capacity(membership.len() * 8);
        for (v, c) in membership.iter().enumerate() {
            text.push_str(&format!("{v} {c}\n"));
        }
        std::fs::write(out, text).expect("failed to write membership");
        eprintln!("membership written to {out}");
    } else {
        // Without --out, print the membership to stdout.
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        use std::io::Write;
        for (v, c) in membership.iter().enumerate() {
            writeln!(lock, "{v} {c}").expect("stdout write failed");
        }
    }
}

fn cmd_serve(args: &[String]) {
    let addr = flag_value(args, "--addr")
        .unwrap_or("127.0.0.1:7461")
        .to_string();
    let workers: usize = flag_value(args, "--workers")
        .unwrap_or("2")
        .parse()
        .expect("bad --workers");
    let mut config = gve::serve::ServeConfig {
        addr,
        workers,
        ..Default::default()
    };
    if let Some(raw) = flag_value(args, "--max-connections") {
        config.max_connections = raw.parse().expect("bad --max-connections");
        if config.max_connections == 0 {
            eprintln!("--max-connections must be >= 1");
            exit(2);
        }
    }
    if let Some(raw) = flag_value(args, "--shards") {
        config.shards = raw.parse().expect("bad --shards");
        if config.shards == 0 {
            eprintln!("--shards must be >= 1");
            exit(2);
        }
    }
    if args.iter().any(|a| a == "--threaded") {
        config.event_loop = false;
    }
    if args.iter().any(|a| a == "--portable-poll") {
        config.force_portable_poll = true;
    }
    if let Some(dir) = flag_value(args, "--data-dir") {
        config.data_dir = Some(dir.to_string());
    }
    if let Some(raw) = flag_value(args, "--snapshot-every") {
        config.snapshot_every = raw.parse().expect("bad --snapshot-every");
        if config.snapshot_every == 0 {
            eprintln!("--snapshot-every must be >= 1");
            exit(2);
        }
    }
    if args.iter().any(|a| a == "--no-fsync") {
        config.fsync_wal = false;
    }
    let server = gve::serve::Server::start(&config).unwrap_or_else(|e| {
        eprintln!("error: cannot start server on {}: {e}", config.addr);
        exit(1);
    });
    if config.data_dir.is_some() {
        let recovered = server.state().registry.names();
        eprintln!(
            "durability on: {} graph(s) recovered from {}{}",
            recovered.len(),
            config.data_dir.as_deref().unwrap_or(""),
            if config.fsync_wal { "" } else { " (fsync off)" }
        );
    }

    // Preload graphs passed as repeated --load name=path flags.
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg != "--load" {
            continue;
        }
        let spec = iter.next().unwrap_or_else(|| usage());
        let (name, path) = spec.split_once('=').unwrap_or_else(|| {
            eprintln!("--load expects name=path, got {spec}");
            exit(2);
        });
        // A graph already restored from the data dir wins over --load:
        // the durable copy carries its applied update batches.
        if server.state().registry.snapshot(name).is_ok() {
            eprintln!("'{name}' already recovered from the data dir; skipping --load");
            continue;
        }
        match server.state().registry.register_from_path(name, path) {
            Ok(entry) => {
                eprintln!(
                    "loaded '{name}' from {path}: |V| = {}, |E| = {}",
                    entry.graph.num_vertices(),
                    entry.graph.num_arcs()
                );
                if let Some(store) = &server.state().durability {
                    if let Err(e) = store.register_graph(name, &entry.graph, &entry.source.label())
                    {
                        eprintln!("error: cannot persist '{name}': {e}");
                        exit(1);
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                exit(1);
            }
        }
    }

    eprintln!(
        "gve-serve listening on port {} ({} front end, {} shards × {} \
         detection workers; try: curl http://127.0.0.1:{}/healthz)",
        server.port(),
        server.backend(),
        config.shards,
        workers,
        server.port()
    );
    server.join();
}

fn cmd_client(args: &[String]) {
    let (method, path) = match (args.first(), args.get(1)) {
        (Some(m), Some(p)) => (m.to_ascii_uppercase(), p.as_str()),
        _ => usage(),
    };
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7461");
    let body_owned;
    let body = match (flag_value(args, "--body"), flag_value(args, "--body-file")) {
        (Some(inline), _) => Some(inline),
        (None, Some(file)) => {
            body_owned = std::fs::read_to_string(file).unwrap_or_else(|e| {
                eprintln!("error: cannot read {file}: {e}");
                exit(1);
            });
            Some(body_owned.as_str())
        }
        (None, None) => None,
    };
    match gve::serve::client_request(addr, &method, path, body) {
        Ok((status, response)) => {
            println!("{response}");
            if status >= 400 {
                exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: request to {addr} failed: {e}");
            exit(1);
        }
    }
}

/// Parses Prometheus text-format samples into `(name{labels}, value)`
/// pairs, skipping comment and blank lines.
fn parse_metrics(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .filter_map(|line| {
            let (name, value) = line.rsplit_once(' ')?;
            Some((name.to_string(), value.parse().ok()?))
        })
        .collect()
}

/// `gve top`: one-shot, human-readable summary of a running gve-serve
/// instance, assembled from its `/metrics` endpoint.
fn cmd_top(args: &[String]) {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7461");
    let text = match gve::serve::client_request(addr, "GET", "/metrics", None) {
        Ok((200, body)) => body,
        Ok((status, body)) => {
            eprintln!("error: GET /metrics returned {status}: {body}");
            exit(1);
        }
        Err(e) => {
            eprintln!("error: request to {addr} failed: {e}");
            exit(1);
        }
    };
    let samples = parse_metrics(&text);
    // Exact sample lookup (name must include labels when present).
    let get = |name: &str| -> f64 {
        samples
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    // Sum over every sample of a family regardless of labels — used for
    // label-split families such as the per-endpoint request histogram.
    let sum_family = |prefix: &str| -> f64 {
        samples
            .iter()
            .filter(|(n, _)| n.as_str() == prefix || n.starts_with(&format!("{prefix}{{")))
            .map(|(_, v)| v)
            .sum()
    };
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };

    println!("gve-serve at {addr}");
    println!();
    println!(
        "detections   {} runs, {} passes, {} local-move iterations, {} refinement moves",
        get("gve_leiden_runs_total"),
        get("gve_leiden_passes_total"),
        get("gve_leiden_move_iterations_total"),
        get("gve_leiden_refine_moves_total"),
    );
    println!(
        "phase time   local-move {:.3}s, refinement {:.3}s, aggregation {:.3}s, other {:.3}s",
        get("gve_leiden_phase_seconds_total{phase=\"local_move\"}"),
        get("gve_leiden_phase_seconds_total{phase=\"refinement\"}"),
        get("gve_leiden_phase_seconds_total{phase=\"aggregation\"}"),
        get("gve_leiden_phase_seconds_total{phase=\"other\"}"),
    );
    let processed = get("gve_leiden_pruning_processed_total");
    let skipped = get("gve_leiden_pruning_skipped_total");
    println!(
        "pruning      skipped {:.1}% of {} vertex visits; latest shrink ratio {:.3}, \
         {} tolerance stops",
        ratio(skipped, processed + skipped) * 100.0,
        processed + skipped,
        get("gve_leiden_aggregation_shrink_ratio"),
        get("gve_leiden_tolerance_skips_total"),
    );
    println!(
        "scheduler    chunks static {} / guided {} / stealing {}; {} steals",
        get("gve_core_chunks_total{policy=\"static\"}"),
        get("gve_core_chunks_total{policy=\"guided\"}"),
        get("gve_core_chunks_total{policy=\"stealing\"}"),
        get("gve_core_steals_total"),
    );
    let hits = get("gve_cache_hits_total");
    let misses = get("gve_cache_misses_total");
    println!(
        "cache        {hits} hits / {misses} misses ({:.1}% hit rate), {} evictions",
        ratio(hits, hits + misses) * 100.0,
        get("gve_cache_evictions_total"),
    );
    println!(
        "jobs         {} submitted, {} completed, {} failed, depth {}, \
         avg wait {:.1}ms, avg run {:.1}ms",
        get("gve_jobs_submitted_total"),
        get("gve_jobs_completed_total"),
        get("gve_jobs_failed_total"),
        get("gve_jobs_queue_depth"),
        ratio(
            get("gve_jobs_queue_wait_seconds_sum"),
            get("gve_jobs_queue_wait_seconds_count")
        ) * 1e3,
        ratio(
            get("gve_jobs_run_seconds_sum"),
            get("gve_jobs_run_seconds_count")
        ) * 1e3,
    );
    println!(
        "http         {} connections accepted, {} rejected; {} requests, avg latency {:.1}ms",
        get("gve_http_connections_total"),
        get("gve_http_rejected_connections_total"),
        sum_family("gve_http_request_seconds_count"),
        ratio(
            sum_family("gve_http_request_seconds_sum"),
            sum_family("gve_http_request_seconds_count")
        ) * 1e3,
    );
    println!(
        "updates      {} batches, {} edges inserted, {} edges deleted, {} incremental refreshes",
        get("gve_updates_batches_total"),
        get("gve_updates_edges_inserted_total"),
        get("gve_updates_edges_deleted_total"),
        get("gve_updates_incremental_refreshes_total"),
    );
    println!(
        "workspaces   {} checkouts of {} arenas ({} idle); {} hot-path allocations",
        get("gve_workspace_checkouts_total"),
        get("gve_workspace_created_total"),
        get("gve_workspace_idle"),
        get("gve_core_allocs_total"),
    );
}

fn cmd_quality(args: &[String]) {
    let (graph_path, membership_path) = match (args.first(), args.get(1)) {
        (Some(g), Some(m)) => (g, m),
        _ => usage(),
    };
    let graph = load_graph(graph_path);
    let text = std::fs::read_to_string(membership_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read membership {membership_path}: {e}");
        exit(1);
    });
    let mut membership = vec![0 as VertexId; graph.num_vertices()];
    let mut assigned = vec![false; graph.num_vertices()];
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let v: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("error: bad vertex at line {}", lineno + 1);
                exit(1);
            });
        let c: VertexId = parts
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("error: bad community at line {}", lineno + 1);
                exit(1);
            });
        if v >= membership.len() {
            eprintln!(
                "error: membership names vertex {v} but the graph has only {} vertices",
                membership.len()
            );
            exit(1);
        }
        membership[v] = c;
        assigned[v] = true;
    }
    let missing = assigned.iter().filter(|&&a| !a).count();
    if missing > 0 {
        eprintln!(
            "error: membership file covers {} of {} vertices ({missing} missing)",
            graph.num_vertices() - missing,
            graph.num_vertices()
        );
        exit(1);
    }
    quality::validate_membership(&membership, graph.num_vertices()).expect("invalid membership");

    let q = quality::modularity(&graph, &membership);
    let report = quality::disconnected_communities(&graph, &membership);
    println!(
        "communities:       {}",
        quality::community_count(&membership)
    );
    println!("modularity:        {q:.4}");
    println!("cpm (gamma=1/2m):  {:.4}", {
        let two_m = graph.total_arc_weight();
        quality::cpm(&graph, &membership, 1.0 / two_m.max(1.0))
    });
    println!(
        "disconnected:      {} of {} ({:.2e})",
        report.disconnected,
        report.communities,
        report.fraction()
    );
    if let Some(limit) = flag_value(args, "--detail") {
        let limit: usize = limit.parse().expect("bad --detail");
        let details = quality::community_report(&graph, &membership);
        println!("\ntop communities:");
        print!("{}", quality::format_report(&details, limit));
    }
}
