//! Facade crate for the GVE-Leiden reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use gve::generate::rmat::Rmat;
//! use gve::leiden::{Leiden, LeidenConfig};
//!
//! let graph = Rmat::social(10, 8.0).seed(42).generate();
//! let result = Leiden::new(LeidenConfig::default()).run(&graph);
//! assert!(result.community_count() >= 1);
//! ```

pub use gve_baselines as baselines;
pub use gve_dynamic as dynamic;
pub use gve_generate as generate;
pub use gve_graph as graph;
pub use gve_leiden as leiden;
pub use gve_louvain as louvain;
pub use gve_obs as obs;
pub use gve_prim as prim;
pub use gve_quality as quality;
pub use gve_serve as serve;
