//! Concurrency tests: run the parallel implementations inside explicit
//! multi-thread rayon pools (regardless of the host's core count, this
//! creates real OS threads and real interleavings) and assert the
//! invariants that must survive races: valid partitions, conserved
//! weights, the connectivity guarantee, and quality stability.

use gve::generate::{rmat::Rmat, PlantedPartition};
use gve::quality;

fn in_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

#[test]
fn leiden_under_heavy_thread_oversubscription() {
    let graph = Rmat::web(11, 8.0).seed(13).generate();
    for threads in [2, 4, 8] {
        let result = in_pool(threads, || gve::leiden::leiden(&graph));
        quality::validate_membership(&result.membership, graph.num_vertices()).unwrap();
        let report = quality::disconnected_communities(&graph, &result.membership);
        assert!(
            report.all_connected(),
            "{threads} threads: {} disconnected",
            report.disconnected
        );
        let q = quality::modularity(&graph, &result.membership);
        assert!(q > 0.0, "{threads} threads: Q = {q}");
    }
}

#[test]
fn quality_is_stable_across_thread_counts() {
    let planted = PlantedPartition::new(3000, 12, 14.0, 1.0)
        .seed(4)
        .generate();
    let graph = &planted.graph;
    let mut scores = Vec::new();
    for threads in [1, 2, 4] {
        let result = in_pool(threads, || gve::leiden::leiden(graph));
        scores.push(quality::modularity(graph, &result.membership));
        let nmi = quality::normalized_mutual_information(&result.membership, &planted.labels);
        assert!(nmi > 0.9, "{threads} threads: NMI {nmi}");
    }
    let spread = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - scores.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread < 0.05,
        "asynchronous variability too large across thread counts: {scores:?}"
    );
}

#[test]
fn repeated_parallel_runs_conserve_invariants() {
    // The asynchronous design is nondeterministic; hammer it and check
    // the invariants every time.
    let graph = Rmat::social(10, 6.0).seed(21).generate();
    in_pool(4, || {
        for _ in 0..10 {
            let result = gve::leiden::leiden(&graph);
            quality::validate_membership(&result.membership, graph.num_vertices()).unwrap();
            let report = quality::disconnected_communities(&graph, &result.membership);
            assert!(report.all_connected());
        }
    });
}

#[test]
fn louvain_and_nk_run_multithreaded() {
    let graph = Rmat::web(10, 6.0).seed(5).generate();
    in_pool(4, || {
        let louvain = gve::louvain::louvain(&graph);
        quality::validate_membership(&louvain.membership, graph.num_vertices()).unwrap();
        let nk = gve::baselines::nk::nk_leiden(&graph);
        quality::validate_membership(&nk.membership, graph.num_vertices()).unwrap();
        // NetworKit-style locking must not lose weight either: the
        // quality of both is in the usual band.
        let q_l = quality::modularity(&graph, &louvain.membership);
        let q_n = quality::modularity(&graph, &nk.membership);
        assert!((q_l - q_n).abs() < 0.15, "Q {q_l} vs {q_n}");
    });
}

#[test]
fn concurrent_detections_on_shared_graph() {
    // Multiple detections over the same shared graph from different
    // scopes must not interfere (no hidden global state).
    let graph = std::sync::Arc::new(Rmat::web(10, 6.0).seed(17).generate());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let graph = std::sync::Arc::clone(&graph);
            std::thread::spawn(move || {
                let result = gve::leiden::leiden(&graph);
                quality::validate_membership(&result.membership, graph.num_vertices()).unwrap();
                quality::modularity(&graph, &result.membership)
            })
        })
        .collect();
    for h in handles {
        let q = h.join().expect("detection thread panicked");
        assert!(q > 0.0);
    }
}
