//! Property-based tests (proptest) over random graphs: the structural
//! invariants that must hold for *any* input, not just the curated
//! datasets.

use gve::graph::{CsrGraph, GraphBuilder};
use gve::leiden::delta_modularity;
use gve::quality;
use proptest::prelude::*;

/// Strategy: a random undirected graph with up to `max_n` vertices and
/// up to `max_m` edges (possibly with duplicates and self-loops, which
/// the builder normalizes).
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n)
        .prop_flat_map(move |n| {
            proptest::collection::vec((0..n, 0..n, 1u32..4), 0..max_m)
                .prop_map(move |edges| (n, edges))
        })
        .prop_map(|(n, edges)| {
            let typed: Vec<(u32, u32, f32)> = edges
                .into_iter()
                .map(|(u, v, w)| (u, v, w as f32))
                .collect();
            GraphBuilder::from_edges(n as usize, &typed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Leiden always returns a valid dense partition with modularity in
    /// the theoretical range, and never a disconnected community.
    #[test]
    fn leiden_invariants_on_random_graphs(graph in arb_graph(120, 400)) {
        let result = gve::leiden::leiden(&graph);
        quality::validate_membership(&result.membership, graph.num_vertices()).unwrap();
        // Dense renumbering: max id + 1 == count.
        let max = result.membership.iter().copied().max().unwrap_or(0) as usize;
        prop_assert_eq!(max + 1, result.num_communities.max(1));
        let q = quality::modularity(&graph, &result.membership);
        prop_assert!((-0.5..=1.0 + 1e-9).contains(&q), "Q = {}", q);
        let report = quality::disconnected_communities(&graph, &result.membership);
        prop_assert_eq!(report.disconnected, 0);
    }

    /// Leiden's result is never (meaningfully) worse than singletons —
    /// the partition it starts from.
    #[test]
    fn leiden_never_loses_to_singletons(graph in arb_graph(100, 300)) {
        let result = gve::leiden::leiden(&graph);
        let q = quality::modularity(&graph, &result.membership);
        let singletons: Vec<u32> = (0..graph.num_vertices() as u32).collect();
        let q0 = quality::modularity(&graph, &singletons);
        // Tiny slack absorbs the asynchronous design's stale-read moves.
        prop_assert!(q >= q0 - 0.02, "Q {} < singleton {}", q, q0);
    }

    /// Equation 2 (incremental delta-modularity) agrees with a full
    /// recomputation of Equation 1 for arbitrary single-vertex moves.
    #[test]
    fn delta_modularity_matches_recomputation(
        graph in arb_graph(60, 200),
        vertex_pick in 0usize..60,
        target_pick in 0usize..60,
        splits in proptest::collection::vec(0u32..5, 60),
    ) {
        let n = graph.num_vertices();
        prop_assume!(n >= 2);
        let m = graph.total_arc_weight() / 2.0;
        prop_assume!(m > 0.0);
        let i = (vertex_pick % n) as u32;
        // Random initial partition from the split labels.
        let before: Vec<u32> = (0..n).map(|v| splits[v % splits.len()] % (n as u32)).collect();
        let d = before[i as usize];
        let c = before[target_pick % n];
        prop_assume!(c != d);
        let mut after = before.clone();
        after[i as usize] = c;

        let k: Vec<f64> = (0..n as u32).map(|u| graph.weighted_degree(u)).collect();
        let sigma = |mem: &[u32], x: u32| -> f64 {
            (0..n).filter(|&v| mem[v] == x).map(|v| k[v]).sum()
        };
        let k_to = |x: u32| -> f64 {
            graph
                .edges(i)
                .filter(|&(j, _)| j != i && before[j as usize] == x)
                .map(|(_, w)| w as f64)
                .sum()
        };
        let dq = delta_modularity(k_to(c), k_to(d), k[i as usize], sigma(&before, c), sigma(&before, d), m);
        let recomputed =
            quality::modularity(&graph, &after) - quality::modularity(&graph, &before);
        prop_assert!(
            (dq - recomputed).abs() < 1e-9,
            "Eq.2 {} vs recomputed {}", dq, recomputed
        );
    }

    /// Aggregating any partition preserves total weight and the
    /// modularity of the induced (singleton) partition.
    #[test]
    fn aggregation_preserves_modularity(
        graph in arb_graph(80, 250),
        labels in proptest::collection::vec(0u32..8, 80),
    ) {
        let n = graph.num_vertices();
        prop_assume!(graph.num_arcs() > 0);
        let raw: Vec<u32> = (0..n).map(|v| labels[v % labels.len()]).collect();
        let (dense, k) = gve::leiden::dendrogram::renumber(&raw);
        let atomic: Vec<std::sync::atomic::AtomicU32> =
            dense.iter().map(|&c| std::sync::atomic::AtomicU32::new(c)).collect();
        let tables = gve::prim::PerThread::new(move || gve::prim::CommunityMap::new(n.max(1)));
        let sup = gve::leiden::aggregate::aggregate(&graph, &atomic, &dense, k, 64, &tables, None);
        prop_assert_eq!(sup.num_vertices(), k);
        prop_assert!((sup.total_arc_weight() - graph.total_arc_weight()).abs() < 1e-6);
        let singleton: Vec<u32> = (0..k as u32).collect();
        let q_fine = quality::modularity(&graph, &dense);
        let q_coarse = quality::modularity(&sup, &singleton);
        prop_assert!((q_fine - q_coarse).abs() < 1e-9, "{} vs {}", q_fine, q_coarse);
    }

    /// Renumbering is a bijective relabeling: sizes multiset preserved,
    /// ids dense.
    #[test]
    fn renumber_is_a_relabeling(labels in proptest::collection::vec(0u32..50, 1..200)) {
        let (dense, k) = quality::renumber(&labels);
        prop_assert_eq!(dense.len(), labels.len());
        prop_assert_eq!(k, quality::community_count(&labels));
        let max = dense.iter().copied().max().unwrap() as usize;
        prop_assert_eq!(max + 1, k);
        // Vertices grouped together stay grouped.
        for a in 0..labels.len() {
            for b in (a + 1)..labels.len() {
                prop_assert_eq!(labels[a] == labels[b], dense[a] == dense[b]);
            }
        }
    }

    /// NMI/ARI are symmetric and maximal on identical partitions.
    #[test]
    fn agreement_scores_are_symmetric(
        a in proptest::collection::vec(0u32..6, 2..100),
    ) {
        let b: Vec<u32> = a.iter().map(|&x| (x * 7 + 3) % 11).collect();
        let nmi_ab = quality::normalized_mutual_information(&a, &b);
        let nmi_ba = quality::normalized_mutual_information(&b, &a);
        prop_assert!((nmi_ab - nmi_ba).abs() < 1e-12);
        let ari_ab = quality::adjusted_rand_index(&a, &b);
        let ari_ba = quality::adjusted_rand_index(&b, &a);
        prop_assert!((ari_ab - ari_ba).abs() < 1e-12);
        prop_assert!((quality::normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
    }
}
