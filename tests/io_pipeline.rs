//! File-based pipeline tests: generate → persist → reload → detect,
//! through both supported formats, mirroring how the paper's datasets
//! would be consumed from disk.

use gve::generate::PlantedPartition;
use gve::graph::{io, GraphBuilder};
use gve::quality;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gve-io-pipeline-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn matrix_market_roundtrip_preserves_detection() {
    let planted = PlantedPartition::new(600, 6, 10.0, 1.0).seed(8).generate();
    let path = temp_path("planted.mtx");
    io::write_matrix_market(&planted.graph, std::fs::File::create(&path).unwrap()).unwrap();
    let loaded = io::read_path(&path).unwrap();
    assert_eq!(loaded, planted.graph);

    let result = gve::leiden::leiden(&loaded);
    let nmi = quality::normalized_mutual_information(&result.membership, &planted.labels);
    assert!(nmi > 0.9, "NMI after roundtrip: {nmi}");
}

#[test]
fn edge_list_roundtrip_preserves_structure() {
    // Use a graph whose last vertex has an edge, so the edge list covers
    // the full vertex range.
    let graph = GraphBuilder::from_edges(
        5,
        &[
            (0, 1, 1.5),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (3, 4, 0.5),
            (0, 4, 1.0),
        ],
    );
    let path = temp_path("ring.txt");
    io::write_edge_list(&graph, std::fs::File::create(&path).unwrap()).unwrap();
    let loaded = io::read_path(&path).unwrap();
    assert_eq!(loaded, graph);
}

#[test]
fn weighted_graphs_survive_both_formats() {
    let graph =
        GraphBuilder::from_edges(4, &[(0, 1, 0.25), (1, 2, 3.75), (2, 3, 100.5), (0, 0, 7.0)]);
    for name in ["w.mtx", "w.txt"] {
        let path = temp_path(name);
        if name.ends_with(".mtx") {
            io::write_matrix_market(&graph, std::fs::File::create(&path).unwrap()).unwrap();
        } else {
            io::write_edge_list(&graph, std::fs::File::create(&path).unwrap()).unwrap();
        }
        let loaded = io::read_path(&path).unwrap();
        assert_eq!(loaded, graph, "format {name}");
        // Weighted detection works on the reloaded graph.
        let result = gve::leiden::leiden(&loaded);
        quality::validate_membership(&result.membership, 4).unwrap();
    }
}

#[test]
fn membership_file_format_is_parseable() {
    // The CLI's membership format: `vertex community` per line.
    let graph = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
    let result = gve::leiden::leiden(&graph);
    let mut text = String::new();
    for (v, c) in result.membership.iter().enumerate() {
        text.push_str(&format!("{v} {c}\n"));
    }
    let path = temp_path("membership.txt");
    std::fs::write(&path, &text).unwrap();

    let reloaded = std::fs::read_to_string(&path).unwrap();
    let mut membership = vec![0u32; 3];
    for line in reloaded.lines() {
        let mut parts = line.split_whitespace();
        let v: usize = parts.next().unwrap().parse().unwrap();
        let c: u32 = parts.next().unwrap().parse().unwrap();
        membership[v] = c;
    }
    assert_eq!(membership, result.membership);
}
