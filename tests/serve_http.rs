//! End-to-end exercise of the `gve-serve` service over real HTTP:
//! register → detect → poll → read → cache hit → dynamic update with
//! incremental refresh, all against a server on an ephemeral port.

use gve::serve::json::{parse, Json};
use gve::serve::{client_request, ServeConfig, Server};
use std::time::{Duration, Instant};

struct TestServer {
    server: Server,
    addr: String,
}

impl TestServer {
    fn boot() -> Self {
        let server = Server::start(&ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        Self { server, addr }
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
        let (status, text) = client_request(&self.addr, method, path, body)
            .unwrap_or_else(|e| panic!("{method} {path} failed: {e}"));
        let json = parse(&text).unwrap_or_else(|e| panic!("{method} {path}: bad JSON {text}: {e}"));
        (status, json)
    }

    fn get(&self, path: &str) -> (u16, Json) {
        self.request("GET", path, None)
    }

    fn post(&self, path: &str, body: &str) -> (u16, Json) {
        self.request("POST", path, Some(body))
    }

    /// Polls `GET /jobs/{id}` until it leaves queued/running.
    fn await_job(&self, id: u64) -> Json {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, job) = self.get(&format!("/jobs/{id}"));
            assert_eq!(status, 200, "job poll failed: {}", job.render());
            match job.get("state").and_then(Json::as_str) {
                Some("queued") | Some("running") => {
                    assert!(Instant::now() < deadline, "job {id} never finished");
                    std::thread::sleep(Duration::from_millis(10));
                }
                _ => return job,
            }
        }
    }

    fn stat(&self, section: &str, counter: &str) -> u64 {
        let (status, stats) = self.get("/stats");
        assert_eq!(status, 200);
        stats
            .get(section)
            .and_then(|s| s.get(counter))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing /stats {section}.{counter}: {}", stats.render()))
    }
}

#[test]
fn full_service_loop_over_http() {
    let ts = TestServer::boot();

    // Health first.
    let (status, health) = ts.get("/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    // Register a planted-partition (SBM) graph.
    let (status, graph) = ts.post(
        "/graphs",
        r#"{"name":"sbm","generate":{"class":"sbm","vertices":3000,"communities":12,
            "intra_degree":12.0,"inter_degree":1.0,"seed":42}}"#,
    );
    assert_eq!(status, 201, "{}", graph.render());
    assert_eq!(graph.get("epoch").and_then(Json::as_u64), Some(0));
    let vertices = graph.get("vertices").and_then(Json::as_u64).unwrap() as usize;
    assert_eq!(vertices, 3000);
    // Duplicate registration is a conflict, not a crash.
    let (status, _) = ts.post("/graphs", r#"{"name":"sbm","generate":{"class":"ring"}}"#);
    assert_eq!(status, 409);

    // Submit a detect job and poll it to completion.
    let detect_body = r#"{"objective":"modularity","resolution":1.0,"seed":5}"#;
    let (status, submitted) = ts.post("/graphs/sbm/detect", detect_body);
    assert_eq!(status, 202, "{}", submitted.render());
    assert_eq!(submitted.get("cached").and_then(Json::as_bool), Some(false));
    let job_id = submitted.get("id").and_then(Json::as_u64).unwrap();
    let job = ts.await_job(job_id);
    assert_eq!(
        job.get("state").and_then(Json::as_str),
        Some("done"),
        "{}",
        job.render()
    );
    let communities = job.get("num_communities").and_then(Json::as_u64).unwrap();
    assert!(communities >= 2, "implausible partition: {}", job.render());
    assert!(job.get("modularity").and_then(Json::as_f64).unwrap() > 0.3);
    assert_eq!(ts.stat("jobs", "full_detections"), 1);

    // Membership queries come from the cached partition.
    let (status, member) = ts.get("/graphs/sbm/membership?vertex=17");
    assert_eq!(status, 200);
    let community = member.get("community").and_then(Json::as_u64).unwrap();
    let (status, listing) = ts.get(&format!("/graphs/sbm/communities/{community}"));
    assert_eq!(status, 200);
    let members = listing.get("vertices").and_then(Json::as_array).unwrap();
    assert!(
        members.iter().any(|v| v.as_u64() == Some(17)),
        "vertex 17 missing from its own community: {}",
        listing.render()
    );

    // Full membership is a valid partition of the graph.
    let (status, full) = ts.get("/graphs/sbm/membership");
    assert_eq!(status, 200);
    let membership: Vec<u32> = full
        .get("membership")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap() as u32)
        .collect();
    assert_eq!(membership.len(), vertices);
    gve::quality::validate_membership(&membership, vertices).unwrap();

    // A second identical detect is answered from the cache: no new full
    // detection, and /stats shows the hit.
    let hits_before = ts.stat("cache", "hits");
    let (status, second) = ts.post("/graphs/sbm/detect", detect_body);
    assert_eq!(status, 200, "{}", second.render());
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(second.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(ts.stat("cache", "hits"), hits_before + 1);
    assert_eq!(
        ts.stat("jobs", "full_detections"),
        1,
        "cache hit must not recompute"
    );

    // Ingest an edge batch: epoch bumps, stale cache entries go away,
    // and the partition is refreshed incrementally — still without a
    // second full detection.
    let (status, update) = ts.post(
        "/graphs/sbm/updates",
        r#"{"insertions":[[1,2,1.0],[10,11,1.0],[100,200,1.0]],
            "deletions":[[0,1]],"strategy":"dynamic-frontier"}"#,
    );
    assert_eq!(status, 200, "{}", update.render());
    assert_eq!(update.get("epoch").and_then(Json::as_u64), Some(1));
    assert_eq!(update.get("refreshed").and_then(Json::as_bool), Some(true));
    assert_eq!(ts.stat("updates", "incremental_refreshes"), 1);
    assert_eq!(
        ts.stat("jobs", "full_detections"),
        1,
        "refresh must be incremental"
    );
    assert!(
        ts.stat("cache", "evictions") >= 1,
        "old-epoch partition must be evicted"
    );

    // The refreshed partition serves reads at the new epoch and still
    // satisfies the quality invariants on the *updated* graph.
    let (status, refreshed) = ts.get("/graphs/sbm/membership");
    assert_eq!(status, 200, "{}", refreshed.render());
    assert_eq!(refreshed.get("epoch").and_then(Json::as_u64), Some(1));
    assert_eq!(
        refreshed.get("origin").and_then(Json::as_str),
        Some("incremental-refresh")
    );
    let new_membership: Vec<u32> = refreshed
        .get("membership")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap() as u32)
        .collect();
    gve::quality::validate_membership(&new_membership, vertices).unwrap();
    let updated_graph = ts.server.state().registry.snapshot("sbm").unwrap().graph;
    let q = gve::quality::modularity(&updated_graph, &new_membership);
    assert!(q > 0.3, "refreshed modularity collapsed: {q}");
    let report = gve::quality::disconnected_communities(&updated_graph, &new_membership);
    assert!(
        report.all_connected(),
        "refresh produced {} disconnected communities",
        report.disconnected
    );

    ts.server.stop();
}

#[test]
fn errors_are_json_with_meaningful_statuses() {
    let ts = TestServer::boot();

    let (status, body) = ts.get("/graphs/ghost");
    assert_eq!(status, 404);
    assert!(body.get("error").is_some(), "{}", body.render());

    let (status, _) = ts.post("/graphs/ghost/detect", "{}");
    assert_eq!(status, 404);

    let (status, _) = ts.post("/graphs", r#"{"name":"bad/slash","edges":[[0,1]]}"#);
    assert_eq!(status, 400);

    let (status, _) = ts.post("/graphs", "not json at all");
    assert_eq!(status, 400);

    let (status, _) = ts.get("/jobs/999");
    assert_eq!(status, 404);

    // Inline edge-list registration works and detect rejects a bad
    // objective with a 400 rather than enqueueing garbage.
    let (status, _) = ts.post(
        "/graphs",
        r#"{"name":"tiny","edges":[[0,1,1.0],[1,2,1.0],[2,0,1.0]]}"#,
    );
    assert_eq!(status, 201);
    let (status, body) = ts.post("/graphs/tiny/detect", r#"{"objective":"louvain"}"#);
    assert_eq!(status, 400, "{}", body.render());

    // Updates on an empty batch are a no-op 200 reporting the current
    // epoch, not an error.
    let (status, body) = ts.post("/graphs/tiny/updates", "{}");
    assert_eq!(status, 200, "{}", body.render());
    assert_eq!(body.get("noop").and_then(Json::as_bool), Some(true));
    assert_eq!(body.get("refreshed").and_then(Json::as_bool), Some(false));

    // Error bodies survive messages with JSON-hostile characters: the
    // raw request line below lands in the error message and must come
    // back as parseable JSON, not Debug-escaped pseudo-JSON.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(&ts.addr).unwrap();
    stream
        .write_all("GET /x BAD\u{1f}λ\r\n\r\n".as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let parsed = parse(body).unwrap_or_else(|e| panic!("error body is not JSON: {e}\n{body}"));
    assert!(
        parsed.get("error").and_then(Json::as_str).is_some(),
        "{body}"
    );

    ts.server.stop();
}

/// The service must shut down promptly: `stop()` returns quickly and
/// unparks any thread blocked in `join()` (no sleep-loop stragglers),
/// and idle workers must not keep the process awake.
#[test]
fn stop_is_fast_and_unblocks_join() {
    let ts = TestServer::boot();
    let server = std::sync::Arc::new(ts.server);

    let joiner = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || {
            let start = Instant::now();
            server.join();
            start.elapsed()
        })
    };
    // Give the joiner time to actually block in join().
    std::thread::sleep(Duration::from_millis(100));

    let start = Instant::now();
    server.stop();
    let stop_elapsed = start.elapsed();
    let join_elapsed = joiner.join().expect("joiner panicked");

    assert!(
        stop_elapsed < Duration::from_secs(5),
        "stop() took {stop_elapsed:?}; workers or accept loop not unblocking"
    );
    assert!(
        join_elapsed < Duration::from_secs(5),
        "join() took {join_elapsed:?} to observe stop(); condvar wakeup missing"
    );
}

/// `/metrics` exposes the core algorithm families after one detect, in
/// Prometheus text format with cumulative (monotone) histogram buckets.
#[test]
fn metrics_endpoint_covers_core_and_service_families() {
    let ts = TestServer::boot();
    let (status, _) = ts.post(
        "/graphs",
        r#"{"name":"m","generate":{"class":"sbm","vertices":600,"communities":6,
            "intra_degree":12.0,"inter_degree":1.0,"seed":7}}"#,
    );
    assert_eq!(status, 201);
    let (status, submitted) = ts.post("/graphs/m/detect", r#"{"objective":"modularity"}"#);
    assert_eq!(status, 202, "{}", submitted.render());
    let job = ts.await_job(submitted.get("id").and_then(Json::as_u64).unwrap());
    assert_eq!(job.get("state").and_then(Json::as_str), Some("done"));

    let (status, text) = client_request(&ts.addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    for name in [
        "gve_leiden_runs_total",
        "gve_leiden_passes_total",
        "gve_leiden_move_iterations_total",
        "gve_leiden_pruning_processed_total",
        "gve_leiden_pruning_skipped_total",
        "gve_leiden_refine_moves_total",
        "gve_leiden_aggregation_shrink_ratio",
        "gve_leiden_phase_seconds_total{phase=\"local_move\"}",
        "gve_leiden_phase_seconds_total{phase=\"refinement\"}",
        "gve_leiden_phase_seconds_total{phase=\"aggregation\"}",
        "gve_cache_hits_total",
        "gve_cache_misses_total",
        "gve_jobs_submitted_total",
        "gve_jobs_completed_total",
        "gve_jobs_queue_depth",
        "gve_jobs_queue_wait_seconds_bucket",
        "gve_jobs_run_seconds_bucket",
        "gve_http_connections_total",
        "gve_http_rejected_connections_total",
        "gve_http_request_seconds_bucket",
        "gve_updates_batches_total",
    ] {
        assert!(text.contains(name), "missing {name} in /metrics:\n{text}");
    }
    assert!(
        text.contains("gve_leiden_runs_total 1"),
        "exactly one run expected:\n{text}"
    );
    assert!(text.contains("# TYPE gve_jobs_run_seconds histogram"));

    // Histogram buckets must be cumulative: counts never decrease as le
    // grows, and the +Inf bucket equals the family _count.
    let buckets: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("gve_jobs_run_seconds_bucket"))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(!buckets.is_empty());
    assert!(
        buckets.windows(2).all(|w| w[0] <= w[1]),
        "non-monotone buckets: {buckets:?}"
    );
    let count: u64 = text
        .lines()
        .find(|l| l.starts_with("gve_jobs_run_seconds_count"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("missing gve_jobs_run_seconds_count");
    assert_eq!(*buckets.last().unwrap(), count, "+Inf bucket != _count");
    assert_eq!(count, 1, "one full detection ran");

    ts.server.stop();
}
