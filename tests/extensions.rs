//! Integration tests of the extension surface through the facade crate:
//! CPM, scheduling, hierarchy, dynamic updates, LFR, subgraphs, reports.

use gve::dynamic::{BatchUpdate, DynamicLeiden, DynamicStrategy};
use gve::generate::{Lfr, PlantedPartition};
use gve::graph::subgraph::community_subgraph;
use gve::leiden::{Leiden, LeidenConfig, Objective, Scheduling};
use gve::quality;

#[test]
fn cpm_and_modularity_agree_on_planted_structure() {
    let planted = PlantedPartition::new(1500, 10, 14.0, 1.0)
        .seed(21)
        .generate();
    let graph = &planted.graph;
    let q_members = gve::leiden::leiden(graph).membership;
    let cpm_members =
        Leiden::new(LeidenConfig::default().objective(Objective::Cpm { resolution: 0.05 }))
            .run(graph)
            .membership;
    let agreement = quality::normalized_mutual_information(&q_members, &cpm_members);
    assert!(agreement > 0.9, "NMI between objectives: {agreement}");
    // Both recover the plant.
    assert!(quality::normalized_mutual_information(&cpm_members, &planted.labels) > 0.9);
}

#[test]
fn deterministic_mode_is_reproducible_through_facade() {
    let lfr = Lfr::new(2000, 12.0, 0.2).seed(9).generate();
    let config = LeidenConfig::default().scheduling(Scheduling::ColorSynchronous);
    let a = Leiden::new(config.clone()).run(&lfr.graph).membership;
    let b = Leiden::new(config).run(&lfr.graph).membership;
    assert_eq!(a, b);
}

#[test]
fn hierarchy_subgraph_report_workflow() {
    let lfr = Lfr::new(3000, 12.0, 0.2).seed(4).generate();
    let config = LeidenConfig {
        record_dendrogram: true,
        ..LeidenConfig::default()
    };
    let result = Leiden::new(config).run(&lfr.graph);

    // Hierarchy levels coarsen monotonically.
    let mut previous = usize::MAX;
    for level in 0..=result.dendrogram.len() {
        let k = quality::community_count(&result.membership_at_level(level));
        assert!(k <= previous, "level {level} grew: {k} > {previous}");
        previous = k;
    }

    // Per-community report covers every vertex and flags nothing.
    let report = quality::community_report(&lfr.graph, &result.membership);
    assert_eq!(
        report.iter().map(|d| d.size).sum::<usize>(),
        lfr.graph.num_vertices()
    );
    assert!(report.iter().all(|d| d.connected));

    // Drill into the largest community: the subgraph is self-consistent.
    let sub = community_subgraph(&lfr.graph, &result.membership, report[0].id);
    assert_eq!(sub.graph.num_vertices(), report[0].size);
    assert!((sub.graph.total_arc_weight() - report[0].internal_weight).abs() < 1e-6);
    assert!(gve::graph::traversal::is_connected(&sub.graph));
}

#[test]
fn dynamic_detector_with_cpm_objective() {
    // The dynamic layer composes with non-default objectives.
    let planted = PlantedPartition::new(1200, 8, 14.0, 1.0).seed(6).generate();
    let config = LeidenConfig::default().objective(Objective::Cpm { resolution: 0.05 });
    let mut detector = DynamicLeiden::new(
        planted.graph.clone(),
        config,
        DynamicStrategy::DynamicFrontier,
    );
    let mut batch = BatchUpdate::new();
    for i in 0..50u32 {
        batch.insert(i, (i + 37) % 1200, 1.0);
    }
    detector.apply(&batch);
    quality::validate_membership(detector.membership(), detector.graph().num_vertices()).unwrap();
    let nmi = quality::normalized_mutual_information(detector.membership(), &planted.labels);
    assert!(nmi > 0.85, "NMI {nmi}");
}

#[test]
fn lpa_is_available_and_weaker_or_equal() {
    let lfr = Lfr::new(2500, 12.0, 0.35).seed(8).generate();
    let lpa = gve::baselines::lpa::label_propagation(&lfr.graph);
    let leiden = gve::leiden::leiden(&lfr.graph);
    let q_lpa = quality::modularity(&lfr.graph, &lpa.membership);
    let q_leiden = quality::modularity(&lfr.graph, &leiden.membership);
    assert!(q_leiden >= q_lpa - 1e-9, "Leiden {q_leiden} vs LPA {q_lpa}");
}

#[test]
fn dot_export_of_detected_communities() {
    let g = gve::graph::GraphBuilder::from_edges(
        6,
        &[
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 0, 1.0),
            (3, 4, 1.0),
            (4, 5, 1.0),
            (5, 3, 1.0),
            (2, 3, 1.0),
        ],
    );
    let result = gve::leiden::leiden(&g);
    let mut buf = Vec::new();
    gve::graph::io::dot::write_dot(&g, Some(&result.membership), &mut buf).unwrap();
    let dot = String::from_utf8(buf).unwrap();
    assert!(
        dot.contains("style=dashed"),
        "bridge must be dashed:\n{dot}"
    );
    assert_eq!(dot.matches("--").count(), 7);
}
