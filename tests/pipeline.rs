//! Cross-crate end-to-end tests: generator → detector → quality, over
//! every dataset class, every implementation, and several seeds.

use gve::generate::{suite, PlantedPartition};
use gve::leiden::{Labeling, Leiden, LeidenConfig, RefinementStrategy, Variant};
use gve::quality;

/// Every implementation must produce a valid partition with sane quality
/// on each dataset class.
#[test]
fn all_implementations_on_all_classes() {
    for dataset in suite::quick_suite() {
        let graph = dataset.generate(0.25, 11);
        let n = graph.num_vertices();
        let runs: Vec<(&str, Vec<u32>)> = vec![
            ("gve-leiden", gve::leiden::leiden(&graph).membership),
            ("gve-louvain", gve::louvain::louvain(&graph).membership),
            (
                "seq-leiden",
                gve::baselines::seq::sequential_leiden(&graph).membership,
            ),
            (
                "seq-louvain",
                gve::louvain::seq::sequential_louvain(&graph, 1e-6, 10).membership,
            ),
            (
                "nk-leiden",
                gve::baselines::nk::nk_leiden(&graph).membership,
            ),
        ];
        let q_reference = quality::modularity(&graph, &runs[2].1); // seq-leiden
        for (name, membership) in &runs {
            quality::validate_membership(membership, n)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", dataset.name));
            let q = quality::modularity(&graph, membership);
            assert!(
                (-0.5..=1.0).contains(&q),
                "{name} on {}: Q = {q}",
                dataset.name
            );
            // Everyone lands within 0.1 of the sequential Leiden
            // reference (the paper reports ≤ 0.3% gaps; our band is
            // loose to absorb asynchronous nondeterminism).
            assert!(
                (q - q_reference).abs() < 0.1,
                "{name} on {}: Q = {q} vs reference {q_reference}",
                dataset.name
            );
        }
    }
}

/// The Leiden implementations must uphold the connectivity guarantee on
/// every class and multiple seeds.
#[test]
fn leiden_connectivity_guarantee_across_seeds() {
    for dataset in suite::quick_suite() {
        for seed in [1u64, 7, 23] {
            let graph = dataset.generate(0.2, seed);
            let result = gve::leiden::leiden(&graph);
            let report = quality::disconnected_communities(&graph, &result.membership);
            assert!(
                report.all_connected(),
                "{} seed {seed}: {} of {} disconnected",
                dataset.name,
                report.disconnected,
                report.communities
            );
        }
    }
}

/// All 2 × 3 strategy/variant combinations and both labelings run and
/// produce comparable quality.
#[test]
fn config_matrix_is_consistent() {
    let planted = PlantedPartition::new(1200, 8, 12.0, 1.5).seed(5).generate();
    let graph = &planted.graph;
    let reference = quality::modularity(graph, &gve::leiden::leiden(graph).membership);
    for strategy in [RefinementStrategy::Greedy, RefinementStrategy::Random] {
        for variant in [Variant::Default, Variant::Medium, Variant::Heavy] {
            for labeling in [Labeling::MoveBased, Labeling::RefineBased] {
                let config = LeidenConfig::default()
                    .refinement(strategy)
                    .variant(variant)
                    .labeling(labeling)
                    .seed(3);
                let result = Leiden::new(config).run(graph);
                let q = quality::modularity(graph, &result.membership);
                assert!(
                    (q - reference).abs() < 0.1,
                    "{strategy:?}/{variant:?}/{labeling:?}: Q = {q} vs {reference}"
                );
                let report = quality::disconnected_communities(graph, &result.membership);
                assert!(
                    report.all_connected(),
                    "{strategy:?}/{variant:?}/{labeling:?} violated connectivity"
                );
            }
        }
    }
}

/// Strong planted structure must be recovered almost exactly by every
/// implementation (NMI vs ground truth).
#[test]
fn ground_truth_recovery_by_all() {
    let planted = PlantedPartition::new(2000, 10, 16.0, 1.0)
        .seed(2)
        .generate();
    let graph = &planted.graph;
    let check = |name: &str, membership: &[u32]| {
        let nmi = quality::normalized_mutual_information(membership, &planted.labels);
        assert!(nmi > 0.9, "{name}: NMI {nmi}");
    };
    check("gve-leiden", &gve::leiden::leiden(graph).membership);
    check("gve-louvain", &gve::louvain::louvain(graph).membership);
    check(
        "seq-leiden",
        &gve::baselines::seq::sequential_leiden(graph).membership,
    );
    check(
        "nk-leiden",
        &gve::baselines::nk::nk_leiden(graph).membership,
    );
}

/// Modularity of the Leiden result must never be (meaningfully) below
/// the starting singleton partition, and the pass stats must describe a
/// shrinking graph.
#[test]
fn passes_shrink_and_quality_grows() {
    let dataset = &suite::suite()[0];
    let graph = dataset.generate(0.5, 3);
    let result = gve::leiden::leiden(&graph);
    let singletons: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    assert!(
        quality::modularity(&graph, &result.membership) > quality::modularity(&graph, &singletons)
    );
    for window in result.pass_stats.windows(2) {
        assert!(
            window[1].vertices <= window[0].vertices,
            "graph grew between passes: {:?}",
            result.pass_stats
        );
        assert!(window[1].vertices == window[0].communities);
    }
    if let Some(last) = result.pass_stats.last() {
        assert_eq!(last.communities, result.num_communities);
    }
}

/// Erdős–Rényi noise: no implementation should report strong community
/// structure where none exists.
#[test]
fn no_phantom_communities_on_noise() {
    let graph = gve::generate::er::erdos_renyi(2000, 16_000, 9);
    let q = quality::modularity(&graph, &gve::leiden::leiden(&graph).membership);
    // Sparse ER graphs do admit weak partitions (Q ~ 0.2-0.3); strong
    // structure (Q > 0.6) would signal a broken optimizer.
    assert!(q < 0.6, "phantom structure on ER noise: Q = {q}");
}
