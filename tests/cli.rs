//! End-to-end tests of the `gve` command-line tool: the
//! generate → detect → quality pipeline through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn gve() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gve"))
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gve-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_detect_quality_pipeline() {
    let dir = temp_dir();
    let graph = dir.join("g.mtx");
    let membership = dir.join("g.mem");

    let out = gve()
        .args([
            "generate",
            "--class",
            "web",
            "--vertices",
            "2000",
            "--degree",
            "10",
            "--seed",
            "3",
            "--out",
            graph.to_str().unwrap(),
        ])
        .output()
        .expect("generate failed to spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = gve()
        .args([
            "detect",
            graph.to_str().unwrap(),
            "--algorithm",
            "leiden",
            "--out",
            membership.to_str().unwrap(),
        ])
        .output()
        .expect("detect failed to spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("communities"), "{log}");

    let out = gve()
        .args([
            "quality",
            graph.to_str().unwrap(),
            membership.to_str().unwrap(),
            "--detail",
            "3",
        ])
        .output()
        .expect("quality failed to spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("modularity:"), "{text}");
    assert!(text.contains("disconnected:      0 of"), "{text}");
    assert!(text.contains("conductance"), "{text}");
}

#[test]
fn convert_roundtrips_between_formats() {
    let dir = temp_dir();
    let mtx = dir.join("c.mtx");
    let bin = dir.join("c.gveg");
    let txt = dir.join("c.txt");

    assert!(gve()
        .args([
            "generate",
            "--class",
            "kmer",
            "--vertices",
            "1000",
            "--out",
            mtx.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    assert!(gve()
        .args(["convert", mtx.to_str().unwrap(), bin.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(gve()
        .args(["convert", bin.to_str().unwrap(), txt.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // stats on every format agree on the arc count.
    let arc_line = |path: &std::path::Path| -> String {
        let out = gve()
            .args(["stats", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("arcs:"))
            .unwrap()
            .to_string()
    };
    assert_eq!(arc_line(&mtx), arc_line(&bin));
    assert_eq!(arc_line(&mtx), arc_line(&txt));
}

#[test]
fn detect_supports_every_algorithm() {
    let dir = temp_dir();
    let graph = dir.join("algos.mtx");
    assert!(gve()
        .args([
            "generate",
            "--class",
            "social",
            "--vertices",
            "1500",
            "--out",
            graph.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    for algo in [
        "leiden",
        "louvain",
        "seq-leiden",
        "seq-louvain",
        "nk-leiden",
    ] {
        let out = gve()
            .args(["detect", graph.to_str().unwrap(), "--algorithm", algo])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo} failed");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("communities"), "{algo}: {stderr}");
    }
}

#[test]
fn cpm_objective_flag_changes_results() {
    let dir = temp_dir();
    let graph = dir.join("cpm.mtx");
    assert!(gve()
        .args([
            "generate",
            "--class",
            "web",
            "--vertices",
            "1500",
            "--out",
            graph.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    let count = |extra: &[&str]| -> String {
        let mut args = vec!["detect", graph.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = gve().args(&args).output().unwrap();
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stderr)
            .lines()
            .find(|l| l.contains("communities"))
            .unwrap()
            .to_string()
    };
    let modularity = count(&[]);
    let cpm_fine = count(&["--objective", "cpm", "--resolution", "0.2"]);
    assert_ne!(modularity, cpm_fine);
}

#[test]
fn detect_trace_emits_parseable_spans_for_every_phase() {
    use gve::serve::json::{parse, Json};

    let dir = temp_dir();
    let graph = dir.join("trace.mtx");
    let trace = dir.join("run.jsonl");
    assert!(gve()
        .args([
            "generate",
            "--class",
            "social",
            "--vertices",
            "1500",
            "--out",
            graph.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());

    let out = gve()
        .args([
            "detect",
            graph.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--out",
            dir.join("trace.mem").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    // The run summary prints the Figure 7 split and the stop reason.
    assert!(stderr.contains("phases: local-move"), "{stderr}");
    assert!(stderr.contains("stop:"), "{stderr}");

    // Every line of the trace is standalone JSON.
    let text = std::fs::read_to_string(&trace).unwrap();
    let events: Vec<Json> = text
        .lines()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("bad trace line: {e}\n{l}")))
        .collect();
    assert!(events.len() >= 6, "suspiciously short trace:\n{text}");
    let kind = |e: &Json| e.get("event").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(kind(&events[0]), "run_start");
    assert_eq!(kind(events.last().unwrap()), "run_end");
    let passes = events
        .last()
        .unwrap()
        .get("passes")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(passes >= 1);

    // Every phase of every pass has a span, and every span carries a
    // timestamp plus a duration.
    for pass in 0..passes {
        for phase in ["local_move", "refinement", "aggregation"] {
            let span = events.iter().find(|e| {
                kind(e) == "phase"
                    && e.get("pass").and_then(Json::as_u64) == Some(pass)
                    && e.get("phase").and_then(Json::as_str) == Some(phase)
            });
            let span = span.unwrap_or_else(|| panic!("missing span pass={pass} {phase}"));
            assert!(span.get("ts_us").and_then(Json::as_u64).is_some());
            assert!(span.get("dur_us").and_then(Json::as_u64).is_some());
        }
        assert!(
            events
                .iter()
                .any(|e| kind(e) == "pass" && e.get("pass").and_then(Json::as_u64) == Some(pass)),
            "missing pass summary for pass {pass}"
        );
    }
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!gve().status().unwrap().success());
    assert!(!gve().args(["detect"]).status().unwrap().success());
    assert!(!gve()
        .args(["generate", "--class", "nope", "--out", "/tmp/x"])
        .status()
        .unwrap()
        .success());
}
